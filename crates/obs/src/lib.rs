//! # vab-obs — observability for the VAB stack
//!
//! Structured event tracing, a metrics registry, and profiling hooks in one
//! zero-dependency crate, sitting at the very bottom of the workspace so
//! every layer (DSP, link, MAC, energy, simulation, bench harness) can emit
//! without new edges in the dependency graph.
//!
//! ## Design constraints
//!
//! The simulation's contract is bit-reproducibility: the same seed must
//! produce the same BER/PER regardless of thread count or whether anyone is
//! watching. Observability therefore
//!
//! * never touches an RNG stream — events, counters and timers are pure
//!   side channels;
//! * costs one relaxed atomic load per call site when disabled (the
//!   [`event!`] macro does not even evaluate its field expressions);
//! * is thread-safe without serializing the Monte Carlo workers: the JSONL
//!   sink buffers per shard (threads hash onto independent buffers) and
//!   metrics are plain atomics, so the 1-vs-8-thread determinism tests are
//!   untouched.
//!
//! ## The three layers
//!
//! 1. **Tracing** ([`event!`], [`Span`], [`sink`]): typed key=value events
//!    routed to a pluggable sink — null, stderr pretty-printer, or a JSONL
//!    file writer. [`span`] layers distributed-tracing identity on top:
//!    content-derived `trace_id`/`span_id`/`parent_span_id` triples
//!    ([`TraceContext`]) and drop-guard scopes ([`SpanScope`]) whose
//!    durations feed the stage histograms.
//! 2. **Metrics** ([`metrics`]): named counters (saturating), gauges and
//!    fixed-bucket histograms, snapshotted at campaign end into a
//!    machine-readable JSON report next to the CSVs.
//! 3. **Profiling** ([`time_stage`]): scoped wall-clock timers around the
//!    hot paths (channel realization, sample-level DSP, FEC, demod),
//!    aggregated into per-stage latency histograms.
//!
//! ## Switching it on
//!
//! ```text
//! VAB_OBS=off      # default: zero-overhead, bit-identical output
//! VAB_OBS=stderr   # human-readable event stream on stderr
//! VAB_OBS=jsonl    # results/trace.jsonl (override with VAB_OBS_PATH)
//! ```
//!
//! [`init_from_env`] reads the switch; library code only ever calls
//! [`enabled`] / [`emit`] / [`time_stage`] and works under any mode.

pub mod alloc;
pub mod event;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod timer;

pub use alloc::CountingAlloc;
pub use event::{Event, Value};
pub use sink::{JsonlSink, NullSink, Sink, StderrSink};
pub use span::{span_begin, span_end, SpanScope, TraceContext};
pub use timer::{time_stage, Span, StageTimer};

/// The counting allocator wraps [`std::alloc::System`] for every binary
/// in the workspace. Costs one relaxed atomic load per allocator call
/// while profiling is off; see [`alloc`] for the accounting it performs
/// when `VAB_PROFILE=1`.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Fast-path switch: one relaxed load decides whether any observability
/// work happens at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotone event sequence number (global, so interleaved shard buffers
/// can be re-ordered offline).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// The installed sink. `None` ⇔ disabled.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Process epoch for event timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// True when a sink is installed and events/timers should be recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the global event destination and enables tracing,
/// metrics snapshots and stage timers. Replaces (and flushes) any
/// previously installed sink.
pub fn install(sink: Arc<dyn Sink>) {
    let previous = {
        let mut guard = SINK.write().expect("obs sink lock");
        guard.replace(sink)
    };
    if let Some(prev) = previous {
        prev.flush();
    }
    let _ = epoch(); // pin the timestamp origin before the first event
    ENABLED.store(true, Ordering::Release);
}

/// Disables observability and drops the sink (flushing it first).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
    let previous = {
        let mut guard = SINK.write().expect("obs sink lock");
        guard.take()
    };
    if let Some(prev) = previous {
        prev.flush();
    }
}

/// Flushes the installed sink's buffers (shard buffers → file for JSONL).
pub fn flush() {
    let guard = SINK.read().expect("obs sink lock");
    if let Some(sink) = guard.as_ref() {
        sink.flush();
    }
}

/// Records one structured event. Prefer the [`event!`] macro, which skips
/// field evaluation entirely when disabled.
pub fn emit(target: &'static str, name: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    // Observability's own allocations (event rendering, sink buffers)
    // must never show up in allocation profiles — they would break the
    // deterministic per-stage counts the alloc baseline pins.
    let _p = alloc::pause();
    let e = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        t_us: epoch().elapsed().as_micros() as u64,
        target,
        name,
        fields,
    };
    let guard = SINK.read().expect("obs sink lock");
    if let Some(sink) = guard.as_ref() {
        sink.record(&e);
    }
}

/// How [`init_from_env`] resolved the `VAB_OBS` switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsMode {
    /// Observability off (default).
    Off,
    /// Events pretty-printed to stderr.
    Stderr,
    /// Events appended to this JSONL file.
    Jsonl(std::path::PathBuf),
}

impl ObsMode {
    /// Short label for preamble lines.
    pub fn label(&self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Stderr => "stderr",
            ObsMode::Jsonl(_) => "jsonl",
        }
    }
}

/// Reads `VAB_OBS` (`off`|`stderr`|`jsonl`) and installs the matching
/// sink. `jsonl` writes to `VAB_OBS_PATH` when set, else
/// `results/trace.jsonl` (parent directories are created). Unknown values
/// warn on stderr and resolve to [`ObsMode::Off`].
pub fn init_from_env() -> std::io::Result<ObsMode> {
    match std::env::var("VAB_OBS").ok().as_deref() {
        None | Some("") | Some("off") | Some("0") => {
            disable();
            Ok(ObsMode::Off)
        }
        Some("stderr") => {
            install(Arc::new(StderrSink::new()));
            Ok(ObsMode::Stderr)
        }
        Some("jsonl") => {
            let path = std::env::var("VAB_OBS_PATH")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|_| std::path::PathBuf::from("results/trace.jsonl"));
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            install(Arc::new(JsonlSink::create(&path)?));
            Ok(ObsMode::Jsonl(path))
        }
        Some(other) => {
            eprintln!(
                "vab-obs: unknown VAB_OBS={other:?} (expected off|stderr|jsonl); staying off"
            );
            disable();
            Ok(ObsMode::Off)
        }
    }
}

/// Emits a structured event with typed key=value fields — free when
/// observability is disabled (fields are not evaluated).
///
/// ```
/// vab_obs::event!("link.arq", "retransmit", seq = 1u64, retries = 3u64);
/// ```
#[macro_export]
macro_rules! event {
    ($target:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            // Field evaluation may allocate (owned strings); keep it out
            // of allocation profiles along with the emit itself.
            let _obs_pause = $crate::alloc::pause();
            $crate::emit($target, $name, &[$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Unit tests share the global sink; serialize them.
    pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A sink that appends rendered JSON lines to a shared buffer.
    #[derive(Default)]
    pub(crate) struct CaptureSink {
        pub lines: Mutex<Vec<String>>,
    }

    impl Sink for CaptureSink {
        fn record(&self, e: &Event<'_>) {
            self.lines.lock().expect("capture lock").push(e.to_json_line());
        }
    }

    #[test]
    fn disabled_by_default_and_emit_is_a_noop() {
        let _g = test_guard();
        disable();
        assert!(!enabled());
        emit("t", "n", &[]); // must not panic with no sink
    }

    #[test]
    fn install_routes_events_and_disable_stops_them() {
        let _g = test_guard();
        let cap = Arc::new(CaptureSink::default());
        install(cap.clone());
        assert!(enabled());
        event!("sim.test", "hello", x = 7u64, ok = true);
        disable();
        event!("sim.test", "after_disable", x = 1u64);
        let lines = cap.lines.lock().expect("lock");
        assert_eq!(lines.len(), 1, "only the pre-disable event lands");
        assert!(lines[0].contains("\"target\":\"sim.test\""));
        assert!(lines[0].contains("\"event\":\"hello\""));
        assert!(lines[0].contains("\"x\":7"));
        assert!(lines[0].contains("\"ok\":true"));
    }

    #[test]
    fn macro_skips_field_evaluation_when_disabled() {
        let _g = test_guard();
        disable();
        let mut evaluated = false;
        event!(
            "t",
            "n",
            v = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "disabled event! must not evaluate fields");
    }

    #[test]
    fn sequence_numbers_increase() {
        let _g = test_guard();
        let cap = Arc::new(CaptureSink::default());
        install(cap.clone());
        event!("t", "a");
        event!("t", "b");
        disable();
        let lines = cap.lines.lock().expect("lock");
        let seq = |s: &str| -> u64 {
            let tail = s.split("\"seq\":").nth(1).expect("seq field");
            tail.split(',').next().expect("value").parse().expect("number")
        };
        assert!(seq(&lines[1]) > seq(&lines[0]));
    }

    #[test]
    fn init_from_env_defaults_off() {
        let _g = test_guard();
        // The test harness does not set VAB_OBS.
        let mode = init_from_env().expect("init");
        assert_eq!(mode, ObsMode::Off);
        assert_eq!(mode.label(), "off");
        assert!(!enabled());
    }
}
