//! Global metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Instruments are looked up (and lazily created) by name in a global
//! registry; the instruments themselves are plain atomics, so recording
//! never blocks other threads. Call sites on hot paths should cache the
//! returned [`Arc`] instead of re-resolving the name per event.
//!
//! [`Snapshot::capture`] freezes everything into plain data that renders to
//! JSON (hand-rolled — the crate stays dependency-free) for the
//! machine-readable report written next to the campaign CSVs.

use crate::event::write_json_string;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotone saturating counter (stops at `u64::MAX` instead of wrapping).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: `bounds.len() + 1` buckets, the last catching
/// everything above the top bound. Bounds are upper-inclusive
/// (`v <= bound` lands at that bound's bucket), matching the cumulative
/// `le` convention of the JSON snapshot.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self.sum_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + v).to_bits())
        });
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds (the final overflow bucket has none).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    stages: BTreeMap<&'static str, Arc<Histogram>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Returns (creating if needed) the counter named `name`.
///
/// Registry lookups may allocate (first-touch instrument creation); they
/// run under an allocation-profiling pause so which thread first resolves
/// a name never shows up in per-stage allocation counts.
pub fn counter(name: &'static str) -> Arc<Counter> {
    let _p = crate::alloc::pause();
    lock().counters.entry(name).or_default().clone()
}

/// Returns (creating if needed) the gauge named `name`.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    let _p = crate::alloc::pause();
    lock().gauges.entry(name).or_default().clone()
}

/// Returns (creating if needed) the histogram named `name` with `bounds`.
/// The first caller's bounds win.
pub fn histogram(name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
    let _p = crate::alloc::pause();
    lock().histograms.entry(name).or_insert_with(|| Arc::new(Histogram::new(bounds))).clone()
}

/// Returns (creating if needed) the per-stage wall-clock histogram for
/// `name`, in seconds with the standard stage buckets.
pub fn stage(name: &'static str) -> Arc<Histogram> {
    let _p = crate::alloc::pause();
    lock()
        .stages
        .entry(name)
        .or_insert_with(|| Arc::new(Histogram::new(crate::timer::STAGE_BUCKETS_S)))
        .clone()
}

/// Adds `n` to counter `name` when observability is enabled; no-op otherwise.
pub fn inc(name: &'static str, n: u64) {
    if crate::enabled() {
        counter(name).add(n);
    }
}

/// Sets gauge `name` when observability is enabled; no-op otherwise.
pub fn set(name: &'static str, v: f64) {
    if crate::enabled() {
        gauge(name).set(v);
    }
}

/// Clears every registered instrument. Test hook — snapshots taken after
/// a reset only see instruments touched since.
pub fn reset() {
    let _p = crate::alloc::pause();
    let mut reg = lock();
    *reg = Registry::default();
}

/// Frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: f64,
    /// Ascending upper bounds (overflow bucket excluded).
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0 < q <= 1`) from the bucket counts.
    ///
    /// The rank is interpolated *geometrically* inside the bucket it lands
    /// in — the right choice for log-spaced bounds like the stage buckets,
    /// where the midpoint of `[1 ms, 3.16 ms]` is ~1.78 ms, not 2.08 ms.
    /// The first bucket assumes one decade below its bound; observations in
    /// the overflow bucket clamp to the top bound. Returns `None` when the
    /// histogram is empty or `q` is out of range.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let below = seen as f64;
            seen += n;
            if (seen as f64) < rank {
                continue;
            }
            let hi = match self.bounds.get(i) {
                Some(&b) => b,
                // Overflow bucket: no upper bound to interpolate toward.
                None => return Some(self.bounds.last().copied().unwrap_or(f64::INFINITY)),
            };
            let lo = if i > 0 { self.bounds[i - 1] } else { hi / 10.0 };
            let frac = ((rank - below) / n as f64).clamp(0.0, 1.0);
            return Some(if lo > 0.0 && hi > lo {
                lo * (hi / lo).powf(frac)
            } else {
                lo + (hi - lo) * frac
            });
        }
        self.bounds.last().copied().or(Some(f64::INFINITY))
    }

    /// The standard trio of latency quantiles: (p50, p95, p99).
    pub fn quantile_trio(&self) -> Option<(f64, f64, f64)> {
        Some((self.percentile(0.50)?, self.percentile(0.95)?, self.percentile(0.99)?))
    }
}

/// Frozen view of the whole registry, ready for JSON rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// General histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-stage wall-clock histograms (seconds).
    pub stages: Vec<HistogramSnapshot>,
    /// Process-wide allocator totals (`None` unless allocation profiling
    /// recorded anything — see [`crate::alloc`]).
    pub alloc_totals: Option<crate::alloc::AllocTotals>,
    /// Per-stage allocation counters (empty unless profiling recorded).
    pub alloc_stages: Vec<crate::alloc::AllocStageSnapshot>,
}

fn freeze(map: &BTreeMap<&'static str, Arc<Histogram>>) -> Vec<HistogramSnapshot> {
    map.iter()
        .map(|(name, h)| HistogramSnapshot {
            name: (*name).to_string(),
            count: h.count(),
            sum: h.sum(),
            bounds: h.bounds().to_vec(),
            buckets: h.bucket_counts(),
        })
        .collect()
}

impl Snapshot {
    /// Captures the current state of every registered instrument, plus
    /// the allocation profile when [`crate::alloc`] has recorded one.
    pub fn capture() -> Snapshot {
        let _p = crate::alloc::pause();
        let totals = crate::alloc::totals();
        let (alloc_totals, alloc_stages) =
            if crate::alloc::profiling() || totals != crate::alloc::AllocTotals::default() {
                (Some(totals), crate::alloc::snapshot_stages())
            } else {
                (None, Vec::new())
            };
        let reg = lock();
        Snapshot {
            counters: reg.counters.iter().map(|(n, c)| ((*n).to_string(), c.get())).collect(),
            gauges: reg.gauges.iter().map(|(n, g)| ((*n).to_string(), g.get())).collect(),
            histograms: freeze(&reg.histograms),
            stages: freeze(&reg.stages),
            alloc_totals,
            alloc_stages,
        }
    }

    /// Renders the snapshot as a JSON object (pretty, stable key order).
    pub fn to_json(&self) -> String {
        fn json_f64(out: &mut String, v: f64) {
            if v.is_finite() {
                let _ = write!(out, "{v:?}");
            } else {
                write_json_string(out, &format!("{v}"));
            }
        }
        fn hist_json(out: &mut String, h: &HistogramSnapshot, indent: &str) {
            let _ = write!(out, "{indent}{{\"name\":");
            write_json_string(out, &h.name);
            let _ = write!(out, ",\"count\":{},\"sum\":", h.count);
            json_f64(out, h.sum);
            // Derived quantiles (log-bucket interpolation) so consumers of
            // the snapshot never have to re-walk the raw buckets.
            if let Some((p50, p95, p99)) = h.quantile_trio() {
                for (key, v) in [("p50", p50), ("p95", p95), ("p99", p99)] {
                    let _ = write!(out, ",\"{key}\":");
                    json_f64(out, v);
                }
            }
            out.push_str(",\"buckets\":[");
            for (i, count) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                match h.bounds.get(i) {
                    Some(b) => json_f64(out, *b),
                    None => out.push_str("\"+inf\""),
                }
                let _ = write!(out, ",\"count\":{count}}}");
            }
            out.push_str("]}");
        }

        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_json_string(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_json_string(&mut out, name);
            out.push_str(": ");
            json_f64(&mut out, *v);
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        let has_alloc = self.alloc_totals.is_some();
        for (key, hists, last) in
            [("histograms", &self.histograms, false), ("stages", &self.stages, !has_alloc)]
        {
            let _ = write!(out, "  \"{key}\": [");
            for (i, h) in hists.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                hist_json(&mut out, h, "    ");
            }
            out.push_str(if hists.is_empty() { "]" } else { "\n  ]" });
            out.push_str(if last { "\n" } else { ",\n" });
        }
        if let Some(t) = &self.alloc_totals {
            let _ = write!(
                out,
                "  \"alloc\": {{\n    \"allocs\": {},\n    \"frees\": {},\n    \
                 \"bytes_allocated\": {},\n    \"bytes_freed\": {},\n    \
                 \"live_bytes\": {},\n    \"peak_live_bytes\": {},\n    \"stages\": [",
                t.allocs,
                t.frees,
                t.bytes_allocated,
                t.bytes_freed,
                t.live_bytes,
                t.peak_live_bytes
            );
            for (i, s) in self.alloc_stages.iter().enumerate() {
                out.push_str(if i > 0 { ",\n      " } else { "\n      " });
                out.push_str("{\"name\":");
                write_json_string(&mut out, &s.name);
                let _ = write!(
                    out,
                    ",\"calls\":{},\"self_allocs\":{},\"self_bytes\":{},\
                     \"cum_allocs\":{},\"cum_bytes\":{}}}",
                    s.calls, s.self_allocs, s.self_bytes, s.cum_allocs, s.cum_bytes
                );
            }
            out.push_str(if self.alloc_stages.is_empty() { "]" } else { "\n    ]" });
            out.push_str("\n  }\n");
        }
        out.push('}');
        out
    }

    /// Writes the JSON snapshot to `path` (creating parent directories).
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Human-readable per-stage time breakdown (one line per stage),
    /// or `None` when no stage has recorded anything.
    pub fn stage_summary(&self) -> Option<String> {
        let active: Vec<&HistogramSnapshot> = self.stages.iter().filter(|h| h.count > 0).collect();
        if active.is_empty() {
            return None;
        }
        let total: f64 = active.iter().map(|h| h.sum).sum();
        let mut out = String::from("stage breakdown (wall-clock):\n");
        for h in &active {
            let share = if total > 0.0 { 100.0 * h.sum / total } else { 0.0 };
            let mean_us = if h.count > 0 { 1e6 * h.sum / h.count as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<24} {:>10} calls  {:>10.3} s total  {:>10.1} us/call  {:>5.1}%",
                h.name, h.count, h.sum, mean_us, share
            );
        }
        Some(out)
    }

    /// Human-readable per-stage allocation breakdown (self-attributed),
    /// or `None` when no allocation profile was captured.
    pub fn alloc_summary(&self) -> Option<String> {
        let totals = self.alloc_totals.as_ref()?;
        let mut out = format!(
            "allocation profile: {} allocs / {} frees, {} bytes allocated, peak live {} bytes\n",
            totals.allocs, totals.frees, totals.bytes_allocated, totals.peak_live_bytes
        );
        let active: Vec<_> = self.alloc_stages.iter().filter(|s| s.cum_allocs > 0).collect();
        for s in &active {
            let per_call = if s.calls > 0 { s.self_allocs as f64 / s.calls as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<24} {:>10} calls  {:>12} self allocs  {:>14} self bytes  {:>8.1} allocs/call",
                s.name, s.calls, s.self_allocs, s.self_bytes, per_call
            );
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry tests share global state with each other; reuse the crate
    /// test lock so parallel test threads do not interleave resets.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::test_guard()
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturated counter must stay saturated");
    }

    #[test]
    fn gauge_stores_last_write() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        // v <= bound lands in that bound's bucket; above-top goes to overflow.
        for v in [0.5, 1.0] {
            h.observe(v); // bucket 0 (le 1.0)
        }
        h.observe(1.0000001); // bucket 1 (le 10.0)
        h.observe(10.0); // bucket 1
        h.observe(100.0); // bucket 2 (le 100.0)
        h.observe(100.5); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        let expected: f64 = 0.5 + 1.0 + 1.0000001 + 10.0 + 100.0 + 100.5;
        assert!((h.sum() - expected).abs() < 1e-9, "sum: {}", h.sum());
    }

    #[test]
    fn histogram_concurrent_observations_all_counted() {
        let h = Arc::new(Histogram::new(&[0.5]));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.25);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts(), vec![8000, 0]);
        assert!((h.sum() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn registry_returns_same_instrument_for_same_name() {
        let _g = guard();
        reset();
        counter("pr2.same").add(3);
        counter("pr2.same").add(4);
        assert_eq!(counter("pr2.same").get(), 7);
        let h1 = histogram("pr2.h", &[1.0]);
        let h2 = histogram("pr2.h", &[99.0]); // first bounds win
        assert_eq!(h2.bounds(), h1.bounds());
        reset();
    }

    #[test]
    fn snapshot_json_is_valid_and_stable() {
        let _g = guard();
        reset();
        counter("pr2.trials").add(10);
        gauge("pr2.level").set(1.5);
        histogram("pr2.lat", &[0.001, 0.01]).observe(0.005);
        stage("pr2.stage_demod").observe(0.002);
        let snap = Snapshot::capture();
        let json = snap.to_json();
        assert!(json.contains("\"pr2.trials\": 10"), "json: {json}");
        assert!(json.contains("\"pr2.level\": 1.5"), "json: {json}");
        assert!(json.contains("\"name\":\"pr2.lat\""), "json: {json}");
        assert!(json.contains("\"le\":\"+inf\""), "json: {json}");
        assert!(json.contains("\"name\":\"pr2.stage_demod\""), "json: {json}");
        // Balanced braces/brackets as a cheap structural sanity check.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
        let summary = snap.stage_summary().expect("stage summary");
        assert!(summary.contains("pr2.stage_demod"), "summary: {summary}");
        reset();
    }

    #[test]
    fn percentiles_interpolate_log_buckets() {
        let snap = HistogramSnapshot {
            name: "t".into(),
            count: 100,
            sum: 0.0,
            bounds: vec![1e-3, 1e-2, 1e-1],
            buckets: vec![50, 45, 5, 0],
        };
        // p50 sits exactly on the first bucket's upper edge.
        let p50 = snap.percentile(0.5).expect("p50");
        assert!((p50 - 1e-3).abs() < 1e-9, "p50 = {p50}");
        // p95 lands on the second bucket's upper edge (50 + 45 = 95).
        let p95 = snap.percentile(0.95).expect("p95");
        assert!((p95 - 1e-2).abs() < 1e-9, "p95 = {p95}");
        // p99 interpolates geometrically inside (1e-2, 1e-1]:
        // frac = (99 - 95) / 5 = 0.8 → 1e-2 * 10^0.8.
        let p99 = snap.percentile(0.99).expect("p99");
        let expect = 1e-2 * 10f64.powf(0.8);
        assert!((p99 / expect - 1.0).abs() < 1e-9, "p99 = {p99}, want {expect}");
        let (q50, q95, q99) = snap.quantile_trio().expect("trio");
        assert_eq!((q50, q95, q99), (p50, p95, p99));
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0.0,
            bounds: vec![1.0],
            buckets: vec![0, 0],
        };
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.quantile_trio(), None);
        // Everything in the overflow bucket clamps to the top bound.
        let over = HistogramSnapshot {
            name: "o".into(),
            count: 4,
            sum: 0.0,
            bounds: vec![1.0, 10.0],
            buckets: vec![0, 0, 4],
        };
        assert_eq!(over.percentile(0.5), Some(10.0));
        // Out-of-range q is rejected.
        let h = HistogramSnapshot {
            name: "h".into(),
            count: 1,
            sum: 0.5,
            bounds: vec![1.0],
            buckets: vec![1, 0],
        };
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.5), None);
        assert!(h.percentile(1.0).is_some());
    }

    #[test]
    fn percentile_single_bucket_interpolates_within_it() {
        // All mass in one interior bucket: every quantile interpolates
        // geometrically inside (1e-2, 1e-1], never outside it.
        let snap = HistogramSnapshot {
            name: "s".into(),
            count: 10,
            sum: 0.0,
            bounds: vec![1e-3, 1e-2, 1e-1],
            buckets: vec![0, 0, 10, 0],
        };
        for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let p = snap.percentile(q).expect("quantile");
            assert!((1e-2..=1e-1 + 1e-12).contains(&p), "q={q}: {p} escaped the bucket");
        }
        // q = 1.0 is the bucket's upper edge exactly (frac = 1).
        let p100 = snap.percentile(1.0).expect("p100");
        assert!((p100 - 1e-1).abs() < 1e-9, "p100 = {p100}");
        // The single first bucket assumes one decade below its bound.
        let first = HistogramSnapshot {
            name: "f".into(),
            count: 4,
            sum: 0.0,
            bounds: vec![1e-3, 1e-2],
            buckets: vec![4, 0, 0],
        };
        let p50 = first.percentile(0.5).expect("p50");
        assert!((1e-4..=1e-3).contains(&p50), "first-bucket p50 = {p50}");
    }

    #[test]
    fn percentile_saturated_top_bucket_clamps_to_top_bound() {
        // Mass split between an interior bucket and a saturated overflow
        // bucket: quantiles landing in the overflow clamp to the top
        // bound instead of extrapolating toward infinity.
        let snap = HistogramSnapshot {
            name: "sat".into(),
            count: 100,
            sum: 0.0,
            bounds: vec![1.0, 10.0],
            buckets: vec![0, 10, 90],
        };
        let p05 = snap.percentile(0.05).expect("p05");
        assert!((1.0..=10.0).contains(&p05), "p05 = {p05}");
        for q in [0.11, 0.5, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), Some(10.0), "q={q} must clamp to the top bound");
        }
        let (p50, p95, p99) = snap.quantile_trio().expect("trio");
        assert_eq!((p50, p95, p99), (10.0, 10.0, 10.0));
    }

    #[test]
    fn snapshot_json_carries_quantiles() {
        let _g = guard();
        reset();
        stage("pr3.q_stage").observe(0.002);
        let snap = Snapshot::capture();
        let json = snap.to_json();
        assert!(json.contains("\"p50\":"), "json: {json}");
        assert!(json.contains("\"p95\":"), "json: {json}");
        assert!(json.contains("\"p99\":"), "json: {json}");
        reset();
    }

    #[test]
    fn snapshot_carries_alloc_profile_when_profiling() {
        let _g = guard();
        reset();
        crate::alloc::reset();
        crate::alloc::enable();
        {
            let tok = crate::alloc::stage_enter("pr8.alloc_stage").expect("profiling on");
            let v: Vec<u8> = Vec::with_capacity(256);
            std::hint::black_box(&v);
            drop(v);
            crate::alloc::stage_exit(tok);
        }
        let snap = Snapshot::capture();
        crate::alloc::disable();
        let totals = snap.alloc_totals.expect("profiling snapshot carries totals");
        assert!(totals.allocs >= 1);
        let stage = snap.alloc_stages.iter().find(|s| s.name == "pr8.alloc_stage").expect("stage");
        assert!(stage.self_allocs >= 1 && stage.self_bytes >= 256);
        let json = snap.to_json();
        assert!(json.contains("\"alloc\": {"), "json: {json}");
        assert!(json.contains("\"peak_live_bytes\""), "json: {json}");
        assert!(json.contains("\"name\":\"pr8.alloc_stage\""), "json: {json}");
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
        let summary = snap.alloc_summary().expect("alloc summary");
        assert!(summary.contains("pr8.alloc_stage"), "summary: {summary}");
        crate::alloc::reset();
        reset();
    }

    #[test]
    fn empty_snapshot_has_no_stage_summary() {
        let _g = guard();
        reset();
        let snap = Snapshot::capture();
        assert!(snap.stage_summary().is_none());
        assert!(snap.to_json().contains("\"counters\": {}"));
        reset();
    }
}
