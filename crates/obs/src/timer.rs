//! Profiling hooks: scoped stage timers and begin/end spans.
//!
//! [`time_stage`] is the workhorse — a drop guard that measures wall-clock
//! time for one named stage and folds it into that stage's global latency
//! histogram. When observability is disabled the guard holds no `Instant`
//! and drop does nothing, so hot paths pay a single relaxed load.

use crate::{alloc, metrics};
use std::time::Instant;

/// Upper bounds (seconds) for stage latency histograms: log-spaced from
/// 1 µs to 10 s, two buckets per decade.
pub const STAGE_BUCKETS_S: &[f64] = &[
    1e-6, 3.16e-6, 1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0,
    3.16, 10.0,
];

/// Drop guard that records elapsed seconds into the stage histogram
/// named at construction. Inert when observability is disabled.
#[must_use = "the timer measures until dropped"]
#[derive(Debug)]
pub struct StageTimer {
    name: &'static str,
    start: Option<Instant>,
    /// Allocation-attribution frame, open while `VAB_PROFILE=1`.
    /// Independent of the event switch: profiles work with the sink off.
    alloc_tok: Option<alloc::StageToken>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(tok) = self.alloc_tok.take() {
            alloc::stage_exit(tok);
        }
        if let Some(start) = self.start {
            metrics::stage(self.name).observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Starts timing stage `name`; the elapsed wall-clock time lands in the
/// stage's latency histogram when the returned guard drops. While
/// allocation profiling is on the guard also attributes every allocation
/// inside the scope to `name` (see [`crate::alloc`]).
#[inline]
pub fn time_stage(name: &'static str) -> StageTimer {
    let start = if crate::enabled() { Some(Instant::now()) } else { None };
    StageTimer { name, start, alloc_tok: alloc::stage_enter(name) }
}

/// Drop guard that emits paired `span_begin` / `span_end` events (the end
/// event carries `dur_us`). Inert when observability is disabled.
#[must_use = "the span measures until dropped"]
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span; `span_begin` is emitted immediately.
    pub fn enter(target: &'static str, name: &'static str) -> Span {
        let start = if crate::enabled() {
            crate::emit(target, "span_begin", &[("span", crate::Value::Str(name))]);
            Some(Instant::now())
        } else {
            None
        };
        Span { target, name, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_us = start.elapsed().as_micros() as u64;
            crate::emit(
                self.target,
                "span_end",
                &[("span", crate::Value::Str(self.name)), ("dur_us", crate::Value::U64(dur_us))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{test_guard, CaptureSink};
    use std::sync::Arc;

    #[test]
    fn stage_timer_records_into_stage_histogram_when_enabled() {
        let _g = test_guard();
        metrics::reset();
        crate::install(Arc::new(crate::NullSink));
        {
            let _t = time_stage("pr2.timer_test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::disable();
        let h = metrics::stage("pr2.timer_test");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.001, "sum: {}", h.sum());
        metrics::reset();
    }

    #[test]
    fn stage_timer_is_inert_when_disabled() {
        let _g = test_guard();
        metrics::reset();
        crate::disable();
        {
            let _t = time_stage("pr2.timer_off");
        }
        assert_eq!(metrics::stage("pr2.timer_off").count(), 0);
        metrics::reset();
    }

    #[test]
    fn span_emits_begin_and_end_with_duration() {
        let _g = test_guard();
        let cap = Arc::new(CaptureSink::default());
        crate::install(cap.clone());
        {
            let _s = Span::enter("sim.test", "trial");
        }
        crate::disable();
        let lines = cap.lines.lock().expect("lock");
        assert_eq!(lines.len(), 2, "lines: {lines:?}");
        assert!(lines[0].contains("\"event\":\"span_begin\""));
        assert!(lines[0].contains("\"span\":\"trial\""));
        assert!(lines[1].contains("\"event\":\"span_end\""));
        assert!(lines[1].contains("\"dur_us\":"));
    }
}
