//! Typed events and JSON rendering.
//!
//! An [`Event`] is a borrowed view — target, name, and a slice of typed
//! key=value fields — so emitting allocates nothing on the caller side
//! beyond what the values themselves need. Sinks render it however they
//! like; [`Event::to_json_line`] is the canonical JSONL form.

use std::fmt::Write as _;

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with enough digits to round-trip).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (no allocation).
    Str(&'static str),
    /// Owned string.
    Owned(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Owned(v)
    }
}

impl Value {
    /// Appends the JSON encoding of this value to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a `.` or exponent.
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no Inf/NaN: encode as strings.
                    write_json_string(out, &format!("{v}"));
                }
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Owned(s) => write_json_string(out, s),
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes and all control characters (RFC 8259).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One structured event, borrowed for the duration of the sink call.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Global monotone sequence number.
    pub seq: u64,
    /// Microseconds since the observability epoch (first install).
    pub t_us: u64,
    /// Emitting subsystem, dotted (`"sim.montecarlo"`, `"link.arq"`).
    pub target: &'static str,
    /// Event name (`"retransmit"`, `"fault_activated"`).
    pub name: &'static str,
    /// Typed key=value payload.
    pub fields: &'a [(&'static str, Value)],
}

impl Event<'_> {
    /// Canonical JSONL rendering (one line, no trailing newline):
    /// `{"seq":…,"t_us":…,"target":…,"event":…,"fields":{…}}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json_line(&mut out);
        out
    }

    /// Appends the JSONL rendering to an existing buffer.
    pub fn write_json_line(&self, out: &mut String) {
        let _ = write!(out, "{{\"seq\":{},\"t_us\":{},\"target\":", self.seq, self.t_us);
        write_json_string(out, self.target);
        out.push_str(",\"event\":");
        write_json_string(out, self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push_str("}}");
    }

    /// Human-readable one-liner for the stderr sink.
    pub fn to_pretty_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ =
            write!(out, "[{:>10.3} ms] {}.{}", self.t_us as f64 / 1000.0, self.target, self.name);
        for (k, v) in self.fields {
            let mut rendered = String::new();
            v.write_json(&mut rendered);
            let _ = write!(out, " {k}={rendered}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event<'a>(fields: &'a [(&'static str, Value)]) -> Event<'a> {
        Event { seq: 3, t_us: 1500, target: "sim.test", name: "e", fields }
    }

    #[test]
    fn json_line_shape() {
        let fields =
            [("a", Value::from(1u64)), ("b", Value::from(-2i64)), ("c", Value::from(true))];
        let line = event(&fields).to_json_line();
        assert_eq!(
            line,
            "{\"seq\":3,\"t_us\":1500,\"target\":\"sim.test\",\"event\":\"e\",\
             \"fields\":{\"a\":1,\"b\":-2,\"c\":true}}"
        );
    }

    #[test]
    fn string_escaping_covers_quotes_backslashes_and_controls() {
        let fields = [("msg", Value::from(String::from("a\"b\\c\nd\te\r\u{1}")))];
        let line = event(&fields).to_json_line();
        assert!(line.contains(r#""msg":"a\"b\\c\nd\te\r\u0001""#), "line: {line}");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_become_strings() {
        let fields = [("x", Value::from(0.1f64)), ("y", Value::from(f64::NAN))];
        let line = event(&fields).to_json_line();
        assert!(line.contains("\"x\":0.1"), "line: {line}");
        assert!(line.contains("\"y\":\"NaN\""), "line: {line}");
    }

    #[test]
    fn pretty_line_is_human_readable() {
        let fields = [("trial", Value::from(12u64))];
        let p = event(&fields).to_pretty_line();
        assert!(p.contains("sim.test.e"), "pretty: {p}");
        assert!(p.contains("trial=12"), "pretty: {p}");
    }
}
