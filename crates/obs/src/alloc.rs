//! Deterministic allocation profiling: a counting [`GlobalAlloc`] wrapper
//! plus per-stage attribution.
//!
//! ## Why counts, not samples
//!
//! Sampling profilers answer "where does the *time* go" and their output
//! moves with machine load, clock resolution and worker count. The hot-path
//! work this stack optimizes (ROADMAP item 5) needs the other question:
//! *which stage allocates, how much, how often* — and those numbers are
//! **work-derived**, not time-derived. A fixed seed performs the same
//! allocations in the same stages no matter how many worker threads the
//! trials are sharded across, so per-stage counters are bit-identical at
//! `--jobs 1` and `--jobs 8` and can be pinned *exactly* in a committed
//! baseline (`crates/bench/alloc_baseline.json`). Any drift is a real
//! behavior change, never noise.
//!
//! ## The three pieces
//!
//! 1. [`CountingAlloc`] — a `#[global_allocator]` wrapper around
//!    [`System`] installed by this crate. When profiling is off (the
//!    default) every allocator call costs one relaxed atomic load and
//!    forwards straight through, mirroring the sink/span disabled-path
//!    discipline. When on, it maintains global relaxed-atomic totals
//!    (allocations, frees, bytes each way, live bytes and their
//!    high-water mark — a peak-RSS proxy) plus thread-local counters the
//!    stage stack snapshots.
//! 2. **The stage stack** — [`stage_enter`] / [`stage_exit`], driven by
//!    [`crate::time_stage`] and [`crate::SpanScope`], maintain a
//!    thread-local stack of open stages. On exit the thread-local counter
//!    delta splits into *self* (this stage minus its children) and
//!    *cumulative* (everything below the stage), folded into a global
//!    per-stage registry keyed by the same `&'static str` names the
//!    latency histograms use — every span name doubles as an allocation
//!    histogram.
//! 3. **Suppression** — [`pause`] returns a guard that stops counting on
//!    the current thread. All of `vab-obs`'s own work (event rendering,
//!    sink buffering, registry mutation, snapshotting) runs under a pause
//!    guard so the profile reflects *workload* allocations only; that
//!    exclusion is what makes the counts deterministic even with a JSONL
//!    sink attached, whose shard buffers grow with thread-dependent
//!    timing.
//!
//! ## Switching it on
//!
//! ```text
//! VAB_PROFILE=0|off   # default: one relaxed load per malloc, nothing recorded
//! VAB_PROFILE=1|on    # count + attribute allocations
//! ```
//!
//! [`init_from_env`] reads the switch; [`enable`] / [`disable`] drive it
//! programmatically (tests).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Master switch: one relaxed load on every allocator call decides
/// whether any accounting happens.
static PROFILING: AtomicBool = AtomicBool::new(false);

// Global process-wide totals (updated on every counted allocator call).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
/// Live bytes (allocated − freed since profiling started). Updated with
/// wrapping arithmetic: a free of a block allocated before profiling
/// started may transiently push it "negative" (a huge u64); readers clamp.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`] — the peak-RSS proxy.
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread counters the stage stack snapshots. Const-initialized
    /// `Cell`s with no destructor: safe to touch from inside the
    /// allocator at any point in a thread's life.
    static TLS_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TLS_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Re-entrancy / suppression depth: counting is skipped while > 0.
    static TLS_PAUSED: Cell<u32> = const { Cell::new(0) };
}

thread_local! {
    /// The open-stage stack for this thread (LIFO, one frame per live
    /// stage timer / span scope).
    static STAGE_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One open stage on a thread's stack.
struct Frame {
    name: &'static str,
    start_allocs: u64,
    start_bytes: u64,
    /// Cumulative counts already attributed to closed children, so the
    /// parent can compute its *self* share on exit.
    child_allocs: u64,
    child_bytes: u64,
}

/// True when allocation profiling is recording.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns allocation accounting on.
pub fn enable() {
    PROFILING.store(true, Ordering::Release);
}

/// Turns allocation accounting off. Registered totals and per-stage
/// counts are retained (snapshot after disabling is race-free).
pub fn disable() {
    PROFILING.store(false, Ordering::Release);
}

/// Reads `VAB_PROFILE` (`0|off` / `1|on|alloc`) and enables or disables
/// accordingly. Returns whether profiling ended up on. Unknown values
/// warn on stderr and resolve to off.
pub fn init_from_env() -> bool {
    match std::env::var("VAB_PROFILE").ok().as_deref() {
        None | Some("") | Some("0") | Some("off") => {
            disable();
            false
        }
        Some("1") | Some("on") | Some("alloc") => {
            enable();
            true
        }
        Some(other) => {
            eprintln!("vab-obs: unknown VAB_PROFILE={other:?} (expected 0|1); staying off");
            disable();
            false
        }
    }
}

/// RAII guard suppressing allocation accounting on this thread. Used
/// around all of `vab-obs`'s own allocations (event rendering, sink
/// buffers, registry mutation) so profiles count workload work only.
#[must_use = "counting resumes when the guard drops"]
pub struct PauseGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Suspends counting on the current thread until the guard drops.
pub fn pause() -> PauseGuard {
    TLS_PAUSED.with(|p| p.set(p.get() + 1));
    PauseGuard { _not_send: std::marker::PhantomData }
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        TLS_PAUSED.with(|p| p.set(p.get().saturating_sub(1)));
    }
}

/// The counting allocator. Installed as the crate's
/// `#[global_allocator]`; every binary in the workspace that links
/// `vab-obs` gets allocation accounting for free (and pays one relaxed
/// load per call while it is off).
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn count_alloc(size: usize) {
        let size = size as u64;
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed).wrapping_add(size);
        // High-water update: fetch_max keeps this wait-free. `live` reads
        // as a huge number while transiently "negative"; mask those out.
        if (live as i64) > 0 {
            PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        TLS_ALLOCS.with(|c| c.set(c.get() + 1));
        TLS_BYTES.with(|c| c.set(c.get() + size));
    }

    #[inline]
    fn count_free(size: usize) {
        FREES.fetch_add(1, Ordering::Relaxed);
        BYTES_FREED.fetch_add(size as u64, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }

    #[inline]
    fn counting() -> bool {
        profiling() && TLS_PAUSED.with(|p| p.get()) == 0
    }
}

// SAFETY: pure pass-through to `System`; the accounting touches only
// atomics and const-initialized (destructor-free) thread-locals, so it
// never allocates, never re-enters, and is safe at any point in a
// thread's lifetime.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if Self::counting() {
            Self::count_alloc(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if Self::counting() {
            Self::count_alloc(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if Self::counting() {
            Self::count_free(layout.size());
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if Self::counting() {
            // One alloc of the new size plus one free of the old: the
            // convention that keeps counts deterministic and live-byte
            // accounting exact regardless of in-place growth.
            Self::count_alloc(new_size);
            Self::count_free(layout.size());
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Opaque receipt for one [`stage_enter`]; redeemed by [`stage_exit`].
#[derive(Debug)]
pub struct StageToken {
    index: usize,
}

/// Pushes stage `name` onto this thread's attribution stack. Returns
/// `None` (and does nothing) when profiling is off — the caller stores
/// the `Option` and skips the exit, so a disabled site costs one load.
pub fn stage_enter(name: &'static str) -> Option<StageToken> {
    if !profiling() {
        return None;
    }
    let _p = pause(); // the stack Vec may grow; don't count our own push
    STAGE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let index = stack.len();
        stack.push(Frame {
            name,
            start_allocs: TLS_ALLOCS.with(|c| c.get()),
            start_bytes: TLS_BYTES.with(|c| c.get()),
            child_allocs: 0,
            child_bytes: 0,
        });
        Some(StageToken { index })
    })
}

/// What one closed stage observed, in allocator events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations inside the stage, children included.
    pub allocs: u64,
    /// Bytes requested inside the stage, children included.
    pub bytes: u64,
    /// Allocations attributed to this stage alone (children excluded).
    pub self_allocs: u64,
    /// Bytes attributed to this stage alone (children excluded).
    pub self_bytes: u64,
}

/// Pops the stage opened by `token`, folds its counts into the global
/// per-stage registry, credits the parent frame's child accumulator, and
/// returns the delta (for `span_end` events). Stages still open above
/// the token — possible only if guards were dropped out of LIFO order —
/// are force-closed first so the stack stays consistent.
pub fn stage_exit(token: StageToken) -> AllocDelta {
    let _p = pause();
    STAGE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let mut own = AllocDelta::default();
        while stack.len() > token.index {
            let frame = stack.pop().expect("stack length checked");
            let allocs = TLS_ALLOCS.with(|c| c.get()) - frame.start_allocs;
            let bytes = TLS_BYTES.with(|c| c.get()) - frame.start_bytes;
            let delta = AllocDelta {
                allocs,
                bytes,
                self_allocs: allocs.saturating_sub(frame.child_allocs),
                self_bytes: bytes.saturating_sub(frame.child_bytes),
            };
            record_stage(frame.name, &delta);
            if let Some(parent) = stack.last_mut() {
                parent.child_allocs += allocs;
                parent.child_bytes += bytes;
            }
            if stack.len() == token.index {
                own = delta;
            }
        }
        own
    })
}

/// Per-stage accumulated allocation counters (global, all threads).
#[derive(Debug, Default)]
struct StageCounters {
    calls: AtomicU64,
    self_allocs: AtomicU64,
    self_bytes: AtomicU64,
    cum_allocs: AtomicU64,
    cum_bytes: AtomicU64,
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<StageCounters>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Arc<StageCounters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn record_stage(name: &'static str, delta: &AllocDelta) {
    let counters = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.entry(name).or_default().clone()
    };
    counters.calls.fetch_add(1, Ordering::Relaxed);
    counters.self_allocs.fetch_add(delta.self_allocs, Ordering::Relaxed);
    counters.self_bytes.fetch_add(delta.self_bytes, Ordering::Relaxed);
    counters.cum_allocs.fetch_add(delta.allocs, Ordering::Relaxed);
    counters.cum_bytes.fetch_add(delta.bytes, Ordering::Relaxed);
}

/// Frozen process-wide allocator totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Allocation calls counted.
    pub allocs: u64,
    /// Deallocation calls counted.
    pub frees: u64,
    /// Bytes requested across all counted allocations.
    pub bytes_allocated: u64,
    /// Bytes released across all counted frees.
    pub bytes_freed: u64,
    /// Live bytes right now (clamped at zero).
    pub live_bytes: u64,
    /// High-water mark of live bytes — the peak-RSS proxy.
    pub peak_live_bytes: u64,
}

/// Snapshots the global totals.
pub fn totals() -> AllocTotals {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    AllocTotals {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        bytes_freed: BYTES_FREED.load(Ordering::Relaxed),
        live_bytes: if (live as i64) < 0 { 0 } else { live },
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Frozen per-stage allocation counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocStageSnapshot {
    /// Stage name (shared with the latency histogram).
    pub name: String,
    /// Stage invocations recorded.
    pub calls: u64,
    /// Allocations attributed to the stage alone.
    pub self_allocs: u64,
    /// Bytes attributed to the stage alone.
    pub self_bytes: u64,
    /// Allocations inside the stage, children included.
    pub cum_allocs: u64,
    /// Bytes inside the stage, children included.
    pub cum_bytes: u64,
}

/// Snapshots every stage's accumulated counters (name-sorted).
pub fn snapshot_stages() -> Vec<AllocStageSnapshot> {
    let _p = pause();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, c)| AllocStageSnapshot {
            name: (*name).to_string(),
            calls: c.calls.load(Ordering::Relaxed),
            self_allocs: c.self_allocs.load(Ordering::Relaxed),
            self_bytes: c.self_bytes.load(Ordering::Relaxed),
            cum_allocs: c.cum_allocs.load(Ordering::Relaxed),
            cum_bytes: c.cum_bytes.load(Ordering::Relaxed),
        })
        .collect()
}

/// Clears the per-stage registry and global totals. Test hook — profiles
/// taken after a reset only see work since.
pub fn reset() {
    let _p = pause();
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    for c in [&ALLOCS, &FREES, &BYTES_ALLOCATED, &BYTES_FREED, &LIVE_BYTES, &PEAK_LIVE_BYTES] {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_guard;

    #[test]
    fn disabled_profiling_counts_nothing() {
        let _g = test_guard();
        disable();
        reset();
        let _v: Vec<u64> = (0..64).collect();
        assert_eq!(totals(), AllocTotals::default());
        assert!(snapshot_stages().is_empty());
        assert!(stage_enter("alloc.off_probe").is_none());
    }

    #[test]
    fn enabled_profiling_counts_and_attributes() {
        let _g = test_guard();
        reset();
        enable();
        let tok = stage_enter("alloc.test_outer").expect("profiling on");
        let outer: Vec<u8> = Vec::with_capacity(1024);
        let inner_delta = {
            let tok = stage_enter("alloc.test_inner").expect("profiling on");
            let _inner: Vec<u8> = Vec::with_capacity(512);
            stage_exit(tok)
        };
        let outer_delta = stage_exit(tok);
        disable();
        drop(outer);
        assert!(inner_delta.allocs >= 1 && inner_delta.bytes >= 512, "{inner_delta:?}");
        assert_eq!(inner_delta.allocs, inner_delta.self_allocs, "leaf stage: self == cum");
        assert!(outer_delta.allocs > inner_delta.allocs, "{outer_delta:?}");
        assert_eq!(
            outer_delta.self_allocs,
            outer_delta.allocs - inner_delta.allocs,
            "parent self excludes the child"
        );
        let stages = snapshot_stages();
        let outer_snap = stages.iter().find(|s| s.name == "alloc.test_outer").expect("outer");
        let inner_snap = stages.iter().find(|s| s.name == "alloc.test_inner").expect("inner");
        assert_eq!(outer_snap.calls, 1);
        assert_eq!(inner_snap.cum_allocs, inner_delta.allocs);
        assert_eq!(outer_snap.cum_allocs, outer_delta.allocs);
        assert_eq!(outer_snap.self_bytes, outer_delta.self_bytes);
        let t = totals();
        assert!(t.allocs >= outer_delta.allocs);
        assert!(t.peak_live_bytes >= 1024);
        reset();
    }

    #[test]
    fn pause_guard_suppresses_counting() {
        let _g = test_guard();
        reset();
        enable();
        let tok = stage_enter("alloc.test_paused").expect("profiling on");
        {
            let _p = pause();
            let _v: Vec<u8> = Vec::with_capacity(4096);
        }
        let delta = stage_exit(tok);
        disable();
        assert_eq!(delta.allocs, 0, "paused allocations must not attribute: {delta:?}");
        reset();
    }

    #[test]
    fn stage_counts_are_identical_across_thread_counts() {
        let _g = test_guard();
        // The determinism contract in miniature: the same per-item work
        // split across 1 vs 4 threads yields identical per-stage counts.
        let run = |threads: usize| -> Vec<AllocStageSnapshot> {
            reset();
            enable();
            let items: Vec<usize> = (0..32).collect();
            std::thread::scope(|scope| {
                for chunk in items.chunks(items.len().div_ceil(threads)) {
                    scope.spawn(move || {
                        for &i in chunk {
                            let tok = stage_enter("alloc.det_stage").expect("on");
                            let v: Vec<u64> = (0..(i % 7) + 3).map(|x| x as u64).collect();
                            std::hint::black_box(&v);
                            drop(v);
                            stage_exit(tok);
                        }
                    });
                }
            });
            disable();
            snapshot_stages()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "per-stage alloc counts must not depend on thread count");
        reset();
    }

    #[test]
    fn out_of_order_drop_force_closes_inner_frames() {
        let _g = test_guard();
        reset();
        enable();
        let outer = stage_enter("alloc.test_ooo_outer").expect("on");
        let _inner = stage_enter("alloc.test_ooo_inner").expect("on");
        // Exit the outer token first: the inner frame must close too.
        let _ = stage_exit(outer);
        disable();
        let stages = snapshot_stages();
        assert!(stages.iter().any(|s| s.name == "alloc.test_ooo_inner" && s.calls == 1));
        assert!(stages.iter().any(|s| s.name == "alloc.test_ooo_outer" && s.calls == 1));
        reset();
    }

    #[test]
    fn init_from_env_defaults_off() {
        let _g = test_guard();
        // The test harness does not set VAB_PROFILE.
        assert!(!init_from_env());
        assert!(!profiling());
    }
}
