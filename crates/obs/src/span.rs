//! Distributed tracing: trace/span identity and drop-guard span scopes.
//!
//! A [`TraceContext`] names one node in a cross-process span tree:
//! `trace_id` identifies the whole tree (for service jobs it is the
//! job's content digest), `span_id` this node, `parent_span_id` the node
//! above it. Identities are **content-derived** — a child's id is a hash
//! of `(trace_id, parent_span_id, name, ordinal)`, never wall clock or a
//! global counter — so the span *set* produced by a fixed workload is
//! bit-identical at any worker count, which is what lets the service
//! determinism tests compare 1-worker and 8-worker traces.
//!
//! [`SpanScope`] is the drop guard: `span_begin` on entry, `span_end`
//! (carrying `dur_us`) on drop, and the elapsed time folds into the
//! stage-latency histogram named after the span — the same machinery
//! [`crate::time_stage`] uses, so every span site doubles as a latency
//! instrument for the live telemetry plane. Disabled observability keeps
//! a span site at one relaxed atomic load: no `Instant`, no hash, no
//! event.
//!
//! Cross-thread spans (a queue wait that begins on the submitting thread
//! and ends on a worker) use the free functions [`span_begin`] /
//! [`span_end`] with an explicit duration instead of a guard.

use crate::Value;
use crate::{alloc, metrics};
use std::time::{Duration, Instant};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, folded from `state`. Local so the crate stays
/// dependency-free (`vab-obs` sits below `vab-util` in the workspace).
fn fnv1a64_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Derives a child span id from its coordinates. Zero is reserved for
/// "no parent", so a (vanishingly unlikely) zero hash remaps to one.
fn derive_span_id(trace_id: u64, parent_span_id: u64, name: &str, ordinal: u64) -> u64 {
    let mut h = fnv1a64_fold(FNV_OFFSET, &trace_id.to_le_bytes());
    h = fnv1a64_fold(h, &parent_span_id.to_le_bytes());
    h = fnv1a64_fold(h, name.as_bytes());
    h = fnv1a64_fold(h, &ordinal.to_le_bytes());
    if h == 0 {
        1
    } else {
        h
    }
}

/// Serializable identity of one span in a (possibly cross-process) trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole tree (the job's content digest for service
    /// jobs).
    pub trace_id: u64,
    /// This span.
    pub span_id: u64,
    /// The span above (0 = this is a root).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// A root context for `trace_id`: the tree's anchor node, named so
    /// that re-deriving it from the same id always yields the same span.
    pub fn root(trace_id: u64, name: &str) -> TraceContext {
        TraceContext { trace_id, span_id: derive_span_id(trace_id, 0, name, 0), parent_span_id: 0 }
    }

    /// The child context for a span named `name`; `ordinal`
    /// disambiguates repeats under one parent (retry attempts).
    pub fn child(&self, name: &str, ordinal: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: derive_span_id(self.trace_id, self.span_id, name, ordinal),
            parent_span_id: self.span_id,
        }
    }

    /// Wire form: `trace-span-parent`, three fixed-width hex words.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}-{:016x}", self.trace_id, self.span_id, self.parent_span_id)
    }

    /// Parses [`TraceContext::encode`] output. Returns `None` on any
    /// deviation (wrong arity, width, or non-hex) — a malformed context
    /// on the wire degrades to "untraced", never to an error.
    pub fn decode(s: &str) -> Option<TraceContext> {
        let mut words = s.split('-');
        let mut next = || {
            let w = words.next()?;
            if w.len() != 16 || !w.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            u64::from_str_radix(w, 16).ok()
        };
        let ctx = TraceContext { trace_id: next()?, span_id: next()?, parent_span_id: next()? };
        if words.next().is_some() {
            return None;
        }
        Some(ctx)
    }
}

fn emit_begin(target: &'static str, name: &'static str, ctx: &TraceContext) {
    // The hex renders allocate; keep them out of allocation profiles.
    let _p = alloc::pause();
    crate::emit(
        target,
        "span_begin",
        &[
            ("span", Value::Str(name)),
            ("trace", Value::Owned(format!("{:016x}", ctx.trace_id))),
            ("id", Value::Owned(format!("{:016x}", ctx.span_id))),
            ("parent", Value::Owned(format!("{:016x}", ctx.parent_span_id))),
        ],
    );
}

fn emit_end(
    target: &'static str,
    name: &'static str,
    ctx: &TraceContext,
    dur: Duration,
    alloc_delta: Option<alloc::AllocDelta>,
) {
    let _p = alloc::pause();
    let mut fields = vec![
        ("span", Value::Str(name)),
        ("trace", Value::Owned(format!("{:016x}", ctx.trace_id))),
        ("id", Value::Owned(format!("{:016x}", ctx.span_id))),
        ("parent", Value::Owned(format!("{:016x}", ctx.parent_span_id))),
        ("dur_us", Value::U64(dur.as_micros() as u64)),
    ];
    if let Some(d) = alloc_delta {
        fields.push(("alloc_n", Value::U64(d.allocs)));
        fields.push(("alloc_b", Value::U64(d.bytes)));
    }
    crate::emit(target, "span_end", &fields);
    metrics::stage(name).observe(dur.as_secs_f64());
}

/// Emits the `span_begin` event for a cross-thread span (one whose end
/// happens on another thread, so no drop guard can cover it). No-op when
/// observability is disabled.
pub fn span_begin(target: &'static str, name: &'static str, ctx: &TraceContext) {
    if crate::enabled() {
        emit_begin(target, name, ctx);
    }
}

/// Emits the `span_end` event for a cross-thread span, with an
/// explicitly measured duration, and folds the duration into the
/// span-named stage histogram. No-op when observability is disabled.
pub fn span_end(target: &'static str, name: &'static str, ctx: &TraceContext, dur: Duration) {
    if crate::enabled() {
        // Cross-thread spans cannot carry a thread-local attribution
        // frame: the allocations happened on another thread's stack.
        emit_end(target, name, ctx, dur, None);
    }
}

/// Drop-guard scope for one traced span: `span_begin` on entry,
/// `span_end` (with `dur_us`) plus a stage-histogram observation on
/// drop. Inert — one relaxed atomic load, no id derivation — when
/// observability is disabled.
#[must_use = "the span measures until dropped"]
#[derive(Debug)]
pub struct SpanScope {
    target: &'static str,
    name: &'static str,
    ctx: TraceContext,
    start: Option<Instant>,
    /// Allocation-attribution frame, open while `VAB_PROFILE=1` —
    /// independent of the event switch, so profiles work with no sink.
    alloc_tok: Option<alloc::StageToken>,
}

impl SpanScope {
    /// Opens the child span `name` under `parent` (ordinal 0).
    pub fn enter(target: &'static str, name: &'static str, parent: &TraceContext) -> SpanScope {
        Self::enter_ord(target, name, parent, 0)
    }

    /// Opens the child span `name` under `parent`, disambiguated by
    /// `ordinal` (use the attempt number for retried work).
    pub fn enter_ord(
        target: &'static str,
        name: &'static str,
        parent: &TraceContext,
        ordinal: u64,
    ) -> SpanScope {
        let alloc_tok = alloc::stage_enter(name);
        if !crate::enabled() {
            return SpanScope { target, name, ctx: *parent, start: None, alloc_tok };
        }
        let ctx = parent.child(name, ordinal);
        emit_begin(target, name, &ctx);
        SpanScope { target, name, ctx, start: Some(Instant::now()), alloc_tok }
    }

    /// Opens a span whose context was derived by the caller (e.g. the
    /// exact context that was serialized onto the wire).
    pub fn enter_with(target: &'static str, name: &'static str, ctx: TraceContext) -> SpanScope {
        let alloc_tok = alloc::stage_enter(name);
        if !crate::enabled() {
            return SpanScope { target, name, ctx, start: None, alloc_tok };
        }
        emit_begin(target, name, &ctx);
        SpanScope { target, name, ctx, start: Some(Instant::now()), alloc_tok }
    }

    /// This span's context — the parent for anything nested under it.
    /// (When observability is disabled this echoes the parent context;
    /// nothing is emitted anywhere, so the value is inert.)
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// True when the scope is live (observability was enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        // Close the attribution frame first so the emit below (paused)
        // can never leak observability work into the span's own counts.
        let delta = self.alloc_tok.take().map(alloc::stage_exit);
        if let Some(start) = self.start {
            emit_end(self.target, self.name, &self.ctx, start.elapsed(), delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{test_guard, CaptureSink};
    use std::sync::Arc;

    #[test]
    fn ids_are_content_derived_and_reproducible() {
        let root = TraceContext::root(0xabcd, "job");
        assert_eq!(root, TraceContext::root(0xabcd, "job"));
        assert_ne!(root.span_id, 0, "root span id must not collide with the no-parent marker");
        let a = root.child("svc.submit", 0);
        let b = root.child("svc.submit", 0);
        assert_eq!(a, b, "same coordinates, same id");
        assert_ne!(a.span_id, root.child("svc.submit", 1).span_id, "ordinal disambiguates");
        assert_ne!(a.span_id, root.child("svc.handle", 0).span_id, "name disambiguates");
        assert_eq!(a.parent_span_id, root.span_id);
        assert_eq!(a.trace_id, 0xabcd);
    }

    #[test]
    fn encode_decode_round_trips_and_rejects_garbage() {
        let ctx = TraceContext::root(0xff00_0000_0000_0001, "job").child("x", 3);
        assert_eq!(TraceContext::decode(&ctx.encode()), Some(ctx));
        for bad in [
            "",
            "xyz",
            "0-1-2",
            "0123456789abcdef-0123456789abcdef",
            "0123456789abcdef-0123456789abcdef-0123456789abcdeZ",
            "0123456789abcdef-0123456789abcdef-0123456789abcdef-0123456789abcdef",
        ] {
            assert_eq!(TraceContext::decode(bad), None, "must reject {bad:?}");
        }
    }

    #[test]
    fn scope_emits_begin_end_with_ids_and_feeds_the_stage_histogram() {
        let _g = test_guard();
        crate::metrics::reset();
        let cap = Arc::new(CaptureSink::default());
        crate::install(cap.clone());
        let root = TraceContext::root(0x1234, "job");
        let child_ctx = {
            let scope = SpanScope::enter("svc.test", "pr7.span_scope", &root);
            assert!(scope.is_recording());
            scope.ctx()
        };
        crate::disable();
        let lines = cap.lines.lock().expect("lock");
        assert_eq!(lines.len(), 2, "lines: {lines:?}");
        assert!(lines[0].contains("\"event\":\"span_begin\""));
        assert!(lines[0].contains("\"trace\":\"0000000000001234\""));
        assert!(lines[0].contains(&format!("\"id\":\"{:016x}\"", child_ctx.span_id)));
        assert!(lines[0].contains(&format!("\"parent\":\"{:016x}\"", root.span_id)));
        assert!(lines[1].contains("\"event\":\"span_end\""));
        assert!(lines[1].contains("\"dur_us\":"));
        assert_eq!(metrics::stage("pr7.span_scope").count(), 1, "span must feed the stage hist");
        crate::metrics::reset();
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _g = test_guard();
        crate::disable();
        crate::metrics::reset();
        let root = TraceContext::root(7, "job");
        {
            let scope = SpanScope::enter("svc.test", "pr7.span_off", &root);
            assert!(!scope.is_recording());
            assert_eq!(scope.ctx(), root, "disabled scope echoes the parent");
        }
        span_begin("svc.test", "pr7.span_off", &root);
        span_end("svc.test", "pr7.span_off", &root, Duration::from_millis(5));
        assert_eq!(metrics::stage("pr7.span_off").count(), 0);
        crate::metrics::reset();
    }

    #[test]
    fn cross_thread_span_functions_emit_when_enabled() {
        let _g = test_guard();
        crate::metrics::reset();
        let cap = Arc::new(CaptureSink::default());
        crate::install(cap.clone());
        let ctx = TraceContext::root(9, "job").child("pr7.queue_wait", 0);
        span_begin("svc.pool", "pr7.queue_wait", &ctx);
        span_end("svc.pool", "pr7.queue_wait", &ctx, Duration::from_micros(1500));
        crate::disable();
        let lines = cap.lines.lock().expect("lock");
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"dur_us\":1500"));
        assert_eq!(metrics::stage("pr7.queue_wait").count(), 1);
        crate::metrics::reset();
    }
}
