//! Pluggable event sinks: null, stderr pretty-printer, JSONL file writer.
//!
//! The JSONL sink is the one that matters for performance: Monte Carlo
//! workers emit concurrently, so it keeps per-shard string buffers (threads
//! hash onto independent `Mutex<String>`s) and only takes the file lock when
//! a shard buffer passes its flush threshold. Workers therefore almost never
//! contend with each other, and never serialize on the file per event.

use crate::event::Event;
use std::collections::hash_map::DefaultHasher;
use std::fs::File;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Destination for structured events.
pub trait Sink: Send + Sync {
    /// Records one event. Called concurrently from worker threads.
    fn record(&self, e: &Event<'_>);
    /// Drains any internal buffers. Default: nothing buffered.
    fn flush(&self) {}
}

/// Discards everything. Useful to keep timers/metrics live without a stream.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _e: &Event<'_>) {}
}

/// Pretty-prints each event to stderr, one line per event.
#[derive(Debug, Default)]
pub struct StderrSink;

impl StderrSink {
    /// Creates a stderr pretty-printing sink.
    pub fn new() -> Self {
        StderrSink
    }
}

impl Sink for StderrSink {
    fn record(&self, e: &Event<'_>) {
        eprintln!("{}", e.to_pretty_line());
    }
}

/// Number of independent line buffers; threads hash onto one each.
const SHARDS: usize = 16;

/// Bytes a shard buffer may hold before it is drained to the file.
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// Appends events as JSON lines to a file, buffered per thread shard.
pub struct JsonlSink {
    shards: [Mutex<String>; SHARDS],
    file: Mutex<File>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            shards: std::array::from_fn(|_| Mutex::new(String::new())),
            file: Mutex::new(file),
        })
    }

    fn shard_index() -> usize {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn drain(&self, buf: &mut String) {
        if buf.is_empty() {
            return;
        }
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Trace loss on a full disk is not worth killing a campaign over.
        let _ = file.write_all(buf.as_bytes());
        buf.clear();
    }
}

impl Sink for JsonlSink {
    fn record(&self, e: &Event<'_>) {
        let mut buf = self.shards[Self::shard_index()].lock().unwrap_or_else(|p| p.into_inner());
        e.write_json_line(&mut buf);
        buf.push('\n');
        if buf.len() >= FLUSH_THRESHOLD {
            let mut local = std::mem::take(&mut *buf);
            drop(buf); // release the shard before touching the file lock
            self.drain(&mut local);
        }
    }

    fn flush(&self) {
        for shard in &self.shards {
            let mut local = {
                let mut buf = shard.lock().unwrap_or_else(|p| p.into_inner());
                std::mem::take(&mut *buf)
            };
            self.drain(&mut local);
        }
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn sample_event<'a>(fields: &'a [(&'static str, Value)]) -> Event<'a> {
        Event { seq: 0, t_us: 42, target: "test", name: "tick", fields }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("vab-obs-test-jsonl");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("one_line_per_event.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        let fields = [("k", Value::from(1u64))];
        for _ in 0..3 {
            sink.record(&sample_event(&fields));
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"event\":\"tick\""), "line: {line}");
        }
    }

    #[test]
    fn jsonl_sink_escapes_field_strings() {
        let dir = std::env::temp_dir().join("vab-obs-test-jsonl");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("escaping.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        let fields = [("msg", Value::from(String::from("line1\nline2\t\"q\"\\")))];
        sink.record(&sample_event(&fields));
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 1, "embedded newline must stay escaped");
        assert!(text.contains(r#"line1\nline2\t\"q\"\\"#), "text: {text}");
    }

    #[test]
    fn jsonl_sink_drop_flushes_buffers() {
        let dir = std::env::temp_dir().join("vab-obs-test-jsonl");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("drop_flush.jsonl");
        {
            let sink = JsonlSink::create(&path).expect("create");
            sink.record(&sample_event(&[]));
            // no explicit flush: Drop must drain the shard buffers
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn concurrent_records_all_land_after_flush() {
        let dir = std::env::temp_dir().join("vab-obs-test-jsonl");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("concurrent.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let fields = [("k", Value::from(1u64))];
                    for _ in 0..100 {
                        sink.record(&sample_event(&fields));
                    }
                });
            }
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 800);
    }
}
