//! Multi-hop routing policies for ocean-scale cells.
//!
//! A single reader can only serve nodes whose direct backscatter link
//! closes; at ocean scale a cell's rim sits past the reliable direct
//! range. Routing lets rim nodes relay through better-placed neighbors:
//!
//! * **Vector-based forwarding (VBF)** — a node forwards through
//!   neighbors inside a *routing pipe* around the straight line from
//!   itself to the reader, greedily picking the neighbor that makes the
//!   most progress. The classic UWSN geographic policy: no routing state
//!   beyond positions, robust to churn.
//! * **Cluster-head election** — a LEACH-style policy: a deterministic
//!   per-epoch election picks a fraction of nodes as heads, members
//!   uplink to their nearest head in one hop, and heads talk to the
//!   reader. Two hops worst case, at the cost of head-node airtime.
//!
//! Both planners are pure functions of the cell geometry and the master
//! seed: equal inputs yield identical routes, which keeps ocean-scale
//! reports content-addressable.

use vab_acoustics::geometry::Position;
use vab_mac::Addr;
use vab_util::hash::fnv1a64;

/// Maximum relay hops a VBF route may take before the planner gives up —
/// bounds both route length and the TDMA airtime a relayed node consumes.
pub const MAX_HOPS: usize = 8;

/// Minimum forward progress per VBF hop, as a fraction of the remaining
/// source–reader distance; prevents shuffling between near-equidistant
/// neighbors.
pub const MIN_PROGRESS_FRAC: f64 = 0.05;

/// Fraction of a cell's members elected cluster heads.
pub const CLUSTER_HEAD_FRAC: f64 = 0.1;

/// Direct-link frame-success probability above which a node skips
/// relaying entirely.
pub const DIRECT_OK_PROB: f64 = 0.9;

/// Minimum single-hop frame-success probability for a neighbor to count
/// as reachable during VBF selection — the routing-layer face of a
/// transmission range. Without it, greedy max-progress would happily hop
/// over a link that never closes.
pub const MIN_HOP_PROB: f64 = 0.5;

/// A routing policy for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Every node talks straight to its reader (the null policy — what a
    /// single-reader deployment is stuck with).
    Direct,
    /// Vector-based forwarding through a routing pipe.
    Vbf,
    /// LEACH-style cluster-head election; members uplink via their head.
    ClusterHead,
}

impl RoutePolicy {
    /// Canonical lowercase label (used in job specs and CSV columns).
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutePolicy::Direct => "direct",
            RoutePolicy::Vbf => "vbf",
            RoutePolicy::ClusterHead => "cluster",
        }
    }

    /// Parses the canonical label back.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "direct" => Ok(RoutePolicy::Direct),
            "vbf" => Ok(RoutePolicy::Vbf),
            "cluster" => Ok(RoutePolicy::ClusterHead),
            other => Err(format!("unknown route policy {other:?} (direct|vbf|cluster)")),
        }
    }
}

/// One cell member as the route planner sees it.
#[derive(Debug, Clone, Copy)]
pub struct RouteNode {
    /// Global MAC address.
    pub addr: Addr,
    /// Node position.
    pub pos: Position,
    /// Frame-success probability of the node's *direct* link to the
    /// reader on a clean slot.
    pub direct_prob: f64,
}

/// A planned uplink route for one node.
#[derive(Debug, Clone)]
pub struct RelayRoute {
    /// The source node.
    pub addr: Addr,
    /// Relay addresses in order, source → … → last relay (empty = direct).
    pub relays: Vec<Addr>,
    /// End-to-end delivery probability on clean slots: the product of
    /// every node-to-node hop success and the final hop's direct success.
    pub delivery_prob: f64,
}

impl RelayRoute {
    /// Total uplink transmissions a delivery costs (1 for direct).
    pub fn hops(&self) -> usize {
        self.relays.len() + 1
    }
}

/// Perpendicular distance of `p` from the infinite line through `a`
/// toward `b` (the VBF pipe test), metres.
fn line_distance_m(p: Position, a: Position, b: Position) -> f64 {
    let (abx, aby, abz) = (b.x - a.x, b.y - a.y, b.z - a.z);
    let len2 = abx * abx + aby * aby + abz * abz;
    if len2 <= f64::EPSILON {
        return p.distance_to(&a).value();
    }
    let (apx, apy, apz) = (p.x - a.x, p.y - a.y, p.z - a.z);
    let t = (apx * abx + apy * aby + apz * abz) / len2;
    let proj = Position::new(a.x + t * abx, a.y + t * aby, a.z + t * abz);
    p.distance_to(&proj).value()
}

/// Plans routes for every member of one cell under `policy`.
///
/// `hop_prob(from, to)` is the node-to-node single-hop frame-success
/// probability; `pipe_radius_m` sizes the VBF routing pipe; `seed` drives
/// the cluster-head election. Nodes whose direct link already clears
/// [`DIRECT_OK_PROB`] always route direct. Routes are returned in member
/// order, one per member.
pub fn plan_routes(
    policy: RoutePolicy,
    members: &[RouteNode],
    reader: Position,
    pipe_radius_m: f64,
    seed: u64,
    hop_prob: &dyn Fn(&RouteNode, &RouteNode) -> f64,
) -> Vec<RelayRoute> {
    match policy {
        RoutePolicy::Direct => members
            .iter()
            .map(|m| RelayRoute { addr: m.addr, relays: Vec::new(), delivery_prob: m.direct_prob })
            .collect(),
        RoutePolicy::Vbf => {
            members.iter().map(|m| vbf_route(m, members, reader, pipe_radius_m, hop_prob)).collect()
        }
        RoutePolicy::ClusterHead => cluster_routes(members, seed, hop_prob),
    }
}

/// Greedy VBF: hop toward the reader through pipe neighbors until the
/// current node's direct link clears [`DIRECT_OK_PROB`], the hop budget
/// runs out, or no neighbor makes progress.
fn vbf_route(
    source: &RouteNode,
    members: &[RouteNode],
    reader: Position,
    pipe_radius_m: f64,
    hop_prob: &dyn Fn(&RouteNode, &RouteNode) -> f64,
) -> RelayRoute {
    if source.direct_prob >= DIRECT_OK_PROB {
        return RelayRoute {
            addr: source.addr,
            relays: Vec::new(),
            delivery_prob: source.direct_prob,
        };
    }
    let mut relays = Vec::new();
    let mut delivery = 1.0;
    let mut current = *source;
    for _ in 0..MAX_HOPS {
        if current.direct_prob >= DIRECT_OK_PROB {
            break;
        }
        let remaining = current.pos.distance_to(&reader).value();
        let min_progress = remaining * MIN_PROGRESS_FRAC;
        // Best in-pipe neighbor by remaining distance; ties to lowest addr.
        let mut best: Option<(f64, &RouteNode)> = None;
        for cand in members {
            if cand.addr == current.addr || relays.contains(&cand.addr) || cand.addr == source.addr
            {
                continue;
            }
            if line_distance_m(cand.pos, source.pos, reader) > pipe_radius_m {
                continue;
            }
            let cand_remaining = cand.pos.distance_to(&reader).value();
            if cand_remaining > remaining - min_progress {
                continue;
            }
            if hop_prob(&current, cand) < MIN_HOP_PROB {
                continue; // the hop link doesn't close: not a neighbor
            }
            let better = match best {
                None => true,
                Some((d, b)) => cand_remaining < d || (cand_remaining == d && cand.addr < b.addr),
            };
            if better {
                best = Some((cand_remaining, cand));
            }
        }
        let Some((_, next)) = best else { break };
        delivery *= hop_prob(&current, next);
        relays.push(next.addr);
        current = *next;
    }
    RelayRoute { addr: source.addr, relays, delivery_prob: delivery * current.direct_prob }
}

/// Deterministic election score: nodes with the highest
/// `fnv1a64(seed‖addr)` become heads — uniform over members, stable for a
/// given seed, and reproducible across runs and machines.
fn election_score(seed: u64, addr: Addr) -> u64 {
    let mut bytes = seed.to_le_bytes().to_vec();
    bytes.extend_from_slice(&addr.to_le_bytes());
    fnv1a64(&bytes)
}

/// Cluster-head routing: elect ⌈[`CLUSTER_HEAD_FRAC`]·members⌉ heads by
/// deterministic score, attach every weak member to its nearest head.
fn cluster_routes(
    members: &[RouteNode],
    seed: u64,
    hop_prob: &dyn Fn(&RouteNode, &RouteNode) -> f64,
) -> Vec<RelayRoute> {
    let n_heads = ((members.len() as f64 * CLUSTER_HEAD_FRAC).ceil() as usize).max(1);
    let mut ranked: Vec<&RouteNode> = members.iter().collect();
    ranked.sort_by_key(|m| (std::cmp::Reverse(election_score(seed, m.addr)), m.addr));
    let heads: Vec<&RouteNode> = ranked.into_iter().take(n_heads).collect();
    members
        .iter()
        .map(|m| {
            if m.direct_prob >= DIRECT_OK_PROB || heads.iter().any(|h| h.addr == m.addr) {
                return RelayRoute {
                    addr: m.addr,
                    relays: Vec::new(),
                    delivery_prob: m.direct_prob,
                };
            }
            // Nearest head by distance, ties to lowest address.
            let head = heads
                .iter()
                .min_by(|a, b| {
                    m.pos
                        .distance_to(&a.pos)
                        .value()
                        .total_cmp(&m.pos.distance_to(&b.pos).value())
                        .then(a.addr.cmp(&b.addr))
                })
                .expect("at least one head");
            let via = hop_prob(m, head) * head.direct_prob;
            if via > m.direct_prob {
                RelayRoute { addr: m.addr, relays: vec![head.addr], delivery_prob: via }
            } else {
                RelayRoute { addr: m.addr, relays: Vec::new(), delivery_prob: m.direct_prob }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(addr: Addr, x: f64, p: f64) -> RouteNode {
        RouteNode { addr, pos: Position::new(x, 0.0, 5.0), direct_prob: p }
    }

    fn dist_hop(a: &RouteNode, b: &RouteNode) -> f64 {
        // A toy hop model: perfect under 150 m, dead past it.
        if a.pos.distance_to(&b.pos).value() < 150.0 {
            0.99
        } else {
            0.01
        }
    }

    #[test]
    fn direct_policy_never_relays() {
        let members = [node(0, 50.0, 0.95), node(1, 400.0, 0.02)];
        let routes = plan_routes(
            RoutePolicy::Direct,
            &members,
            Position::new(0.0, 0.0, 5.0),
            50.0,
            7,
            &dist_hop,
        );
        assert!(routes.iter().all(|r| r.relays.is_empty()));
        assert_eq!(routes[1].delivery_prob, 0.02);
    }

    #[test]
    fn vbf_routes_a_rim_node_through_the_pipe() {
        // Rim node at 400 m, relays at 280 m and 140 m on the line to the
        // reader: the pipe should chain 400 → 280 → 140 → reader.
        let reader = Position::new(0.0, 0.0, 5.0);
        let members = [
            node(0, 140.0, 0.97), // strong: terminal relay
            node(1, 280.0, 0.30),
            node(2, 400.0, 0.02), // rim source
        ];
        let routes = plan_routes(RoutePolicy::Vbf, &members, reader, 60.0, 7, &dist_hop);
        let rim = &routes[2];
        assert_eq!(rim.relays, vec![1, 0], "rim node must chain through both relays");
        assert!(rim.delivery_prob > 0.9, "delivery {}", rim.delivery_prob);
        assert_eq!(rim.hops(), 3);
        // The strong node stays direct.
        assert!(routes[0].relays.is_empty());
    }

    #[test]
    fn vbf_ignores_out_of_pipe_neighbors() {
        let reader = Position::new(0.0, 0.0, 5.0);
        let mut off_axis = node(1, 200.0, 0.95);
        off_axis.pos = Position::new(200.0, 300.0, 5.0); // 300 m off the pipe axis
        let members = [off_axis, node(2, 400.0, 0.02)];
        let routes = plan_routes(RoutePolicy::Vbf, &members, reader, 60.0, 7, &dist_hop);
        assert!(routes[1].relays.is_empty(), "no in-pipe relay exists");
        assert_eq!(routes[1].delivery_prob, 0.02);
    }

    #[test]
    fn cluster_election_is_deterministic_and_helps_weak_members() {
        let members: Vec<RouteNode> = (0..30)
            .map(|i| node(i, 20.0 + 10.0 * i as f64, if i < 15 { 0.95 } else { 0.05 }))
            .collect();
        let reader = Position::new(0.0, 0.0, 5.0);
        let a = plan_routes(RoutePolicy::ClusterHead, &members, reader, 50.0, 11, &dist_hop);
        let b = plan_routes(RoutePolicy::ClusterHead, &members, reader, 50.0, 11, &dist_hop);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.relays, rb.relays, "election must be deterministic");
        }
        // A relayed route is only taken when it beats going direct.
        for r in &a {
            let m = members.iter().find(|m| m.addr == r.addr).unwrap();
            assert!(r.delivery_prob >= m.direct_prob - 1e-12);
        }
        // Different seed ⇒ (almost surely) different head set.
        let c = plan_routes(RoutePolicy::ClusterHead, &members, reader, 50.0, 12, &dist_hop);
        assert!(
            a.iter().zip(&c).any(|(ra, rc)| ra.relays != rc.relays),
            "a reseeded election should move at least one route"
        );
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [RoutePolicy::Direct, RoutePolicy::Vbf, RoutePolicy::ClusterHead] {
            assert_eq!(RoutePolicy::parse(p.as_str()).unwrap(), p);
        }
        assert!(RoutePolicy::parse("flooding").is_err());
    }
}
