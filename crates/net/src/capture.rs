//! Physical-layer capture: what the hydrophone actually hears when
//! several backscatter replies land in one slot.
//!
//! Replies are incoherent at the hydrophone (independent multipath,
//! centimetre-scale platform sway at an 18.5 kHz carrier), so colliding
//! powers superpose linearly. A reply is *captured* when its SINR —
//! signal over noise **plus** every other respondent's power — clears a
//! threshold; only then does the reader even attempt a decode. This
//! replaces the abstract "two respondents = collision" bit with the
//! capture effect real readers exhibit: a strong near node can punch
//! through a weak far one.

/// Default capture threshold, dB. At ≥ 6 dB SINR the strongest reply is
/// at least four times everything else combined, so at most one reply
/// can be above threshold in any slot — capture is naturally exclusive.
pub const DEFAULT_CAPTURE_THRESHOLD_DB: f64 = 6.0;

/// SINR of a reply with linear received power `signal_lin` against
/// `interference_lin` (sum of the other respondents' powers) and
/// `noise_lin`, in dB.
pub fn sinr_db(signal_lin: f64, interference_lin: f64, noise_lin: f64) -> f64 {
    10.0 * (signal_lin / (noise_lin + interference_lin)).log10()
}

/// The SINR-threshold capture rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureModel {
    /// Minimum SINR for a reply to capture the hydrophone, dB.
    pub threshold_db: f64,
}

impl Default for CaptureModel {
    fn default() -> Self {
        Self { threshold_db: DEFAULT_CAPTURE_THRESHOLD_DB }
    }
}

impl CaptureModel {
    /// Picks the capture candidate among `respondents` (pairs of address
    /// and linear received power) against `noise_lin`.
    ///
    /// Returns the strongest respondent and its *linear* SINR when that
    /// SINR clears the threshold, `None` otherwise (including the empty
    /// slot). With a threshold ≥ ~5 dB at most one respondent can clear
    /// it, so "the strongest" is the only possible winner.
    pub fn capture_candidate(
        &self,
        respondents: &[(vab_mac::Addr, f64)],
        noise_lin: f64,
    ) -> Option<(vab_mac::Addr, f64)> {
        let total: f64 = respondents.iter().map(|&(_, p)| p).sum();
        let (addr, p) = respondents.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))?;
        let sinr_lin = p / (noise_lin + (total - p));
        if 10.0 * sinr_lin.log10() >= self.threshold_db {
            Some((addr, sinr_lin))
        } else {
            None
        }
    }
}

/// Jain's fairness index of a non-negative allocation:
/// `(Σx)² / (n·Σx²)`, which is 1 for a perfectly even allocation and
/// `1/n` when one participant takes everything.
///
/// Degenerate inputs (empty, or all-zero — nobody got anything, which is
/// evenly "fair") return 1.0, so the index always lies in `(0, 1]`.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq_sum: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sq_sum <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_has_no_candidate() {
        assert!(CaptureModel::default().capture_candidate(&[], 1.0).is_none());
    }

    #[test]
    fn lone_strong_reply_captures() {
        let m = CaptureModel::default();
        let (addr, sinr) = m.capture_candidate(&[(7, 100.0)], 1.0).expect("captures");
        assert_eq!(addr, 7);
        assert!((10.0 * sinr.log10() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn near_far_capture_and_symmetric_collision() {
        let m = CaptureModel::default();
        // 20 dB near-far gap: the near node captures through the far one.
        let (addr, _) = m.capture_candidate(&[(1, 100.0), (2, 1.0)], 0.1).expect("capture");
        assert_eq!(addr, 1);
        // Equal powers: SINR ≈ 0 dB each, below threshold — true collision.
        assert!(m.capture_candidate(&[(1, 50.0), (2, 50.0)], 0.1).is_none());
    }

    #[test]
    fn capture_is_monotone_in_power() {
        // More signal power never lowers SINR against fixed company.
        let noise = 0.5;
        let mut last = f64::NEG_INFINITY;
        for p in [1.0, 2.0, 4.0, 8.0, 64.0] {
            let s = sinr_db(p, 3.0, noise);
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    fn jain_bounds_and_known_values() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One of four takes everything → 1/4.
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }
}
