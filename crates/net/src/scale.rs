//! Ocean-scale deployments: multi-reader cells, grid-accelerated
//! interference, and multi-hop routing for 10k–100k node networks.
//!
//! The paper-scale tier ([`crate::network`]) evaluates one reader and a
//! few hundred nodes with full image-method channels and per-slot Monte
//! Carlo — faithful, but O(N²) in interference and far too slow past a
//! few thousand nodes. This tier trades channel fidelity for scale while
//! keeping every number seed-pure and content-addressed:
//!
//! * **Cells** — `⌈N¼⌉²` readers on a uniform grid partition the nodes by
//!   nearest reader; cells inventory concurrently (spatial reuse).
//! * **Closed-form channels** — each node's backscatter reply level comes
//!   from the same sonar equation as [`vab_sim::linkbudget::LinkBudget`]
//!   (source level − illumination loss + modulated gain + log-normal
//!   fading), evaluated broadside; no per-node image-method realization.
//! * **Grid-accelerated interference** — cross-cell interference uses the
//!   [`crate::grid`] spatial index and absorption-derived horizon:
//!   out-of-horizon sources are culled, in-horizon sums are bit-identical
//!   to the pairwise reference (the exactness contract).
//! * **FDM reuse plan** — readers draw one of [`REUSE_GRID`]² carrier
//!   channels from a square reuse pattern (classic cellular planning).
//!   A backscatter reply is centered on its own reader's carrier, so a
//!   foreign cell on a different channel lands out of band and the
//!   victim's receive filter rejects it (the same front end already
//!   buries an in-band 180 dB projector by 80 dB — cross-channel
//!   rejection is the easier filter). Nodes need no channel assignment:
//!   a Van Atta array reflects whatever carrier hits it. Only
//!   *co-channel* cells, at least [`REUSE_GRID`] reader spacings away,
//!   interfere.
//! * **Duty-cycle interference floors** — a co-channel cell's members hit
//!   a reader as an expected-value floor weighted by their transmit duty
//!   (1/window during contention, 1/round during TDMA) rather than a
//!   per-slot coin flip; this is what makes a global round O(R²) instead
//!   of O(N²).
//! * **Multi-hop relays** — rim nodes whose direct link cannot close are
//!   reached through [`crate::route`] policies (VBF or cluster heads) and
//!   billed the extra TDMA airtime their relays consume.
//!
//! The derivation of every constant here — densities, the horizon margin,
//! the reader-count law and the resulting Θ(√N) aggregate-capacity
//! scaling — is documented in `SCALING.md` at the repo root.

use rand::RngExt;
use vab_acoustics::environment::Environment;
use vab_acoustics::geometry::Position;
use vab_link::frame::LinkConfig;
use vab_mac::aloha::AlohaReader;
use vab_mac::Addr;
use vab_sim::baseline::SystemKind;
use vab_sim::scenario::Scenario;
use vab_util::db::{db_to_lin_pow, power_db_sum};
use vab_util::hash::fnv1a64;
use vab_util::json::Json;
use vab_util::rng::{derive_seed, seeded};
use vab_util::units::{Degrees, Hertz, Meters};

use crate::capture::{jain_fairness, CaptureModel};
use crate::channel::frame_success;
use crate::grid::{interference_horizon_m, SpatialGrid, HORIZON_MARGIN_DB};
use crate::network::{PAYLOAD_BITS, PAYLOAD_BYTES};
use crate::route::{plan_routes, RelayRoute, RouteNode, RoutePolicy};
use crate::topology::{NetEnv, DEPTH_MARGIN_M};

/// Schema/version tag folded into every scale-spec digest. Bump when the
/// placement, channel model or report layout changes.
pub const SCALE_VERSION: &str = "vab-net-scale/1";

/// Schema tag of [`ScaleReport::to_json`] payloads.
pub const SCALE_REPORT_SCHEMA: &str = "vab-net-scale-report/1";

/// Areal node density of the canonical ocean deployment, nodes/km² —
/// one node per ~15.6 m grid pitch, dense enough that relay hops between
/// neighbors close with margin (see `SCALING.md` for the link-budget
/// derivation).
pub const NODES_PER_KM2: f64 = 4096.0;

/// Log-normal fading applied to each node's reply level, σ in dB
/// (stands in for the paper tier's image-method multipath realization).
pub const FADING_SIGMA_DB: f64 = 3.0;

/// Global contention rounds after which inventory gives up; rim nodes
/// whose direct SINR can never clear capture stay for the relay pass.
pub const MAX_SCALE_ROUNDS: u32 = 100;

/// Per-cell ALOHA window ceiling — ocean cells hold thousands of
/// contenders, far past the paper tier's 256-slot ceiling.
pub const MAX_CELL_WINDOW: usize = 4096;

/// Minimum end-to-end relay delivery probability for an undiscovered rim
/// node to count as reachable through its planned route.
pub const RELAY_DISCOVERY_MIN: f64 = 0.05;

/// VBF pipe radius as a multiple of the mean node pitch.
pub const PIPE_RADIUS_PITCH_MULT: f64 = 2.0;

/// Side of the square FDM reuse pattern: readers at grid position
/// `(i, j)` use channel `(i mod G, j mod G)`, so co-channel cells are at
/// least `G` reader spacings apart and everything closer is rejected by
/// the victim's channel filter. Backscatter makes the plan reader-side
/// only: a Van Atta node passively reflects whatever carrier illuminates
/// it, so nodes need no channel assignment at all. 8 × 8 = 64 channels
/// puts co-channel cells ≥ 1 km apart at every deployment scale, where
/// seawater absorption starts doing the rest.
pub const REUSE_GRID: usize = 8;

const STREAM_SCALE_PLACE: u64 = 0x5CA7;
const STREAM_SCALE_FADING: u64 = 0x5FAD;
const STREAM_SCALE_CONTENTION: u64 = 0x5C0A;
const STREAM_SCALE_DECODE: u64 = 0x5DEC;
const STREAM_SCALE_ROUTE: u64 = 0x5707;

/// Everything needed to reproduce an ocean-scale deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSpec {
    /// Number of backscatter nodes (≥ 1).
    pub n_nodes: usize,
    /// Number of readers, laid out row-major on a `⌈√R⌉ × ⌈√R⌉` grid.
    pub n_readers: usize,
    /// Deployment extent along x, metres.
    pub x_m: f64,
    /// Deployment extent along y, metres.
    pub y_m: f64,
    /// Water environment.
    pub env: NetEnv,
    /// Van Atta pairs per node.
    pub n_pairs: usize,
    /// Routing policy for rim nodes.
    pub policy: RoutePolicy,
    /// Master seed; placement, fading, contention and elections all
    /// derive per-purpose streams from it.
    pub seed: u64,
}

impl ScaleSpec {
    /// The canonical ocean deployment law: constant areal density
    /// ([`NODES_PER_KM2`]) so the footprint side grows as √N, and
    /// `⌈N¼⌉²` readers so the reader count grows as √N — the sink-density
    /// scaling that realizes the Θ(√n) aggregate-capacity order of
    /// arXiv 1103.0266. Sea state 1, 4-pair nodes, VBF routing.
    pub fn ocean(n_nodes: usize, seed: u64) -> Self {
        assert!(n_nodes >= 1, "n_nodes must be at least 1");
        let side_m = (n_nodes as f64 / NODES_PER_KM2).sqrt() * 1000.0;
        let g = (n_nodes as f64).sqrt().sqrt().ceil() as usize;
        Self {
            n_nodes,
            n_readers: g * g,
            x_m: side_m,
            y_m: side_m,
            env: NetEnv::Ocean { sea_state: 1 },
            n_pairs: 4,
            policy: RoutePolicy::Vbf,
            seed,
        }
    }

    /// Canonical byte form: compact JSON with fixed key order, seeds as
    /// decimal strings (the same convention as `vab-svc` job specs).
    pub fn canonical(&self) -> String {
        Json::obj([
            ("kind", Json::Str("net_scale".into())),
            ("n_nodes", Json::Num(self.n_nodes as f64)),
            ("n_readers", Json::Num(self.n_readers as f64)),
            ("x_m", Json::Num(self.x_m)),
            ("y_m", Json::Num(self.y_m)),
            ("env", self.env.to_json()),
            ("n_pairs", Json::Num(self.n_pairs as f64)),
            ("policy", Json::Str(self.policy.as_str().into())),
            ("seed", Json::Str(self.seed.to_string())),
        ])
        .render()
    }

    /// Content address of this deployment under [`SCALE_VERSION`].
    pub fn digest(&self) -> u64 {
        let mut bytes = self.canonical().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(SCALE_VERSION.as_bytes());
        fnv1a64(&bytes)
    }

    /// Mean horizontal node pitch, metres (1/√density).
    pub fn node_pitch_m(&self) -> f64 {
        (self.x_m * self.y_m / self.n_nodes as f64).sqrt()
    }
}

/// Shared PHY constants of one scale deployment, derived once from the
/// same reader/modem parameters the single-link tier uses.
#[derive(Debug, Clone)]
pub struct ScalePhy {
    /// Acoustic environment.
    pub env: Environment,
    /// Carrier frequency.
    pub carrier: Hertz,
    /// Projector source level, dB re 1 µPa @ 1 m.
    pub source_level_db: f64,
    /// Broadside modulated gain of the node array, dB.
    pub modulated_gain_db: f64,
    /// Channel bits per frame.
    pub frame_bits: usize,
    /// FEC rate of the link stack.
    pub fec_rate: f64,
    /// Uplink bit rate, bits/s.
    pub bit_rate: f64,
    /// Reader noise power in the bit bandwidth (ambient + residual
    /// self-interference), dB.
    pub noise_reader_db: f64,
    /// Node-to-node hop noise power in the bit bandwidth (ambient only —
    /// a relay hop sees no reader self-interference), dB.
    pub noise_hop_db: f64,
    /// Sound speed, m/s.
    pub sound_speed: f64,
}

impl ScalePhy {
    /// Derives the constants for `spec`.
    pub fn derive(spec: &ScaleSpec) -> Self {
        let mut s = Scenario::river(SystemKind::Vab { n_pairs: spec.n_pairs }, Meters(1.0));
        s.env = spec.env.environment();
        let fe = s.front_end();
        let link = LinkConfig::vab_default();
        let carrier = s.carrier();
        let bit_rate = s.mod_params.bit_rate;
        let ambient = s.env.noise_psd(carrier).value();
        let si = s.reader.si_floor_psd().value();
        let bits_db = 10.0 * bit_rate.log10();
        Self {
            carrier,
            source_level_db: s.reader.source_level_db,
            modulated_gain_db: fe.modulated_gain_db(Degrees(0.0)),
            frame_bits: link.encoded_len(PAYLOAD_BYTES),
            fec_rate: link.fec.rate(),
            bit_rate,
            noise_reader_db: power_db_sum([ambient, si]) + bits_db,
            noise_hop_db: ambient + bits_db,
            sound_speed: s.env.sound_speed(),
            env: s.env,
        }
    }

    /// One-way transmission loss over `d` metres (1 m reference clamp).
    pub fn tl_db(&self, d: f64) -> f64 {
        self.env.transmission_loss(self.carrier, Meters(d.max(1.0))).value()
    }
}

/// One node as the scale tier sees it.
#[derive(Debug, Clone, Copy)]
pub struct ScaleNode {
    /// MAC address (dense from 0 — the index into every per-node array).
    pub addr: Addr,
    /// Position (z positive down).
    pub pos: Position,
    /// Index of the node's cell (nearest reader).
    pub cell: u32,
    /// Distance to the node's own reader, metres.
    pub d_reader_m: f64,
    /// Effective backscatter reply level at 1 m, dB re 1 µPa
    /// (illumination − loss + gain + fading).
    pub reply_db_at_1m: f64,
    /// Linear received power at the node's own reader.
    pub rx_reader_lin: f64,
    /// Frame-success probability of the direct link on a clean slot.
    pub direct_success: f64,
}

/// A fully derived ocean-scale deployment, ready to run inventory and
/// steady state over.
#[derive(Debug, Clone)]
pub struct ScaleNetwork {
    /// The spec this network derives from.
    pub spec: ScaleSpec,
    /// Shared PHY constants.
    pub phy: ScalePhy,
    /// Reader positions, row-major on the reader grid.
    pub readers: Vec<Position>,
    /// Per-node state, indexed by address.
    pub nodes: Vec<ScaleNode>,
    /// Per-cell member addresses, ascending.
    pub cell_members: Vec<Vec<Addr>>,
    /// Planned uplink route per node, indexed by address.
    pub routes: Vec<RelayRoute>,
    /// Interference horizon used to cull cross-cell interferers, metres.
    pub horizon_m: f64,
    /// Per-node cross-cell interference sinks: for every foreign reader
    /// within [`ScaleNetwork::horizon_m`] of the node, `(reader index,
    /// linear received power at that reader)`.
    pub sinks: Vec<Vec<(u32, f64)>>,
    /// Reader noise power, linear.
    pub noise_lin: f64,
    capture: CaptureModel,
}

impl ScaleNetwork {
    /// Derives the full deployment: placement, cells, channels, the
    /// interference grid and routes.
    pub fn build(spec: &ScaleSpec) -> Self {
        let _t = vab_obs::time_stage("net.scale_build");
        assert!(spec.n_nodes >= 1 && spec.n_readers >= 1, "need nodes and readers");
        assert!(spec.x_m > 0.0 && spec.y_m > 0.0, "deployment extent must be positive");
        let phy = ScalePhy::derive(spec);

        // Readers: row-major grid at the canonical reader depth.
        let g = (spec.n_readers as f64).sqrt().ceil() as usize;
        let reader_z = spec.env.reader_pos().z;
        let readers: Vec<Position> = (0..spec.n_readers)
            .map(|r| {
                let (i, j) = (r % g, r / g);
                Position::new(
                    (i as f64 + 0.5) * spec.x_m / g as f64,
                    (j as f64 + 0.5) * spec.y_m / g as f64,
                    reader_z,
                )
            })
            .collect();

        // Placement: uniform over the box and the usable depth band,
        // one seed-pure stream, draws in address order.
        let depth = phy.env.depth.value();
        let (z_lo, z_hi) = (DEPTH_MARGIN_M, depth - DEPTH_MARGIN_M);
        assert!(z_hi > z_lo, "water column too shallow for the depth margin");
        let mut rng = seeded(derive_seed(spec.seed, STREAM_SCALE_PLACE));
        let positions: Vec<Position> = (0..spec.n_nodes)
            .map(|_| {
                let x = rng.random::<f64>() * spec.x_m;
                let y = rng.random::<f64>() * spec.y_m;
                let z = z_lo + rng.random::<f64>() * (z_hi - z_lo);
                Position::new(x, y, z)
            })
            .collect();

        // Cells: nearest reader (linear scan — O(N·R) once, dwarfed by
        // the interference precompute).
        let mut cell_members: Vec<Vec<Addr>> = vec![Vec::new(); spec.n_readers];
        let cells: Vec<u32> = positions
            .iter()
            .map(|p| {
                let mut best = (0u32, f64::INFINITY);
                for (c, r) in readers.iter().enumerate() {
                    let d = p.distance_to(r).value();
                    if d < best.1 {
                        best = (c as u32, d);
                    }
                }
                best.0
            })
            .collect();

        // Channels: closed-form sonar equation + log-normal fading,
        // per-address fading streams (order- and thread-independent).
        let stage = vab_obs::time_stage("net.scale_channels");
        let fading_master = derive_seed(spec.seed, STREAM_SCALE_FADING);
        let noise_lin = db_to_lin_pow(phy.noise_reader_db);
        let mut nodes = Vec::with_capacity(spec.n_nodes);
        for (i, &pos) in positions.iter().enumerate() {
            let addr = i as Addr;
            let cell = cells[i];
            let d = pos.distance_to(&readers[cell as usize]).value();
            let mut frng = seeded(derive_seed(fading_master, addr as u64));
            let fading_db = FADING_SIGMA_DB * gaussian(&mut frng);
            let reply_db_at_1m =
                phy.source_level_db - phy.tl_db(d) + phy.modulated_gain_db + fading_db;
            let rx_db = reply_db_at_1m - phy.tl_db(d);
            let rx_reader_lin = db_to_lin_pow(rx_db);
            let direct_success =
                frame_success(rx_reader_lin / noise_lin, phy.frame_bits, phy.fec_rate);
            cell_members[cell as usize].push(addr);
            nodes.push(ScaleNode {
                addr,
                pos,
                cell,
                d_reader_m: d,
                reply_db_at_1m,
                rx_reader_lin,
                direct_success,
            });
        }
        drop(stage);

        // Interference: horizon from the loudest reply, grid over the
        // node cloud, then per-node sink lists (which co-channel foreign
        // readers hear this node, and how loudly). Different-channel
        // cells are out of band at the victim's filter and never enter
        // the floor.
        let stage = vab_obs::time_stage("net.scale_interference");
        let color = |r: usize| -> usize {
            let (i, j) = (r % g, r / g);
            (i % REUSE_GRID) + REUSE_GRID * (j % REUSE_GRID)
        };
        let loudest = nodes.iter().map(|n| n.reply_db_at_1m).fold(f64::NEG_INFINITY, f64::max);
        let floor_db = phy.noise_reader_db - HORIZON_MARGIN_DB;
        let horizon_m = interference_horizon_m(&phy.env, phy.carrier, loudest, floor_db);
        let cell_m = (horizon_m / 2.0).clamp(5.0, 2_000.0);
        let grid = SpatialGrid::build(&positions, cell_m);
        let mut sinks: Vec<Vec<(u32, f64)>> = vec![Vec::new(); spec.n_nodes];
        let mut scratch = Vec::new();
        for (c, reader) in readers.iter().enumerate() {
            grid.indices_within(*reader, horizon_m, &mut scratch);
            for &i in &scratch {
                let n = &nodes[i as usize];
                if n.cell as usize == c {
                    continue; // own-cell members interfere via capture, not the floor
                }
                if color(n.cell as usize) != color(c) {
                    continue; // different FDM channel: filtered out of band
                }
                let rx =
                    db_to_lin_pow(n.reply_db_at_1m - phy.tl_db(n.pos.distance_to(reader).value()));
                sinks[i as usize].push((c as u32, rx));
            }
        }
        drop(stage);

        // Routes: per cell, planned over the closed-form hop model.
        let stage = vab_obs::time_stage("net.scale_routing");
        let pipe_radius_m = PIPE_RADIUS_PITCH_MULT * spec.node_pitch_m();
        let route_seed = derive_seed(spec.seed, STREAM_SCALE_ROUTE);
        let noise_hop_db = phy.noise_hop_db;
        let mut routes: Vec<Option<RelayRoute>> = vec![None; spec.n_nodes];
        for (c, members) in cell_members.iter().enumerate() {
            let rns: Vec<RouteNode> = members
                .iter()
                .map(|&a| {
                    let n = &nodes[a as usize];
                    RouteNode { addr: a, pos: n.pos, direct_prob: n.direct_success }
                })
                .collect();
            let hop_prob = |from: &RouteNode, to: &RouteNode| -> f64 {
                let n = &nodes[from.addr as usize];
                let d = from.pos.distance_to(&to.pos).value();
                let snr_db = n.reply_db_at_1m - phy.tl_db(d) - noise_hop_db;
                frame_success(db_to_lin_pow(snr_db), phy.frame_bits, phy.fec_rate)
            };
            let planned = plan_routes(
                spec.policy,
                &rns,
                readers[c],
                pipe_radius_m,
                derive_seed(route_seed, c as u64),
                &hop_prob,
            );
            for route in planned {
                let a = route.addr as usize;
                routes[a] = Some(route);
            }
        }
        let routes: Vec<RelayRoute> =
            routes.into_iter().map(|r| r.expect("every node is in exactly one cell")).collect();
        drop(stage);

        Self {
            spec: spec.clone(),
            phy,
            readers,
            nodes,
            cell_members,
            routes,
            horizon_m,
            sinks,
            noise_lin,
            capture: CaptureModel::default(),
        }
    }

    /// Runs the discovery phase: every cell contends concurrently in
    /// synchronized global rounds, with per-cell framed ALOHA, capture on
    /// top of the cross-cell duty-weighted interference floor, and a
    /// relay pass for rim nodes the direct link cannot reach.
    pub fn run_inventory(&self) -> ScaleInventoryReport {
        let _t = vab_obs::time_stage("net.scale_inventory");
        let r = self.spec.n_readers;
        let contention_master = derive_seed(self.spec.seed, STREAM_SCALE_CONTENTION);
        let decode_master = derive_seed(self.spec.seed, STREAM_SCALE_DECODE);
        struct Cell {
            reader: AlohaReader,
            pending: Vec<Addr>,
            contention: rand::rngs::StdRng,
            decode: rand::rngs::StdRng,
        }
        let mut cells: Vec<Cell> = (0..r)
            .map(|c| {
                let members = &self.cell_members[c];
                let w = members.len().next_power_of_two().clamp(4, MAX_CELL_WINDOW);
                Cell {
                    reader: AlohaReader::with_max_window(w, MAX_CELL_WINDOW),
                    pending: members.clone(),
                    contention: seeded(derive_seed(contention_master, c as u64)),
                    decode: seeded(derive_seed(decode_master, c as u64)),
                }
            })
            .collect();
        // Pending cross-cell interference energy, bucketed by (victim
        // reader, source cell): floors are then O(R²) per round and
        // updates O(1) per discovery, instead of rescanning every node.
        let mut s_matrix = vec![0.0f64; r * r];
        for n in &self.nodes {
            for &(victim, rx) in &self.sinks[n.addr as usize] {
                s_matrix[victim as usize * r + n.cell as usize] += rx;
            }
        }
        let mut rounds = 0u32;
        while rounds < MAX_SCALE_ROUNDS && cells.iter().any(|c| !c.pending.is_empty()) {
            // Duty factor of each cell this round, snapshotted up front —
            // a member of cell c transmits in 1 of its w_c slots.
            let duties: Vec<f64> = cells
                .iter()
                .map(|c| if c.pending.is_empty() { 0.0 } else { 1.0 / c.reader.window() as f64 })
                .collect();
            for c in 0..r {
                if cells[c].pending.is_empty() {
                    continue;
                }
                let mut floor = 0.0;
                for (src, &duty) in duties.iter().enumerate() {
                    if src != c {
                        floor += duty * s_matrix[c * r + src];
                    }
                }
                let noise = self.noise_lin + floor;
                let before = cells[c].reader.identified.len();
                let Cell { reader, pending, contention, decode } = &mut cells[c];
                reader.run_round_with(pending, contention, |resp| {
                    resolve_scale_slot(self, resp, noise, decode)
                });
                // Newly discovered nodes stop contending: retire their
                // energy from every victim reader's pending bucket.
                let ids: Vec<Addr> = cells[c].reader.identified[before..].to_vec();
                for a in ids {
                    for &(victim, rx) in &self.sinks[a as usize] {
                        s_matrix[victim as usize * r + c] -= rx;
                    }
                }
            }
            rounds += 1;
        }
        let mut discovered: Vec<bool> = vec![false; self.spec.n_nodes];
        let mut slots_used = 0u64;
        let mut collisions = 0u64;
        for cell in &cells {
            slots_used += cell.reader.slots_used;
            collisions += cell.reader.collisions;
            for &a in &cell.reader.identified {
                discovered[a as usize] = true;
            }
        }
        // Relay pass: an undiscovered rim node is reachable if its
        // planned route ends at a discovered relay and the end-to-end
        // delivery probability is non-negligible.
        let mut relayed: Vec<bool> = vec![false; self.spec.n_nodes];
        let mut relay_slots = 0u64;
        for n in &self.nodes {
            let a = n.addr as usize;
            if discovered[a] {
                continue;
            }
            let route = &self.routes[a];
            if let Some(&last) = route.relays.last() {
                if discovered[last as usize] && route.delivery_prob >= RELAY_DISCOVERY_MIN {
                    relayed[a] = true;
                    relay_slots += route.hops() as u64;
                }
            }
        }
        ScaleInventoryReport {
            n_nodes: self.spec.n_nodes,
            discovered,
            relayed,
            rounds,
            slots_used,
            collisions,
            relay_slots,
        }
    }

    /// Whether a served node uplinks through its planned route rather
    /// than its direct link: always for relay-discovered nodes, and for
    /// directly-discovered nodes whenever the route's clean delivery
    /// beats the direct link's (a rim node ALOHA barely reached should
    /// not be monitored over that same barely-closing link).
    fn uses_route(&self, a: usize, inv: &ScaleInventoryReport) -> bool {
        if inv.relayed[a] {
            return true;
        }
        let route = &self.routes[a];
        match route.relays.last() {
            Some(&last) => {
                inv.discovered[last as usize] && route.delivery_prob > self.nodes[a].direct_success
            }
            None => false,
        }
    }

    /// Runs the monitoring phase: per-cell TDMA over the served nodes
    /// (routed nodes billed one slot per hop), cross-cell interference
    /// as a 1/round duty floor, and expected-value goodput per node.
    pub fn run_steady_state(&self, inv: &ScaleInventoryReport) -> ScaleSteadyReport {
        let _t = vab_obs::time_stage("net.scale_steady");
        let r = self.spec.n_readers;
        // Slots each cell's round needs: one per direct node, hops() per
        // routed node.
        let mut n_slots = vec![0u64; r];
        let mut cell_range = vec![0.0f64; r];
        for n in &self.nodes {
            let a = n.addr as usize;
            if !(inv.discovered[a] || inv.relayed[a]) {
                continue;
            }
            let slots = if self.uses_route(a, inv) { self.routes[a].hops() as u64 } else { 1 };
            n_slots[n.cell as usize] += slots;
            cell_range[n.cell as usize] = cell_range[n.cell as usize].max(n.d_reader_m);
        }
        // Steady-state interference floor per reader: every served
        // foreign in-horizon node transmits in 1 of its cell's slots.
        let mut floors = vec![0.0f64; r];
        for n in &self.nodes {
            let a = n.addr as usize;
            if !(inv.discovered[a] || inv.relayed[a]) {
                continue;
            }
            let duty = 1.0 / n_slots[n.cell as usize] as f64;
            for &(victim, rx) in &self.sinks[a] {
                floors[victim as usize] += rx * duty;
            }
        }
        let round_s: Vec<f64> = (0..r)
            .map(|c| {
                let slot = self.phy.frame_bits as f64 / self.phy.bit_rate
                    + 2.0 * cell_range[c] / self.phy.sound_speed;
                n_slots[c] as f64 * slot
            })
            .collect();
        let mut goodputs: Vec<f64> = Vec::new();
        let mut hops_sum = 0u64;
        let mut aggregate = 0.0;
        for n in &self.nodes {
            let a = n.addr as usize;
            let c = n.cell as usize;
            if round_s[c] <= 0.0 {
                continue;
            }
            let floored = |node: &ScaleNode| {
                frame_success(
                    node.rx_reader_lin / (self.noise_lin + floors[c]),
                    self.phy.frame_bits,
                    self.phy.fec_rate,
                )
            };
            if !(inv.discovered[a] || inv.relayed[a]) {
                continue;
            }
            let delivery = if self.uses_route(a, inv) {
                let route = &self.routes[a];
                hops_sum += route.hops() as u64;
                // Re-floor the final (relay → reader) hop: the planner
                // priced it on a clean channel.
                let last = &self.nodes[*route.relays.last().expect("routed") as usize];
                if last.direct_success > 1e-12 {
                    route.delivery_prob / last.direct_success * floored(last)
                } else {
                    0.0
                }
            } else {
                hops_sum += 1;
                floored(n)
            };
            let g = PAYLOAD_BITS as f64 * delivery / round_s[c];
            goodputs.push(g);
            aggregate += g;
        }
        let served = goodputs.len();
        ScaleSteadyReport {
            served,
            aggregate_capacity_bps: aggregate,
            mean_goodput_bps: if served > 0 { aggregate / served as f64 } else { 0.0 },
            jain_fairness: jain_fairness(&goodputs),
            mean_hops: if served > 0 { hops_sum as f64 / served as f64 } else { 0.0 },
        }
    }
}

/// Resolves one contention slot at a scale reader: superpose the
/// respondents at the cell's reader, capture by SINR over noise plus the
/// cross-cell floor, Bernoulli decode at the captured SINR.
fn resolve_scale_slot(
    net: &ScaleNetwork,
    respondents: &[Addr],
    noise_lin: f64,
    decode: &mut rand::rngs::StdRng,
) -> vab_mac::SlotOutcome {
    use vab_mac::SlotOutcome;
    if respondents.is_empty() {
        return SlotOutcome::Idle;
    }
    let powers: Vec<(Addr, f64)> =
        respondents.iter().map(|&a| (a, net.nodes[a as usize].rx_reader_lin)).collect();
    match net.capture.capture_candidate(&powers, noise_lin) {
        Some((addr, sinr_lin)) => {
            let p = frame_success(sinr_lin, net.phy.frame_bits, net.phy.fec_rate);
            if decode.random::<f64>() < p {
                SlotOutcome::Single(addr)
            } else {
                SlotOutcome::Collision
            }
        }
        None => SlotOutcome::Collision,
    }
}

/// Standard normal draw (Box–Muller; two uniform draws per sample).
fn gaussian<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1] — ln stays finite
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Outcome of the scale discovery phase.
#[derive(Debug, Clone)]
pub struct ScaleInventoryReport {
    /// Deployed population size.
    pub n_nodes: usize,
    /// Per-address flag: discovered directly by its cell's ALOHA.
    pub discovered: Vec<bool>,
    /// Per-address flag: unreachable directly, reached through its
    /// planned relay route.
    pub relayed: Vec<bool>,
    /// Synchronized global contention rounds used.
    pub rounds: u32,
    /// Contention slots spent, summed over all cells.
    pub slots_used: u64,
    /// Collision slots, summed over all cells.
    pub collisions: u64,
    /// Extra TDMA slots the relay routes will bill per round.
    pub relay_slots: u64,
}

impl ScaleInventoryReport {
    /// Directly discovered node count.
    pub fn n_direct(&self) -> usize {
        self.discovered.iter().filter(|&&d| d).count()
    }

    /// Relay-reached node count.
    pub fn n_relayed(&self) -> usize {
        self.relayed.iter().filter(|&&d| d).count()
    }

    /// Fraction of the population served (directly or via relays).
    pub fn coverage(&self) -> f64 {
        if self.n_nodes == 0 {
            return 1.0;
        }
        (self.n_direct() + self.n_relayed()) as f64 / self.n_nodes as f64
    }
}

/// Outcome of the scale monitoring phase (aggregates only — per-node
/// vectors at 100k nodes belong in memory, not in reports).
#[derive(Debug, Clone)]
pub struct ScaleSteadyReport {
    /// Nodes served (direct + relayed).
    pub served: usize,
    /// Network-wide goodput, bits/s, summed over concurrent cells.
    pub aggregate_capacity_bps: f64,
    /// Mean per-served-node goodput, bits/s.
    pub mean_goodput_bps: f64,
    /// Jain fairness index over served-node goodputs, in `(0, 1]`.
    pub jain_fairness: f64,
    /// Mean uplink transmissions per served delivery.
    pub mean_hops: f64,
}

/// Both phases of one ocean-scale deployment.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// The deployment spec.
    pub spec: ScaleSpec,
    /// Interference horizon used, metres.
    pub horizon_m: f64,
    /// Discovery outcome.
    pub inventory: ScaleInventoryReport,
    /// Monitoring outcome.
    pub steady: ScaleSteadyReport,
}

impl ScaleReport {
    /// Canonical JSON payload: fixed key order, aggregates only —
    /// byte-identical for equal specs no matter where the deployment ran.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SCALE_REPORT_SCHEMA.into())),
            ("scale_digest", Json::Str(format!("{:016x}", self.spec.digest()))),
            ("n_nodes", Json::Num(self.spec.n_nodes as f64)),
            ("n_readers", Json::Num(self.spec.n_readers as f64)),
            ("policy", Json::Str(self.spec.policy.as_str().into())),
            ("horizon_m", Json::Num(self.horizon_m)),
            (
                "inventory",
                Json::obj([
                    ("discovered_direct", Json::Num(self.inventory.n_direct() as f64)),
                    ("discovered_relayed", Json::Num(self.inventory.n_relayed() as f64)),
                    ("coverage", Json::Num(self.inventory.coverage())),
                    ("rounds", Json::Num(self.inventory.rounds as f64)),
                    ("slots_used", Json::Num(self.inventory.slots_used as f64)),
                    ("collisions", Json::Num(self.inventory.collisions as f64)),
                    ("relay_slots", Json::Num(self.inventory.relay_slots as f64)),
                ]),
            ),
            (
                "steady",
                Json::obj([
                    ("served", Json::Num(self.steady.served as f64)),
                    ("aggregate_capacity_bps", Json::Num(self.steady.aggregate_capacity_bps)),
                    ("mean_goodput_bps", Json::Num(self.steady.mean_goodput_bps)),
                    ("jain_fairness", Json::Num(self.steady.jain_fairness)),
                    ("mean_hops", Json::Num(self.steady.mean_hops)),
                ]),
            ),
        ])
    }
}

/// Builds the network for `spec` and runs both phases — the one-call
/// entry point the service layer and FN3 use.
pub fn run_scale_deployment(spec: &ScaleSpec) -> ScaleReport {
    let _t = vab_obs::time_stage("net.scale_deployment");
    let net = ScaleNetwork::build(spec);
    let inventory = net.run_inventory();
    let steady = net.run_steady_state(&inventory);
    vab_obs::event!(
        "net.scale",
        "scale_deployment_done",
        n_nodes = spec.n_nodes,
        n_readers = spec.n_readers,
        coverage = inventory.coverage(),
        aggregate_bps = steady.aggregate_capacity_bps,
    );
    vab_obs::metrics::inc("net.scale_deployments", 1);
    ScaleReport { spec: spec.clone(), horizon_m: net.horizon_m, inventory, steady }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_deployment_is_deterministic() {
        let spec = ScaleSpec::ocean(64, 7);
        let a = run_scale_deployment(&spec);
        let b = run_scale_deployment(&spec);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn cells_partition_the_population_by_nearest_reader() {
        let spec = ScaleSpec::ocean(200, 3);
        let net = ScaleNetwork::build(&spec);
        let total: usize = net.cell_members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 200);
        for n in &net.nodes {
            let own = n.pos.distance_to(&net.readers[n.cell as usize]).value();
            for r in &net.readers {
                assert!(own <= n.pos.distance_to(r).value() + 1e-9);
            }
        }
    }

    #[test]
    fn ocean_deployment_covers_most_nodes_and_reports_sane_numbers() {
        let spec = ScaleSpec::ocean(256, 11);
        let r = run_scale_deployment(&spec);
        assert!(r.inventory.coverage() > 0.6, "coverage {}", r.inventory.coverage());
        assert!(r.steady.aggregate_capacity_bps > 0.0);
        assert!(r.steady.jain_fairness > 0.0 && r.steady.jain_fairness <= 1.0);
        assert!(r.steady.mean_hops >= 1.0);
        assert!(r.horizon_m > spec.node_pitch_m(), "horizon {} m", r.horizon_m);
    }

    #[test]
    fn routing_never_hurts_coverage() {
        let mut direct = ScaleSpec::ocean(256, 5);
        direct.policy = RoutePolicy::Direct;
        let mut vbf = direct.clone();
        vbf.policy = RoutePolicy::Vbf;
        let rd = run_scale_deployment(&direct);
        let rv = run_scale_deployment(&vbf);
        assert!(rv.inventory.coverage() >= rd.inventory.coverage());
    }

    #[test]
    fn digest_separates_specs() {
        let a = ScaleSpec::ocean(1024, 9);
        let mut b = a.clone();
        b.seed = 10;
        let mut c = a.clone();
        c.policy = RoutePolicy::ClusterHead;
        assert_eq!(a.digest(), ScaleSpec::ocean(1024, 9).digest());
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn reader_law_scales_as_sqrt_n() {
        for n in [256usize, 4096, 65_536] {
            let s = ScaleSpec::ocean(n, 1);
            assert_eq!(s.n_readers, (n as f64).sqrt() as usize, "N = {n}");
        }
    }
}
