//! Per-node channels: each placed node gets its own round-trip link
//! budget and multipath realization from `vab-acoustics`/`vab-sim`.
//!
//! A deployment is just many single-link scenarios sharing one
//! environment: node `i`'s budget comes from the exact sonar-equation
//! path the Monte Carlo engine uses ([`vab_sim::linkbudget::LinkBudget`]),
//! and its fading from the same image-method channel realization
//! ([`vab_sim::montecarlo::fading_delta_db`]). What is new here is only
//! the *linear-power* view of each node at the hydrophone, which is what
//! superposition and SINR capture need.

use vab_sim::baseline::SystemKind;
use vab_sim::linkbudget::LinkBudget;
use vab_sim::montecarlo::fading_delta_db;
use vab_sim::scenario::Scenario;
use vab_util::db::db_to_lin_pow;
use vab_util::rng::{derive_seed, seeded};
use vab_util::units::Meters;

use crate::topology::{NetworkSpec, NodeSite, Topology};

/// Per-purpose seed stream for fading realizations (one sub-stream per
/// node address on top of it).
const STREAM_FADING: u64 = 0xFAD0;

/// One node's channel as the reader's hydrophone sees it.
#[derive(Debug, Clone, Copy)]
pub struct NodeChannel {
    /// MAC address.
    pub addr: vab_mac::Addr,
    /// Reader–node separation, metres.
    pub range_m: f64,
    /// Round-trip received level including this topology's multipath
    /// fading realization, dB re 1 µPa.
    pub received_level_db: f64,
    /// Multipath fading applied on top of the direct-path budget, dB.
    pub fading_db: f64,
    /// Eb/N0 including fading (no interference), dB.
    pub ebn0_db: f64,
    /// Received power in linear units (µPa², arbitrary common scale) —
    /// the quantity that superposes when replies collide.
    pub rx_power_lin: f64,
    /// Noise power in the bit bandwidth, same linear scale.
    pub noise_power_lin: f64,
    /// Probability the node's frame decodes on a clean (interference-free)
    /// slot.
    pub packet_success: f64,
}

impl NodeChannel {
    /// Interference-free SNR in the bit bandwidth, linear (equals
    /// Eb/N0 since the noise is integrated over one bit time).
    pub fn snr_lin(&self) -> f64 {
        self.rx_power_lin / self.noise_power_lin
    }
}

/// Builds the `vab-sim` scenario for one placed node: the canonical
/// reader/PHY parameters with this deployment's environment and the
/// node's own position and orientation.
pub fn scenario_for_node(spec: &NetworkSpec, topology: &Topology, site: &NodeSite) -> Scenario {
    let system = SystemKind::Vab { n_pairs: spec.n_pairs };
    let mut s = Scenario::river(system, Meters(1.0));
    s.env = spec.env.environment();
    s.reader_pos = topology.reader;
    s.node_pos = site.pos;
    s.node_rotation = site.rotation;
    s
}

/// Decode probability of a frame of `frame_bits` channel bits at an
/// effective per-bit SNR of `snr_lin` (interference folded in by the
/// caller), with FEC rate `fec_rate`.
///
/// Uses the closed-form noncoherent-orthogonal channel-bit BER and no
/// coding-gain credit — a deliberate lower bound that keeps the capture
/// model conservative.
pub fn frame_success(snr_lin: f64, frame_bits: usize, fec_rate: f64) -> f64 {
    let ber = vab_phy::ber::ber_noncoherent_orthogonal(snr_lin * fec_rate);
    (1.0 - ber).powi(frame_bits as i32)
}

/// Derives every node's channel for `topology`.
///
/// Deterministic: node `addr`'s fading stream is
/// `derive_seed(derive_seed(seed, STREAM_FADING), addr)`, so channels do
/// not depend on derivation order or thread count.
pub fn derive_channels(
    spec: &NetworkSpec,
    topology: &Topology,
    frame_bits: usize,
    fec_rate: f64,
) -> Vec<NodeChannel> {
    let _t = vab_obs::time_stage("net.channel_derivation");
    let fading_master = derive_seed(spec.seed, STREAM_FADING);
    let fe = {
        // The front end only depends on system + carrier, shared by all nodes.
        let any = &topology.nodes[0];
        scenario_for_node(spec, topology, any).front_end()
    };
    topology
        .nodes
        .iter()
        .map(|site| {
            let scenario = scenario_for_node(spec, topology, site);
            let lb = LinkBudget::compute_with_front_end(&scenario, &fe);
            let mut rng = seeded(derive_seed(fading_master, site.addr as u64));
            let fading_db = fading_delta_db(&scenario, &mut rng);
            let received_level_db = lb.received_level_db + fading_db;
            let ebn0_db = lb.ebn0_db + fading_db;
            let noise_power_db = lb.noise_psd_db + 10.0 * lb.bit_rate.log10();
            let ch = NodeChannel {
                addr: site.addr,
                range_m: scenario.range().value(),
                received_level_db,
                fading_db,
                ebn0_db,
                rx_power_lin: db_to_lin_pow(received_level_db),
                noise_power_lin: db_to_lin_pow(noise_power_db),
                packet_success: frame_success(db_to_lin_pow(ebn0_db), frame_bits, fec_rate),
            };
            vab_obs::event!(
                "net.channel",
                "node_channel",
                addr = ch.addr,
                range_m = ch.range_m,
                ebn0_db = ch.ebn0_db,
            );
            ch
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NetworkSpec, Topology};

    #[test]
    fn channels_are_deterministic_and_consistent() {
        let spec = NetworkSpec::river(16, 11);
        let topo = Topology::generate(&spec);
        let a = derive_channels(&spec, &topo, 288, 0.5);
        let b = derive_channels(&spec, &topo, 288, 0.5);
        assert_eq!(a.len(), 16);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.ebn0_db.to_bits(), cb.ebn0_db.to_bits());
            // Linear and dB views agree: SNR ≈ Eb/N0.
            let snr_db = 10.0 * ca.snr_lin().log10();
            assert!((snr_db - ca.ebn0_db).abs() < 1e-9, "{snr_db} vs {}", ca.ebn0_db);
            assert!(ca.packet_success >= 0.0 && ca.packet_success <= 1.0);
        }
    }

    #[test]
    fn frame_success_is_monotone_in_snr() {
        let lo = frame_success(db_to_lin_pow(5.0), 288, 0.5);
        let hi = frame_success(db_to_lin_pow(15.0), 288, 0.5);
        assert!(hi > lo);
        assert!(frame_success(db_to_lin_pow(30.0), 288, 0.5) > 0.999);
    }
}
