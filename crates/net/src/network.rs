//! The deployment runner: inventory (discovery) and steady-state
//! (monitoring) phases of a spatial Van Atta network, driven over the
//! unmodified `vab-mac` policies with physical-layer capture resolving
//! each contention slot.
//!
//! Everything here is single-threaded and seed-pure per deployment —
//! parallelism belongs one layer up (the `vab-svc` worker pool shards
//! *across* topologies), which is what makes cached and fresh results
//! byte-identical at any worker count.

use rand::rngs::StdRng;
use rand::RngExt;
use vab_link::frame::LinkConfig;
use vab_mac::aloha::{AlohaReader, SlotOutcome};
use vab_mac::tdma::TdmaSchedule;
use vab_mac::Addr;
use vab_util::json::Json;
use vab_util::rng::{derive_seed, seeded};

use crate::capture::{jain_fairness, CaptureModel};
use crate::channel::{derive_channels, frame_success, scenario_for_node, NodeChannel};
use crate::topology::{NetworkSpec, Topology};

/// Payload carried per frame, bytes (a sensor report).
pub const PAYLOAD_BYTES: usize = 16;
/// Useful payload bits per frame.
pub const PAYLOAD_BITS: usize = PAYLOAD_BYTES * 8;
/// Contention rounds after which inventory gives up — nodes whose SINR
/// can never clear capture stay undiscovered, so a cap is load-bearing.
pub const MAX_INVENTORY_ROUNDS: u32 = 200;
/// TDMA rounds simulated for the steady-state phase.
pub const STEADY_ROUNDS: u32 = 50;

/// Schema tag of [`DeploymentReport::to_json`] payloads.
pub const REPORT_SCHEMA: &str = "vab-net-report/1";

const STREAM_CONTENTION: u64 = 0xA10A;
const STREAM_DECODE: u64 = 0xDEC0;
const STREAM_STEADY: u64 = 0x57EA;

/// A fully derived deployment: topology, per-node channels and the
/// capture rule, ready to run MAC phases over.
#[derive(Debug, Clone)]
pub struct Network {
    /// The spec this network derives from.
    pub spec: NetworkSpec,
    /// Placed reader and nodes.
    pub topology: Topology,
    /// Per-node channels, indexed by address.
    pub channels: Vec<NodeChannel>,
    /// The capture rule used for colliding slots.
    pub capture: CaptureModel,
    /// Channel bits per frame.
    pub frame_bits: usize,
    /// FEC rate of the link stack.
    pub fec_rate: f64,
    /// Uplink bit rate, bits/s.
    pub bit_rate: f64,
    /// Sound speed in this environment, m/s.
    pub sound_speed: f64,
}

impl Network {
    /// Derives the full network (placement + channels) from `spec`.
    pub fn build(spec: &NetworkSpec) -> Self {
        let topology = Topology::generate(spec);
        let link = LinkConfig::vab_default();
        let frame_bits = link.encoded_len(PAYLOAD_BYTES);
        let fec_rate = link.fec.rate();
        let channels = derive_channels(spec, &topology, frame_bits, fec_rate);
        let scenario = scenario_for_node(spec, &topology, &topology.nodes[0]);
        Self {
            spec: spec.clone(),
            topology,
            channels,
            capture: CaptureModel::default(),
            frame_bits,
            fec_rate,
            bit_rate: scenario.mod_params.bit_rate,
            sound_speed: scenario.env.sound_speed(),
        }
    }

    /// Wall-clock duration of one contention slot: the reply frame plus
    /// the worst-case round-trip propagation guard.
    pub fn slot_duration_s(&self) -> f64 {
        self.frame_bits as f64 / self.bit_rate + 2.0 * self.topology.max_range_m / self.sound_speed
    }

    /// Resolves one contention slot physically: the respondents' received
    /// powers superpose at the hydrophone, the strongest reply captures
    /// iff its SINR clears the threshold, and a captured reply still has
    /// to decode (Bernoulli on the frame-success probability at its
    /// SINR). Respondents present but nothing decoded is a collision —
    /// the reader hears energy without a frame, exactly the signal the
    /// ALOHA window controller keys on.
    pub fn resolve_slot(&self, respondents: &[Addr], decode_rng: &mut StdRng) -> SlotOutcome {
        if respondents.is_empty() {
            return SlotOutcome::Idle;
        }
        let powers: Vec<(Addr, f64)> =
            respondents.iter().map(|&a| (a, self.channels[a as usize].rx_power_lin)).collect();
        let noise = self.channels[respondents[0] as usize].noise_power_lin;
        match self.capture.capture_candidate(&powers, noise) {
            Some((addr, sinr_lin)) => {
                let p = frame_success(sinr_lin, self.frame_bits, self.fec_rate);
                if decode_rng.random::<f64>() < p {
                    SlotOutcome::Single(addr)
                } else {
                    SlotOutcome::Collision
                }
            }
            None => SlotOutcome::Collision,
        }
    }

    /// Runs the discovery phase: framed ALOHA over all deployed nodes
    /// with capture-aware slot resolution, capped at
    /// [`MAX_INVENTORY_ROUNDS`].
    pub fn run_inventory(&self) -> NetInventoryReport {
        let _t = vab_obs::time_stage("net.inventory");
        let mut contention = seeded(derive_seed(self.spec.seed, STREAM_CONTENTION));
        let mut decode = seeded(derive_seed(self.spec.seed, STREAM_DECODE));
        let initial_window = self.spec.n_nodes.next_power_of_two().clamp(4, 256);
        let mut reader = AlohaReader::new(initial_window);
        let mut pending: Vec<Addr> = self.topology.nodes.iter().map(|n| n.addr).collect();
        let mut rounds = 0;
        while !pending.is_empty() && rounds < MAX_INVENTORY_ROUNDS {
            reader.run_round_with(&mut pending, &mut contention, |r| {
                self.resolve_slot(r, &mut decode)
            });
            rounds += 1;
        }
        let discovered = reader.identified.clone();
        let report = NetInventoryReport {
            n_nodes: self.spec.n_nodes,
            discovered,
            rounds,
            slots_used: reader.slots_used,
            collisions: reader.collisions,
            time_s: reader.slots_used as f64 * self.slot_duration_s(),
        };
        vab_obs::event!(
            "net.inventory",
            "inventory_done",
            n_nodes = report.n_nodes,
            discovered = report.discovered.len(),
            rounds = report.rounds,
            slots = report.slots_used,
            collisions = report.collisions,
        );
        vab_obs::metrics::inc("net.inventories", 1);
        vab_obs::metrics::set("net.last_inventory_coverage_pct", report.coverage() * 100.0);
        report
    }

    /// Runs the monitoring phase: a TDMA round schedule over the
    /// `discovered` nodes (collision-free slots — TDMA is what inventory
    /// buys you), with each node's slot decoding at its clean-channel
    /// frame-success probability.
    pub fn run_steady_state(&self, discovered: &[Addr]) -> SteadyStateReport {
        let _t = vab_obs::time_stage("net.steady_state");
        let n_slots = discovered.len().max(1) as u32;
        let mut schedule = TdmaSchedule::for_frames(
            n_slots,
            self.frame_bits,
            self.bit_rate,
            self.topology.max_range_m,
            self.sound_speed,
        );
        schedule.assign_all(discovered);
        let round_s = schedule.round_duration().value();
        let mut rng = seeded(derive_seed(self.spec.seed, STREAM_STEADY));
        let horizon_s = STEADY_ROUNDS as f64 * round_s;
        let mut per_node: Vec<(Addr, f64)> = Vec::with_capacity(discovered.len());
        for &addr in discovered {
            let p = self.channels[addr as usize].packet_success;
            let mut delivered = 0u32;
            for _ in 0..STEADY_ROUNDS {
                if rng.random::<f64>() < p {
                    delivered += 1;
                }
            }
            per_node.push((addr, delivered as f64 * PAYLOAD_BITS as f64 / horizon_s));
        }
        per_node.sort_by_key(|&(addr, _)| addr);
        let goodputs: Vec<f64> = per_node.iter().map(|&(_, g)| g).collect();
        let report = SteadyStateReport {
            aggregate_goodput_bps: goodputs.iter().sum(),
            jain_fairness: jain_fairness(&goodputs),
            round_duration_s: round_s,
            per_node_goodput_bps: per_node,
        };
        vab_obs::event!(
            "net.steady",
            "steady_state_done",
            scheduled = discovered.len(),
            aggregate_goodput_bps = report.aggregate_goodput_bps,
            jain = report.jain_fairness,
        );
        report
    }
}

/// Outcome of the discovery phase.
#[derive(Debug, Clone)]
pub struct NetInventoryReport {
    /// Deployed population size.
    pub n_nodes: usize,
    /// Addresses discovered, in discovery order.
    pub discovered: Vec<Addr>,
    /// Contention rounds used.
    pub rounds: u32,
    /// Contention slots spent.
    pub slots_used: u64,
    /// Slots where energy was heard but nothing decoded.
    pub collisions: u64,
    /// Wall-clock time to the end of inventory, seconds.
    pub time_s: f64,
}

impl NetInventoryReport {
    /// Fraction of the deployed population discovered.
    pub fn coverage(&self) -> f64 {
        if self.n_nodes == 0 {
            return 1.0;
        }
        self.discovered.len() as f64 / self.n_nodes as f64
    }
}

/// Outcome of the monitoring phase.
#[derive(Debug, Clone)]
pub struct SteadyStateReport {
    /// Per-node goodput, bits/s, sorted by address.
    pub per_node_goodput_bps: Vec<(Addr, f64)>,
    /// Network-wide goodput, bits/s.
    pub aggregate_goodput_bps: f64,
    /// Jain fairness index over per-node goodputs, in `(0, 1]`.
    pub jain_fairness: f64,
    /// One TDMA round, seconds.
    pub round_duration_s: f64,
}

/// Both phases of one deployment, plus the spec that produced them.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// The deployment spec.
    pub spec: NetworkSpec,
    /// Discovery phase outcome.
    pub inventory: NetInventoryReport,
    /// Monitoring phase outcome (over the discovered nodes).
    pub steady: SteadyStateReport,
}

impl DeploymentReport {
    /// Canonical JSON payload: fixed key order, discovery list sorted,
    /// per-node goodputs sorted by address — byte-identical for equal
    /// specs no matter where or how the deployment ran.
    pub fn to_json(&self) -> Json {
        let mut discovered: Vec<Addr> = self.inventory.discovered.clone();
        discovered.sort_unstable();
        Json::obj([
            ("schema", Json::Str(REPORT_SCHEMA.into())),
            ("topology_digest", Json::Str(format!("{:016x}", self.spec.digest()))),
            (
                "inventory",
                Json::obj([
                    ("n_nodes", Json::Num(self.inventory.n_nodes as f64)),
                    (
                        "discovered",
                        Json::Arr(discovered.iter().map(|&a| Json::Num(a as f64)).collect()),
                    ),
                    ("coverage", Json::Num(self.inventory.coverage())),
                    ("rounds", Json::Num(self.inventory.rounds as f64)),
                    ("slots_used", Json::Num(self.inventory.slots_used as f64)),
                    ("collisions", Json::Num(self.inventory.collisions as f64)),
                    ("time_s", Json::Num(self.inventory.time_s)),
                ]),
            ),
            (
                "steady",
                Json::obj([
                    ("aggregate_goodput_bps", Json::Num(self.steady.aggregate_goodput_bps)),
                    ("jain_fairness", Json::Num(self.steady.jain_fairness)),
                    ("round_duration_s", Json::Num(self.steady.round_duration_s)),
                    (
                        "per_node_goodput_bps",
                        Json::Arr(
                            self.steady
                                .per_node_goodput_bps
                                .iter()
                                .map(|&(addr, g)| {
                                    Json::Arr(vec![Json::Num(addr as f64), Json::Num(g)])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// Builds the network for `spec` and runs both phases — the one-call
/// entry point the service layer and the figures use.
pub fn run_deployment(spec: &NetworkSpec) -> DeploymentReport {
    let _t = vab_obs::time_stage("net.deployment");
    let net = Network::build(spec);
    let inventory = net.run_inventory();
    let steady = net.run_steady_state(&inventory.discovered);
    DeploymentReport { spec: spec.clone(), inventory, steady }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetworkSpec;

    #[test]
    fn deployment_is_deterministic() {
        let spec = NetworkSpec::river(24, 5);
        let a = run_deployment(&spec);
        let b = run_deployment(&spec);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn small_river_deployment_fully_inventories() {
        // 8 nodes within ~70 m in a river: every link is strong, so
        // inventory must find everyone and TDMA must serve everyone.
        let spec = NetworkSpec::river(8, 3);
        let r = run_deployment(&spec);
        assert_eq!(r.inventory.discovered.len(), 8, "coverage {}", r.inventory.coverage());
        assert!(r.steady.aggregate_goodput_bps > 0.0);
        assert!(r.steady.jain_fairness > 0.0 && r.steady.jain_fairness <= 1.0);
        assert_eq!(r.steady.per_node_goodput_bps.len(), 8);
    }

    #[test]
    fn slot_resolution_prefers_the_strong_node() {
        let spec = NetworkSpec::river(32, 9);
        let net = Network::build(&spec);
        // Find the strongest and weakest nodes in the deployment.
        let strongest =
            net.channels.iter().max_by(|a, b| a.rx_power_lin.total_cmp(&b.rx_power_lin)).unwrap();
        let weakest =
            net.channels.iter().min_by(|a, b| a.rx_power_lin.total_cmp(&b.rx_power_lin)).unwrap();
        let mut rng = seeded(1);
        match net.resolve_slot(&[strongest.addr, weakest.addr], &mut rng) {
            SlotOutcome::Single(a) => assert_eq!(a, strongest.addr),
            SlotOutcome::Collision => {} // capture below threshold is legal
            SlotOutcome::Idle => panic!("occupied slot cannot be idle"),
        }
    }

    #[test]
    fn steady_state_with_nobody_discovered_is_sane() {
        let spec = NetworkSpec::river(4, 2);
        let net = Network::build(&spec);
        let s = net.run_steady_state(&[]);
        assert_eq!(s.aggregate_goodput_bps, 0.0);
        assert_eq!(s.jain_fairness, 1.0);
    }
}
