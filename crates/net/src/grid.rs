//! Spatial acceleration for interference aggregation: a uniform grid over
//! the deployment volume plus an absorption-derived *interference horizon*.
//!
//! The pairwise reference sums every concurrent transmitter's contribution
//! at a receiver — O(N) per query, O(N²) per network sweep, which is both
//! slow and pointless at ocean scale: seawater absorption
//! ([`Environment::absorption_db_per_km`]) plus spherical spreading drives
//! a far transmitter's contribution tens of dB below the noise floor. The
//! horizon is the range beyond which a source's received level falls below
//! a floor (noise minus a margin); the grid returns only in-horizon
//! sources, so aggregation is O(k) per query with k the in-horizon count.
//!
//! **Exactness contract**: [`grid_interference_lin`] and
//! [`pairwise_interference_lin`] evaluate the *same* per-source
//! contribution ([`reply_contribution_lin`]) in the *same* (ascending
//! source-index) order, so whenever every source lies within the horizon
//! the two sums are bit-identical — floating-point summation order and
//! all. This is pinned by a proptest in `tests/network.rs`.

use vab_acoustics::environment::Environment;
use vab_acoustics::geometry::Position;
use vab_util::db::db_to_lin_pow;
use vab_util::units::{Hertz, Meters};

/// Margin below the noise floor at which an interferer is declared
/// negligible, dB. A source 10 dB under the noise floor shifts total
/// noise-plus-interference by under 0.5 dB even before capture margins.
pub const HORIZON_MARGIN_DB: f64 = 10.0;

/// Upper bound on any horizon search, metres (200 km — far past any
/// plausible acoustic interference range at backscatter levels).
pub const HORIZON_MAX_M: f64 = 200_000.0;

/// One acoustic point source: a node whose backscattered reply re-radiates
/// at `level_db_at_1m` (dB re 1 µPa @ 1 m).
#[derive(Debug, Clone, Copy)]
pub struct PointSource {
    /// MAC address of the transmitting node.
    pub addr: vab_mac::Addr,
    /// Node position.
    pub pos: Position,
    /// Effective reply source level at 1 m, dB re 1 µPa.
    pub level_db_at_1m: f64,
}

/// Linear received power of `src` at `at` under spreading + absorption
/// (`env.transmission_loss`), with the standard 1 m reference clamp.
///
/// Both aggregation paths call exactly this function so their per-source
/// terms are bitwise identical.
pub fn reply_contribution_lin(env: &Environment, f: Hertz, src: &PointSource, at: Position) -> f64 {
    let d = src.pos.distance_to(&at).value().max(1.0);
    db_to_lin_pow(src.level_db_at_1m - env.transmission_loss(f, Meters(d)).value())
}

/// The interference horizon: the smallest range at which a source of
/// `level_db_at_1m` is received at or below `floor_db` (typically the
/// noise power minus [`HORIZON_MARGIN_DB`]), solved by bisection on the
/// monotone spreading-plus-absorption transmission loss.
///
/// Returns [`HORIZON_MAX_M`] if the source is still above the floor there
/// (effectively "no horizon"), and 1.0 if it is already below the floor
/// at the 1 m reference.
pub fn interference_horizon_m(
    env: &Environment,
    f: Hertz,
    level_db_at_1m: f64,
    floor_db: f64,
) -> f64 {
    let rx = |d: f64| level_db_at_1m - env.transmission_loss(f, Meters(d)).value();
    if rx(1.0) <= floor_db {
        return 1.0;
    }
    if rx(HORIZON_MAX_M) > floor_db {
        return HORIZON_MAX_M;
    }
    let (mut lo, mut hi) = (1.0_f64, HORIZON_MAX_M);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if rx(mid) > floor_db {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Reference aggregation: total linear interference power at `at` from
/// every source (skipping `exclude`), summed in slice order. Callers keep
/// sources sorted by ascending address so the sum order is canonical.
pub fn pairwise_interference_lin(
    env: &Environment,
    f: Hertz,
    sources: &[PointSource],
    at: Position,
    exclude: Option<vab_mac::Addr>,
) -> f64 {
    let mut total = 0.0;
    for src in sources {
        if Some(src.addr) == exclude {
            continue;
        }
        total += reply_contribution_lin(env, f, src, at);
    }
    total
}

/// Accelerated aggregation: only sources within `horizon_m` of `at`
/// contribute, found through `grid` (built over the same `sources` slice)
/// and summed in ascending source-index order.
///
/// Below the horizon this matches [`pairwise_interference_lin`] exactly —
/// same contribution function, same summation order.
pub fn grid_interference_lin(
    env: &Environment,
    f: Hertz,
    sources: &[PointSource],
    grid: &SpatialGrid,
    at: Position,
    horizon_m: f64,
    exclude: Option<vab_mac::Addr>,
) -> f64 {
    let mut total = 0.0;
    let mut scratch = Vec::new();
    grid.indices_within(at, horizon_m, &mut scratch);
    for &i in &scratch {
        let src = &sources[i as usize];
        if Some(src.addr) == exclude {
            continue;
        }
        total += reply_contribution_lin(env, f, src, at);
    }
    total
}

/// A uniform spatial grid over a set of points, bucketing point indices by
/// cell for O(k) radius queries.
///
/// Build is O(N); a radius query visits only the cells overlapping the
/// query ball and returns indices in ascending order (the order-canonical
/// property interference summation relies on).
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_m: f64,
    min: [f64; 3],
    dims: [usize; 3],
    cells: Vec<Vec<u32>>,
    points: Vec<Position>,
}

impl SpatialGrid {
    /// Builds a grid of `cell_m`-sized cubic cells over `points`.
    ///
    /// `cell_m` is typically half the query radius (horizon): big enough
    /// that a query touches a handful of cells, small enough that each
    /// cell holds a local neighborhood.
    pub fn build(points: &[Position], cell_m: f64) -> Self {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "cell size must be positive");
        assert!(!points.is_empty(), "cannot grid zero points");
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for p in points {
            for (k, v) in [p.x, p.y, p.z].into_iter().enumerate() {
                min[k] = min[k].min(v);
                max[k] = max[k].max(v);
            }
        }
        let dims: [usize; 3] =
            std::array::from_fn(|k| (((max[k] - min[k]) / cell_m).floor() as usize + 1).max(1));
        let mut cells = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        let mut g = Self { cell_m, min, dims, cells: Vec::new(), points: points.to_vec() };
        for (i, p) in points.iter().enumerate() {
            let c = g.cell_of(p);
            cells[c].push(i as u32);
        }
        g.cells = cells;
        g
    }

    /// Number of points the grid was built over.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true — `build` rejects zero points).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn axis_cell(&self, k: usize, v: f64) -> usize {
        let i = ((v - self.min[k]) / self.cell_m).floor();
        (i.max(0.0) as usize).min(self.dims[k] - 1)
    }

    fn cell_of(&self, p: &Position) -> usize {
        let (ix, iy, iz) = (self.axis_cell(0, p.x), self.axis_cell(1, p.y), self.axis_cell(2, p.z));
        (iz * self.dims[1] + iy) * self.dims[0] + ix
    }

    /// Collects into `out` the indices of all points within `radius_m` of
    /// `center`, in ascending index order. `out` is cleared first; reusing
    /// one scratch vector across queries avoids per-query allocation.
    pub fn indices_within(&self, center: Position, radius_m: f64, out: &mut Vec<u32>) {
        out.clear();
        let lo: [usize; 3] = std::array::from_fn(|k| {
            let v = [center.x, center.y, center.z][k] - radius_m;
            self.axis_cell(k, v)
        });
        let hi: [usize; 3] = std::array::from_fn(|k| {
            let v = [center.x, center.y, center.z][k] + radius_m;
            self.axis_cell(k, v)
        });
        let r2 = radius_m * radius_m;
        for iz in lo[2]..=hi[2] {
            for iy in lo[1]..=hi[1] {
                for ix in lo[0]..=hi[0] {
                    let cell = &self.cells[(iz * self.dims[1] + iy) * self.dims[0] + ix];
                    for &i in cell {
                        let p = &self.points[i as usize];
                        let (dx, dy, dz) = (p.x - center.x, p.y - center.y, p.z - center.z);
                        if dx * dx + dy * dy + dz * dz <= r2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use vab_util::rng::seeded;

    fn ocean() -> Environment {
        Environment::ocean(vab_acoustics::environment::SeaState::all()[1])
    }

    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Position> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                Position::new(
                    rng.random::<f64>() * extent,
                    rng.random::<f64>() * extent,
                    1.0 + rng.random::<f64>() * 8.0,
                )
            })
            .collect()
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = scatter(300, 500.0, 9);
        let grid = SpatialGrid::build(&pts, 60.0);
        let center = Position::new(250.0, 250.0, 5.0);
        let mut got = Vec::new();
        grid.indices_within(center, 120.0, &mut got);
        let want: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| pts[i as usize].distance_to(&center).value() <= 120.0)
            .collect();
        assert_eq!(got, want, "grid query must equal brute force, in ascending order");
    }

    #[test]
    fn horizon_is_monotone_in_level_and_finite() {
        let env = ocean();
        let f = Hertz(18_500.0);
        let quiet = interference_horizon_m(&env, f, 120.0, 60.0);
        let loud = interference_horizon_m(&env, f, 150.0, 60.0);
        assert!(loud > quiet, "a louder source carries farther: {loud} vs {quiet}");
        assert!(quiet >= 1.0 && loud <= HORIZON_MAX_M);
        // At the horizon the received level is (numerically) at the floor.
        let rx = 150.0 - env.transmission_loss(f, Meters(loud)).value();
        assert!((rx - 60.0).abs() < 1e-6, "rx at horizon = {rx}");
    }

    #[test]
    fn grid_sum_matches_pairwise_when_horizon_covers_all() {
        let env = ocean();
        let f = Hertz(18_500.0);
        let pts = scatter(120, 200.0, 4);
        let sources: Vec<PointSource> = pts
            .iter()
            .enumerate()
            .map(|(i, &pos)| PointSource { addr: i as u32, pos, level_db_at_1m: 130.0 })
            .collect();
        let grid = SpatialGrid::build(&pts, 50.0);
        let at = Position::new(100.0, 100.0, 4.0);
        let a = pairwise_interference_lin(&env, f, &sources, at, Some(3));
        let b = grid_interference_lin(&env, f, &sources, &grid, at, 10_000.0, Some(3));
        assert_eq!(a.to_bits(), b.to_bits(), "sums must be bit-identical below the horizon");
    }

    #[test]
    fn grid_sum_drops_out_of_horizon_sources() {
        let env = ocean();
        let f = Hertz(18_500.0);
        let near = Position::new(0.0, 0.0, 5.0);
        let far = Position::new(5_000.0, 0.0, 5.0);
        let sources = [
            PointSource { addr: 0, pos: near, level_db_at_1m: 130.0 },
            PointSource { addr: 1, pos: far, level_db_at_1m: 130.0 },
        ];
        let grid = SpatialGrid::build(&[near, far], 100.0);
        let at = Position::new(10.0, 0.0, 5.0);
        let full = pairwise_interference_lin(&env, f, &sources, at, None);
        let cut = grid_interference_lin(&env, f, &sources, &grid, at, 1_000.0, None);
        assert!(cut < full, "the 5 km source must be culled");
        assert!(cut > 0.0);
    }
}
