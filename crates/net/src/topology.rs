//! Deployment geometry: where the reader and the N nodes sit in the water
//! column.
//!
//! A topology is a pure function of its [`NetworkSpec`]: the same spec
//! always generates the same node placement, and the spec's canonical
//! byte form is content-addressed ([`NetworkSpec::digest`]) so network
//! campaigns can cache per-topology results exactly like the service
//! layer caches per-job results.

use rand::RngExt;
use vab_acoustics::environment::{Environment, SeaState};
use vab_acoustics::geometry::Position;
use vab_util::hash::fnv1a64;
use vab_util::json::Json;
use vab_util::rng::{derive_seed, seeded};
use vab_util::units::Degrees;

/// Schema/version tag folded into every topology digest. Bump when the
/// placement algorithm or the spec's canonical form changes.
pub const TOPOLOGY_VERSION: &str = "vab-net-topology/1";

/// Vertical margin nodes keep from the surface and the bottom, metres —
/// the image-method channel needs strictly in-column endpoints.
pub const DEPTH_MARGIN_M: f64 = 0.8;

/// Maximum |rotation| of a node's broadside off the reader bearing,
/// degrees (anchored nodes swing on their moorings).
pub const MAX_ROTATION_DEG: f64 = 30.0;

/// The box nodes are scattered in, relative to the reader at the origin.
///
/// Nodes occupy `x ∈ [standoff, standoff + x_m]`, `y ∈ [−y_m/2, y_m/2]`
/// and the environment's usable depth band; shrinking `x_m`/`y_m` at a
/// fixed node count raises deployment density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentVolume {
    /// Down-range extent, metres.
    pub x_m: f64,
    /// Cross-range extent, metres.
    pub y_m: f64,
    /// Closest a node may sit to the reader, metres.
    pub standoff_m: f64,
}

impl DeploymentVolume {
    /// The canonical evaluation volume: 60 m × 40 m starting 10 m out.
    pub fn vab_default() -> Self {
        Self { x_m: 60.0, y_m: 40.0, standoff_m: 10.0 }
    }

    /// Scales the horizontal extents by `s` (standoff unchanged) —
    /// `s < 1` packs the same nodes into a smaller footprint.
    pub fn scaled(&self, s: f64) -> Self {
        assert!(s > 0.0 && s.is_finite());
        Self { x_m: self.x_m * s, y_m: self.y_m * s, standoff_m: self.standoff_m }
    }

    /// Horizontal footprint, m².
    pub fn footprint_m2(&self) -> f64 {
        self.x_m * self.y_m
    }
}

/// Water environment of a deployment (mirrors the scenarios `vab-sim`
/// evaluates single links in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEnv {
    /// The canonical 4 m river.
    River,
    /// Ocean at a sea-state index (0 = calm … 4 = moderate).
    Ocean {
        /// Index into `SeaState::all()`.
        sea_state: u8,
    },
}

impl NetEnv {
    /// Instantiates the acoustic environment.
    pub fn environment(&self) -> Environment {
        match self {
            NetEnv::River => Environment::river(),
            NetEnv::Ocean { sea_state } => {
                let states = SeaState::all();
                Environment::ocean(states[(*sea_state as usize).min(states.len() - 1)])
            }
        }
    }

    /// Reader (projector + hydrophone) position, matching the canonical
    /// single-link scenarios.
    pub fn reader_pos(&self) -> Position {
        match self {
            NetEnv::River => Position::new(0.0, 0.0, 2.0),
            NetEnv::Ocean { .. } => Position::new(0.0, 0.0, 5.0),
        }
    }

    pub(crate) fn to_json(self) -> Json {
        match self {
            NetEnv::River => Json::obj([("kind", Json::Str("river".into()))]),
            NetEnv::Ocean { sea_state } => Json::obj([
                ("kind", Json::Str("ocean".into())),
                ("sea_state", Json::Num(sea_state as f64)),
            ]),
        }
    }
}

/// Everything needed to reproduce a deployment: placement, channels,
/// inventory and steady state all derive deterministically from this.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Number of backscatter nodes (≥ 1; ocean-scale deployments run
    /// 10k–100k nodes — see `SCALING.md`).
    pub n_nodes: usize,
    /// The deployment box.
    pub volume: DeploymentVolume,
    /// Water environment.
    pub env: NetEnv,
    /// Van Atta pairs per node.
    pub n_pairs: usize,
    /// Master seed; placement, fading and MAC contention all derive
    /// per-purpose streams from it.
    pub seed: u64,
}

impl NetworkSpec {
    /// A river deployment of `n_nodes` in the default volume with 4-pair
    /// nodes.
    pub fn river(n_nodes: usize, seed: u64) -> Self {
        Self {
            n_nodes,
            volume: DeploymentVolume::vab_default(),
            env: NetEnv::River,
            n_pairs: 4,
            seed,
        }
    }

    /// Node density over the deployment box, nodes per 1000 m³ (the
    /// usable depth band is set by the environment).
    pub fn density_per_1000m3(&self) -> f64 {
        let depth = self.env.environment().depth.value();
        let band = (depth - 2.0 * DEPTH_MARGIN_M).max(0.1);
        self.n_nodes as f64 / (self.volume.footprint_m2() * band) * 1000.0
    }

    /// Canonical byte form: compact JSON with fixed key order, seeds as
    /// decimal strings (the same convention as `vab-svc` job specs).
    pub fn canonical(&self) -> String {
        Json::obj([
            ("kind", Json::Str("net_topology".into())),
            ("n_nodes", Json::Num(self.n_nodes as f64)),
            ("x_m", Json::Num(self.volume.x_m)),
            ("y_m", Json::Num(self.volume.y_m)),
            ("standoff_m", Json::Num(self.volume.standoff_m)),
            ("env", self.env.to_json()),
            ("n_pairs", Json::Num(self.n_pairs as f64)),
            ("seed", Json::Str(self.seed.to_string())),
        ])
        .render()
    }

    /// Content address of this topology under [`TOPOLOGY_VERSION`].
    pub fn digest(&self) -> u64 {
        let mut bytes = self.canonical().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(TOPOLOGY_VERSION.as_bytes());
        fnv1a64(&bytes)
    }
}

/// One placed node.
#[derive(Debug, Clone, Copy)]
pub struct NodeSite {
    /// MAC address (dense from 0).
    pub addr: vab_mac::Addr,
    /// Position in the water column (z positive down).
    pub pos: Position,
    /// Broadside rotation off the reader bearing.
    pub rotation: Degrees,
}

/// A generated deployment: the reader plus N placed nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Reader position.
    pub reader: Position,
    /// Placed nodes, addressed densely from 0.
    pub nodes: Vec<NodeSite>,
    /// Water-column depth, metres.
    pub water_depth_m: f64,
    /// Largest reader–node separation, metres (sizes TDMA guards).
    pub max_range_m: f64,
}

impl Topology {
    /// Places `spec.n_nodes` nodes uniformly in the deployment box.
    ///
    /// Deterministic: the placement stream is derived from `spec.seed`
    /// alone, so equal specs generate bit-identical topologies. The
    /// per-node draw order is unchanged from the historical ≤256-node
    /// implementation, so pre-widening specs keep their placements (and
    /// digests) bit for bit.
    ///
    /// # Panics
    /// If `n_nodes` is 0.
    pub fn generate(spec: &NetworkSpec) -> Self {
        assert!(spec.n_nodes >= 1, "n_nodes must be at least 1");
        let env = spec.env.environment();
        let depth = env.depth.value();
        let (z_lo, z_hi) = (DEPTH_MARGIN_M, depth - DEPTH_MARGIN_M);
        assert!(z_hi > z_lo, "water column too shallow for the depth margin");
        let reader = spec.env.reader_pos();
        let v = spec.volume;
        let mut rng = seeded(derive_seed(spec.seed, 0x70_70));
        let mut nodes = Vec::with_capacity(spec.n_nodes);
        let mut max_range_m: f64 = 0.0;
        for addr in 0..spec.n_nodes {
            let x = v.standoff_m + rng.random::<f64>() * v.x_m;
            let y = (rng.random::<f64>() - 0.5) * v.y_m;
            let z = z_lo + rng.random::<f64>() * (z_hi - z_lo);
            let rotation = Degrees((rng.random::<f64>() * 2.0 - 1.0) * MAX_ROTATION_DEG);
            let pos = Position::new(x, y, z);
            max_range_m = max_range_m.max(reader.distance_to(&pos).value());
            nodes.push(NodeSite { addr: addr as vab_mac::Addr, pos, rotation });
        }
        Self { reader, nodes, water_depth_m: depth, max_range_m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_volume() {
        let spec = NetworkSpec::river(64, 42);
        let a = Topology::generate(&spec);
        let b = Topology::generate(&spec);
        assert_eq!(a.nodes.len(), 64);
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.pos.x.to_bits(), nb.pos.x.to_bits());
            assert_eq!(na.rotation.value().to_bits(), nb.rotation.value().to_bits());
        }
        let v = spec.volume;
        for n in &a.nodes {
            assert!(n.pos.x >= v.standoff_m && n.pos.x <= v.standoff_m + v.x_m);
            assert!(n.pos.y.abs() <= v.y_m / 2.0);
            assert!(n.pos.z > 0.0 && n.pos.z < a.water_depth_m);
            assert!(n.rotation.value().abs() <= MAX_ROTATION_DEG);
        }
        assert!(a.max_range_m >= v.standoff_m);
    }

    #[test]
    fn digest_separates_specs() {
        let a = NetworkSpec::river(16, 7);
        let mut b = a.clone();
        b.seed = 8;
        let mut c = a.clone();
        c.volume = c.volume.scaled(0.5);
        assert_eq!(a.digest(), NetworkSpec::river(16, 7).digest());
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn density_rises_when_volume_shrinks() {
        let a = NetworkSpec::river(64, 1);
        let mut b = a.clone();
        b.volume = b.volume.scaled(0.5);
        assert!(b.density_per_1000m3() > a.density_per_1000m3() * 3.9);
    }

    #[test]
    #[should_panic(expected = "n_nodes")]
    fn empty_deployment_panics() {
        Topology::generate(&NetworkSpec::river(0, 1));
    }

    #[test]
    fn generation_scales_past_the_former_256_node_cap() {
        let spec = NetworkSpec::river(1000, 3);
        let t = Topology::generate(&spec);
        assert_eq!(t.nodes.len(), 1000);
        assert_eq!(t.nodes[999].addr, 999);
    }
}
