//! # vab-net — spatial multi-node Van Atta network simulation
//!
//! The paper promises Van Atta acoustic *networks*; the rest of the
//! workspace models one link at a time. This crate deploys N backscatter
//! nodes — from a handful up to ocean scale (10k–100k) — with
//! projector/hydrophone readers in a 3-D volume, derives each node's
//! channel — range, absorption, multipath, noise — from
//! `vab-acoustics`/`vab-sim`, and models concurrent backscatter as
//! physical-layer interference: colliding replies superpose at the
//! hydrophone and per-node SINR decides *capture*, rather than an
//! abstract collision bit.
//!
//! Two tiers share the same MAC and capture machinery:
//!
//! * the **paper tier** ([`network`]) — one reader, full image-method
//!   channels, pairwise interference; faithful at N ≲ a few thousand;
//! * the **scale tier** ([`scale`]) — multi-reader cells, closed-form
//!   channels, grid-accelerated interference ([`grid`]) and multi-hop
//!   routing ([`route`]); O(N log N)-ish, runs 65k+ nodes in seconds.
//!
//! The layers:
//!
//! * [`topology`] — seed-pure node placement in a deployment volume,
//!   with a content-addressed spec digest for per-topology caching;
//! * [`channel`] — per-node round-trip link budgets and image-method
//!   fading, in the linear-power units superposition needs;
//! * [`capture`] — the SINR capture rule and Jain's fairness index;
//! * [`network`] — discovery (framed ALOHA via
//!   [`vab_mac::AlohaReader::run_round_with`]) and steady-state TDMA
//!   monitoring, producing a canonical [`DeploymentReport`];
//! * [`grid`] — the uniform spatial grid and absorption-derived
//!   interference horizon (bit-identical to pairwise below the horizon);
//! * [`route`] — VBF and cluster-head relay planning for rim nodes;
//! * [`scale`] — the ocean-scale deployment runner ([`ScaleReport`]).
//!
//! Each deployment is single-threaded and deterministic in its spec;
//! campaigns parallelize *across* deployments through the `vab-svc`
//! worker pool, which caches each report by content address.
//!
//! ## Example: run a small deployment end to end
//!
//! ```
//! use vab_net::{run_deployment, NetworkSpec};
//!
//! // Eight nodes scattered in the default 60 m × 40 m river volume.
//! let spec = NetworkSpec::river(8, 42);
//! let report = run_deployment(&spec);
//! assert!(report.inventory.coverage() > 0.9, "short river links all close");
//! assert!(report.steady.jain_fairness > 0.0 && report.steady.jain_fairness <= 1.0);
//! // Equal specs reproduce byte-identical reports.
//! assert_eq!(
//!     report.to_json().render(),
//!     run_deployment(&spec).to_json().render(),
//! );
//! ```
//!
//! ## Example: an ocean-scale cellular deployment with relays
//!
//! ```
//! use vab_net::{run_scale_deployment, RoutePolicy, ScaleSpec};
//!
//! // 512 nodes at the canonical ocean density: ⌈512¼⌉² = 25 reader
//! // cells, VBF relays for the rim nodes the direct link can't reach.
//! let spec = ScaleSpec::ocean(512, 7);
//! assert_eq!(spec.policy, RoutePolicy::Vbf);
//! let report = run_scale_deployment(&spec);
//! assert!(report.inventory.coverage() > 0.5);
//! // Relayed rim nodes ride through neighbors: a multi-hop round costs
//! // more than one uplink transmission per delivery on average.
//! assert!(report.steady.mean_hops >= 1.0);
//! // Equal specs reproduce byte-identical reports.
//! assert_eq!(
//!     report.to_json().render(),
//!     run_scale_deployment(&spec).to_json().render(),
//! );
//! ```

#![warn(missing_docs)]

pub mod capture;
pub mod channel;
pub mod grid;
pub mod network;
pub mod route;
pub mod scale;
pub mod topology;

pub use capture::{jain_fairness, sinr_db, CaptureModel};
pub use channel::NodeChannel;
pub use grid::{
    grid_interference_lin, interference_horizon_m, pairwise_interference_lin, PointSource,
    SpatialGrid,
};
pub use network::{
    run_deployment, DeploymentReport, NetInventoryReport, Network, SteadyStateReport,
};
pub use route::{plan_routes, RelayRoute, RouteNode, RoutePolicy};
pub use scale::{run_scale_deployment, ScaleNetwork, ScaleReport, ScaleSpec};
pub use topology::{DeploymentVolume, NetEnv, NetworkSpec, NodeSite, Topology};
