//! # vab-net — spatial multi-node Van Atta network simulation
//!
//! The paper promises Van Atta acoustic *networks*; the rest of the
//! workspace models one link at a time. This crate deploys N backscatter
//! nodes (N up to 256) and one projector/hydrophone reader in a 3-D
//! volume, derives each node's channel — range, absorption, multipath,
//! noise — from `vab-acoustics`/`vab-sim`, and models concurrent
//! backscatter as physical-layer interference: colliding replies
//! superpose at the hydrophone and per-node SINR decides *capture*,
//! rather than an abstract collision bit.
//!
//! The layers:
//!
//! * [`topology`] — seed-pure node placement in a deployment volume,
//!   with a content-addressed spec digest for per-topology caching;
//! * [`channel`] — per-node round-trip link budgets and image-method
//!   fading, in the linear-power units superposition needs;
//! * [`capture`] — the SINR capture rule and Jain's fairness index;
//! * [`network`] — discovery (framed ALOHA via
//!   [`vab_mac::AlohaReader::run_round_with`]) and steady-state TDMA
//!   monitoring, producing a canonical [`DeploymentReport`].
//!
//! Each deployment is single-threaded and deterministic in its spec;
//! campaigns parallelize *across* topologies through the `vab-svc`
//! worker pool, which caches each topology's report by content address.
//!
//! ## Example: run a small deployment end to end
//!
//! ```
//! use vab_net::{run_deployment, NetworkSpec};
//!
//! // Eight nodes scattered in the default 60 m × 40 m river volume.
//! let spec = NetworkSpec::river(8, 42);
//! let report = run_deployment(&spec);
//! assert!(report.inventory.coverage() > 0.9, "short river links all close");
//! assert!(report.steady.jain_fairness > 0.0 && report.steady.jain_fairness <= 1.0);
//! // Equal specs reproduce byte-identical reports.
//! assert_eq!(
//!     report.to_json().render(),
//!     run_deployment(&spec).to_json().render(),
//! );
//! ```

#![warn(missing_docs)]

pub mod capture;
pub mod channel;
pub mod network;
pub mod topology;

pub use capture::{jain_fairness, sinr_db, CaptureModel};
pub use channel::NodeChannel;
pub use network::{
    run_deployment, DeploymentReport, NetInventoryReport, Network, SteadyStateReport,
};
pub use topology::{DeploymentVolume, NetEnv, NetworkSpec, NodeSite, Topology};
