//! Replay by convolution against interpolated TVIR taps.
//!
//! A [`ReplayChannel`] walks a waveform through the bank's snapshot
//! timeline: each input segment falling between two snapshots is convolved
//! (overlap-save FFT, plan and scratch reused) with taps linearly
//! interpolated at the segment's midpoint, and the segment outputs
//! overlap-add into the result. A single-snapshot (static) bank collapses
//! to one convolution — which then matches the synthetic
//! `apply_baseband` path to FFT rounding.

use vab_util::complex::C64;
use vab_util::ola::OlaPlan;

/// A stateful replay convolver over one tap matrix (one-way or round-trip).
///
/// Construction allocates everything (FFT plan, interpolation buffer,
/// segment scratch); [`ReplayChannel::apply`] then allocates only its
/// output vector.
#[derive(Debug, Clone)]
pub struct ReplayChannel {
    snaps: Vec<Vec<C64>>,
    /// Snapshot spacing, seconds (zero for a static bank).
    dt: f64,
    fs: f64,
    /// Start offset into the bank timeline, seconds.
    t0: f64,
    taps_len: usize,
    plan: OlaPlan,
    interp: Vec<C64>,
    seg_out: Vec<C64>,
}

impl ReplayChannel {
    /// Builds a replay channel over `snaps` (snapshot-major tap rows,
    /// all the same length) spaced `dt` seconds apart, replaying from
    /// bank time `t0` at sample rate `fs`.
    ///
    /// # Panics
    /// Panics when `snaps` is empty, rows are ragged, or `fs`/`dt`/`t0`
    /// are unusable.
    pub fn new(snaps: &[Vec<C64>], dt: f64, fs: f64, t0: f64) -> Self {
        assert!(!snaps.is_empty(), "replay needs at least one snapshot");
        let taps_len = snaps[0].len();
        assert!(taps_len > 0, "replay snapshots need at least one tap");
        assert!(snaps.iter().all(|s| s.len() == taps_len), "ragged snapshot rows");
        assert!(fs.is_finite() && fs > 0.0, "bad sample rate {fs}");
        assert!(dt.is_finite() && dt >= 0.0, "bad snapshot spacing {dt}");
        assert!(t0.is_finite() && t0 >= 0.0, "bad start time {t0}");
        let plan = OlaPlan::new(&snaps[0]);
        Self {
            snaps: snaps.to_vec(),
            dt,
            fs,
            t0,
            taps_len,
            plan,
            interp: vec![C64::ZERO; taps_len],
            seg_out: Vec::new(),
        }
    }

    /// Tap count per snapshot.
    pub fn taps_len(&self) -> usize {
        self.taps_len
    }

    /// Interpolation interval index for the sample at time `t` (clamped to
    /// the last interval; a static bank is always interval 0).
    fn interval_at(&self, t: f64) -> usize {
        if self.snaps.len() < 2 || self.dt <= 0.0 {
            return 0;
        }
        ((t / self.dt).floor() as usize).min(self.snaps.len() - 2)
    }

    /// Linearly interpolates the taps at bank time `t` into the reusable
    /// buffer and retunes the convolution plan.
    fn tune_to(&mut self, t: f64) {
        if self.snaps.len() < 2 || self.dt <= 0.0 {
            self.plan.set_taps(&self.snaps[0]);
            return;
        }
        let k = self.interval_at(t);
        let alpha = ((t / self.dt) - k as f64).clamp(0.0, 1.0);
        let (a, b) = (&self.snaps[k], &self.snaps[k + 1]);
        for ((o, &x), &y) in self.interp.iter_mut().zip(a).zip(b) {
            *o = x.scale(1.0 - alpha) + y.scale(alpha);
        }
        let interp = std::mem::take(&mut self.interp);
        self.plan.set_taps(&interp);
        self.interp = interp;
    }

    /// Replays `x` through the channel: output length
    /// `x.len() + taps_len − 1`, overlap-added across snapshot segments.
    pub fn apply(&mut self, x: &[C64]) -> Vec<C64> {
        let _t = vab_obs::time_stage("replay.apply");
        if x.is_empty() {
            return Vec::new();
        }
        let out_len = x.len() + self.taps_len - 1;
        let mut y = vec![C64::ZERO; out_len];
        let static_bank = self.snaps.len() < 2 || self.dt <= 0.0;
        let mut start = 0usize;
        while start < x.len() {
            // Maximal run of samples inside one interpolation interval.
            let end = if static_bank {
                x.len()
            } else {
                let k = self.interval_at(self.t0 + start as f64 / self.fs);
                // First sample index that leaves interval k.
                let boundary = ((k + 1) as f64 * self.dt - self.t0) * self.fs;
                (boundary.ceil() as usize).clamp(start + 1, x.len())
            };
            let mid = self.t0 + (start + end) as f64 / 2.0 / self.fs;
            self.tune_to(mid);
            let seg_out = std::mem::take(&mut self.seg_out);
            let mut seg_out = seg_out;
            self.plan.convolve_into(&x[start..end], &mut seg_out);
            for (j, v) in seg_out.iter().enumerate() {
                y[start + j] += *v;
            }
            self.seg_out = seg_out;
            start = end;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::cis(i as f64 * 0.21) * (1.0 + 0.1 * (i as f64 * 0.03).sin())).collect()
    }

    fn direct(x: &[C64], h: &[C64]) -> Vec<C64> {
        let mut y = vec![C64::ZERO; x.len() + h.len() - 1];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &hj) in h.iter().enumerate() {
                y[i + j] += xi * hj;
            }
        }
        y
    }

    #[test]
    fn static_bank_is_plain_convolution() {
        let taps: Vec<C64> = (0..90).map(|i| C64::new((i as f64 * 0.2).sin(), 0.1)).collect();
        let x = tone(400);
        let mut ch = ReplayChannel::new(std::slice::from_ref(&taps), 0.0, 1000.0, 0.0);
        let got = ch.apply(&x);
        let want = direct(&x, &taps);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_is_repeatable() {
        let taps: Vec<C64> = (0..70).map(|i| C64::new(0.0, (i as f64 * 0.3).cos())).collect();
        let snaps = vec![taps.clone(), taps.iter().map(|t| t.scale(0.5)).collect()];
        let x = tone(300);
        let mut ch = ReplayChannel::new(&snaps, 0.1, 1000.0, 0.02);
        let a = ch.apply(&x);
        let b = ch.apply(&x);
        assert_eq!(a, b, "replay must be bit-deterministic call to call");
    }

    #[test]
    fn interpolation_blends_between_snapshots() {
        // Two snapshots: identity tap scaled 1.0 and 3.0. Mid-bank replay
        // must land strictly between.
        let s0 = vec![C64::ONE];
        let s1 = vec![C64::real(3.0)];
        let x = vec![C64::ONE; 100];
        // t0 = 0.05 s into a 0.1 s interval at fs = 1000: alpha ≈ 0.5.
        let mut ch = ReplayChannel::new(&[s0, s1], 0.1, 1000.0, 0.049);
        let y = ch.apply(&x);
        let mid = y[20].re;
        assert!(mid > 1.2 && mid < 2.8, "expected a blended gain, got {mid}");
    }

    #[test]
    fn segments_walk_the_snapshot_timeline() {
        // Three snapshots over 0.2 s; a 0.3 s signal must see a rising
        // gain profile as the taps interpolate 1 → 2 → 4.
        let snaps = vec![vec![C64::ONE], vec![C64::real(2.0)], vec![C64::real(4.0)]];
        let x = vec![C64::ONE; 300];
        let mut ch = ReplayChannel::new(&snaps, 0.1, 1000.0, 0.0);
        let y = ch.apply(&x);
        assert!(y[10].re < y[150].re && y[150].re < y[250].re, "gain must rise along the bank");
    }

    #[test]
    fn empty_input_is_fine() {
        let mut ch = ReplayChannel::new(&[vec![C64::ONE]], 0.0, 1000.0, 0.0);
        assert!(ch.apply(&[]).is_empty());
    }
}
