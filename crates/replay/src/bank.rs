//! TVIR bank generation and its versioned file format.
//!
//! A bank freezes one channel realization (a seeded image-method arrival
//! set) into `n_snapshots` baseband FIR tap vectors, each with the
//! surface-motion rotation evaluated at that snapshot's time — for both
//! the one-way channel and the Van Atta retrodirective round trip (which
//! is a *different* diagonal channel, not the one-way response squared).
//!
//! The file format is versioned JSON (`vab-replay-bank/1`). Numbers render
//! through `vab_util::json`'s canonical shortest-round-trip form, so
//! save → load → save is byte-identical and a loaded bank replays
//! bit-identically to a freshly generated one.

use crate::spec::BankSpec;
use vab_acoustics::channel::{retro_round_trip, ChannelModel, ImpulseResponse};
use vab_util::complex::C64;
use vab_util::json::Json;
use vab_util::rng::seeded;
use vab_util::units::Hertz;

/// Schema identifier embedded in every bank file.
pub const BANK_SCHEMA: &str = "vab-replay-bank/1";

/// A generated bank: the spec plus its snapshot tap matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct TvirBank {
    /// The spec the bank was generated from.
    pub spec: BankSpec,
    /// Direct-path propagation delay, seconds (synchronization lead).
    pub direct_delay_s: f64,
    /// One-way baseband taps, `n_snapshots` rows.
    pub one_way: Vec<Vec<C64>>,
    /// Van Atta round-trip baseband taps, `n_snapshots` rows.
    pub round_trip: Vec<Vec<C64>>,
}

/// Generates a bank from its spec: one seeded channel realization,
/// snapshot times spread evenly over the span, taps sampled with the
/// surface motion frozen at each snapshot.
pub fn generate(spec: &BankSpec) -> Result<TvirBank, String> {
    spec.validate()?;
    let _t = vab_obs::time_stage("replay.bank_generate");
    let carrier = Hertz(spec.carrier_hz);
    let ch = ChannelModel::new(spec.environment(), spec.reader_pos(), spec.node_pos(), carrier);
    let mut rng = seeded(spec.seed);
    let ir = ch.impulse_response(spec.fs, &mut rng);
    if ir.arrivals().is_empty() {
        return Err(format!("no arrivals survive at range {} m", spec.range_m));
    }
    let rt_ir =
        ImpulseResponse::from_arrivals(retro_round_trip(ir.arrivals(), carrier), spec.fs, carrier);
    let dt = spec.snapshot_dt();
    let mut one_way = Vec::with_capacity(spec.n_snapshots);
    let mut round_trip = Vec::with_capacity(spec.n_snapshots);
    for k in 0..spec.n_snapshots {
        let t = k as f64 * dt;
        one_way.push(ir.baseband_taps_at(t));
        round_trip.push(rt_ir.baseband_taps_at(t));
    }
    Ok(TvirBank {
        spec: spec.clone(),
        direct_delay_s: ir.arrivals()[0].delay_s,
        one_way,
        round_trip,
    })
}

fn taps_to_json(rows: &[Vec<C64>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| {
                let mut flat = Vec::with_capacity(row.len() * 2);
                for t in row {
                    flat.push(Json::Num(t.re));
                    flat.push(Json::Num(t.im));
                }
                Json::Arr(flat)
            })
            .collect(),
    )
}

fn taps_from_json(v: &Json, what: &str) -> Result<Vec<Vec<C64>>, String> {
    let rows = v.as_arr().ok_or_else(|| format!("{what} must be an array"))?;
    rows.iter()
        .map(|row| {
            let flat = row.as_arr().ok_or_else(|| format!("{what} row must be an array"))?;
            if !flat.len().is_multiple_of(2) {
                return Err(format!("{what} row has odd length {}", flat.len()));
            }
            flat.chunks_exact(2)
                .map(|p| {
                    let re = p[0].as_f64().ok_or_else(|| format!("bad number in {what}"))?;
                    let im = p[1].as_f64().ok_or_else(|| format!("bad number in {what}"))?;
                    Ok(C64::new(re, im))
                })
                .collect()
        })
        .collect()
}

impl TvirBank {
    /// Renders the versioned bank file (canonical rendering: byte-stable
    /// across save/load cycles).
    pub fn to_json_with_version(&self, engine_version: &str) -> String {
        Json::obj([
            ("schema", Json::Str(BANK_SCHEMA.into())),
            ("engine_version", Json::Str(engine_version.into())),
            (
                "digest",
                Json::Str(format!("{:016x}", self.spec.digest_with_version(engine_version))),
            ),
            ("spec", self.spec.to_json()),
            ("direct_delay_s", Json::Num(self.direct_delay_s)),
            ("one_way", taps_to_json(&self.one_way)),
            ("round_trip", taps_to_json(&self.round_trip)),
        ])
        .render()
    }

    /// [`TvirBank::to_json_with_version`] under [`crate::ENGINE_VERSION`].
    pub fn to_json(&self) -> String {
        self.to_json_with_version(crate::ENGINE_VERSION)
    }

    /// Parses a bank file, checking schema and engine version. A version
    /// mismatch is an error — stale banks must be regenerated, never
    /// silently replayed.
    pub fn parse_with_version(text: &str, engine_version: &str) -> Result<TvirBank, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        match v.str_field("schema") {
            Some(BANK_SCHEMA) => {}
            other => return Err(format!("bad bank schema {other:?}")),
        }
        match v.str_field("engine_version") {
            Some(ev) if ev == engine_version => {}
            other => {
                return Err(format!(
                    "bank engine version {other:?} does not match {engine_version:?}"
                ))
            }
        }
        let spec = BankSpec::from_json(v.get("spec").ok_or("bank file needs spec")?)?;
        let bank = TvirBank {
            spec,
            direct_delay_s: v
                .f64_field("direct_delay_s")
                .ok_or("bank file needs direct_delay_s")?,
            one_way: taps_from_json(v.get("one_way").ok_or("bank file needs one_way")?, "one_way")?,
            round_trip: taps_from_json(
                v.get("round_trip").ok_or("bank file needs round_trip")?,
                "round_trip",
            )?,
        };
        if bank.one_way.len() != bank.spec.n_snapshots
            || bank.round_trip.len() != bank.spec.n_snapshots
        {
            return Err("snapshot count does not match spec".into());
        }
        Ok(bank)
    }

    /// [`TvirBank::parse_with_version`] under [`crate::ENGINE_VERSION`].
    pub fn parse(text: &str) -> Result<TvirBank, String> {
        Self::parse_with_version(text, crate::ENGINE_VERSION)
    }

    /// A replay channel over the one-way taps starting at bank time `t0`.
    pub fn one_way_channel(&self, t0: f64) -> crate::ReplayChannel {
        crate::ReplayChannel::new(&self.one_way, self.spec.snapshot_dt(), self.spec.fs, t0)
    }

    /// A replay channel over the Van Atta round-trip taps at bank time `t0`.
    pub fn round_trip_channel(&self, t0: f64) -> crate::ReplayChannel {
        crate::ReplayChannel::new(&self.round_trip, self.spec.snapshot_dt(), self.spec.fs, t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WaterSpec;

    fn small_spec() -> BankSpec {
        BankSpec {
            water: WaterSpec::River,
            range_m: 60.0,
            carrier_hz: 18_500.0,
            fs: 1600.0,
            n_snapshots: 3,
            span_s: 2.0,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec()).unwrap();
        let b = generate(&small_spec()).unwrap();
        assert_eq!(a, b, "same spec must generate identical banks");
        assert_eq!(a.one_way.len(), 3);
        assert_eq!(a.round_trip.len(), 3);
        assert!(a.direct_delay_s > 0.0);
        // The round trip is twice as long as the one-way response.
        assert!(a.round_trip[0].len() > a.one_way[0].len());
    }

    #[test]
    fn file_round_trip_is_byte_identical() {
        let bank = generate(&small_spec()).unwrap();
        let text = bank.to_json();
        let parsed = TvirBank::parse(&text).unwrap();
        assert_eq!(parsed, bank);
        assert_eq!(parsed.to_json(), text, "save → load → save must be byte-stable");
    }

    #[test]
    fn parse_rejects_wrong_schema_and_version() {
        let bank = generate(&small_spec()).unwrap();
        let text = bank.to_json();
        assert!(TvirBank::parse(&text.replace(BANK_SCHEMA, "other/9")).is_err());
        assert!(TvirBank::parse_with_version(&text, "vab-engine/999").is_err());
        assert!(TvirBank::parse("{").is_err());
        assert!(TvirBank::parse("{\"schema\": \"vab-replay-bank/1\"}").is_err());
    }

    #[test]
    fn ocean_bank_generates_with_surface_motion() {
        let spec = BankSpec {
            water: WaterSpec::Ocean { sea_state: 1 },
            range_m: 80.0,
            fs: 1600.0,
            ..small_spec()
        };
        let bank = generate(&spec).unwrap();
        // Rippled surface: snapshots must actually differ over time.
        assert_ne!(bank.one_way[0], bank.one_way[2], "TVIR should vary across snapshots");
    }

    #[test]
    fn invalid_spec_is_refused() {
        let mut bad = small_spec();
        bad.n_snapshots = 0;
        assert!(generate(&bad).is_err());
    }
}
