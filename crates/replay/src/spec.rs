//! Bank specification and content addressing.
//!
//! A [`BankSpec`] is pure data: everything needed to regenerate a bank,
//! nothing about how it is executed. The canonical JSON form (fixed key
//! order, `vab_util::json` canonical number rendering, seeds as decimal
//! strings) hashed together with the engine version is the bank's content
//! address — the same discipline as the `vab-svc` job model, so identical
//! field conditions always resolve to the same file under `results/banks/`.

use vab_acoustics::environment::{Environment, SeaState};
use vab_acoustics::geometry::Position;
use vab_util::fnv1a64;
use vab_util::json::Json;

/// Water column the bank was recorded in. Mirrors the scenario builders:
/// the river trial deploys reader and node at 2 m depth; the ocean trial
/// at 5 m and 6 m.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaterSpec {
    /// The canonical river trial geometry.
    River,
    /// Ocean at a sea-state index (0 = calm … 4 = moderate).
    Ocean {
        /// Index into `SeaState::all()`.
        sea_state: u8,
    },
}

impl WaterSpec {
    fn to_json(self) -> Json {
        match self {
            WaterSpec::River => Json::obj([("kind", Json::Str("river".into()))]),
            WaterSpec::Ocean { sea_state } => Json::obj([
                ("kind", Json::Str("ocean".into())),
                ("sea_state", Json::Num(sea_state as f64)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        match v.str_field("kind") {
            Some("river") => Ok(WaterSpec::River),
            Some("ocean") => {
                let ss = v.u64_field("sea_state").ok_or("ocean water needs sea_state")?;
                if ss > 4 {
                    return Err(format!("sea_state {ss} out of range 0..=4"));
                }
                Ok(WaterSpec::Ocean { sea_state: ss as u8 })
            }
            other => Err(format!("unknown water kind {other:?}")),
        }
    }
}

/// Everything that determines a TVIR bank's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSpec {
    /// Water column and sea state.
    pub water: WaterSpec,
    /// Reader–node horizontal range, metres.
    pub range_m: f64,
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Baseband sample rate the taps are sampled at, Hz.
    pub fs: f64,
    /// Number of TVIR snapshots across the recording span.
    pub n_snapshots: usize,
    /// Recording span in seconds (snapshot times are spread evenly over
    /// `[0, span_s]`; a single snapshot sits at 0).
    pub span_s: f64,
    /// Master seed for the channel realization (surface-wave phases).
    pub seed: u64,
}

impl BankSpec {
    /// Validates the physical ranges the generator assumes.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.range_m.is_finite() && self.range_m > 0.0) {
            return Err(format!("range_m {} must be positive and finite", self.range_m));
        }
        if !(self.carrier_hz.is_finite() && self.carrier_hz > 0.0) {
            return Err(format!("carrier_hz {} must be positive and finite", self.carrier_hz));
        }
        if !(self.fs.is_finite() && self.fs > 0.0) {
            return Err(format!("fs {} must be positive and finite", self.fs));
        }
        if self.n_snapshots == 0 || self.n_snapshots > 4096 {
            return Err(format!("n_snapshots {} out of range 1..=4096", self.n_snapshots));
        }
        if !(self.span_s.is_finite() && self.span_s >= 0.0) {
            return Err(format!("span_s {} must be non-negative and finite", self.span_s));
        }
        if self.n_snapshots > 1 && self.span_s <= 0.0 {
            return Err("multiple snapshots need a positive span_s".into());
        }
        Ok(())
    }

    /// JSON form with the canonical key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("water", self.water.to_json()),
            ("range_m", Json::Num(self.range_m)),
            ("carrier_hz", Json::Num(self.carrier_hz)),
            ("fs", Json::Num(self.fs)),
            ("n_snapshots", Json::Num(self.n_snapshots as f64)),
            ("span_s", Json::Num(self.span_s)),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }

    /// Parses and validates a spec from its JSON form (either seed
    /// spelling is accepted; canonicalization folds them together).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let water = WaterSpec::from_json(v.get("water").ok_or("bank spec needs water")?)?;
        let seed = match v.get("seed").ok_or("bank spec needs seed")? {
            Json::Str(s) => s.parse().map_err(|_| format!("bad seed string {s:?}"))?,
            other => other.as_u64().ok_or("bad seed")?,
        };
        let spec = BankSpec {
            water,
            range_m: v.f64_field("range_m").ok_or("bank spec needs range_m")?,
            carrier_hz: v.f64_field("carrier_hz").ok_or("bank spec needs carrier_hz")?,
            fs: v.f64_field("fs").ok_or("bank spec needs fs")?,
            n_snapshots: v.u64_field("n_snapshots").ok_or("bank spec needs n_snapshots")? as usize,
            span_s: v.f64_field("span_s").ok_or("bank spec needs span_s")?,
            seed,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Canonical bytes: the fixed-key-order JSON rendering.
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }

    /// Content address: FNV-1a of the canonical bytes, a NUL separator and
    /// the engine version (same recipe as the svc job digest).
    pub fn digest_with_version(&self, engine_version: &str) -> u64 {
        let mut bytes = self.canonical().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(engine_version.as_bytes());
        fnv1a64(&bytes)
    }

    /// Digest under this crate's [`crate::ENGINE_VERSION`].
    pub fn digest(&self) -> u64 {
        self.digest_with_version(crate::ENGINE_VERSION)
    }

    /// Filename-friendly 16-hex-digit bank id.
    pub fn id(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// The acoustic environment this spec names.
    pub fn environment(&self) -> Environment {
        match self.water {
            WaterSpec::River => Environment::river(),
            WaterSpec::Ocean { sea_state } => Environment::ocean(sea_state_from_index(sea_state)),
        }
    }

    /// Reader position under the canonical deployment geometry.
    pub fn reader_pos(&self) -> Position {
        match self.water {
            WaterSpec::River => Position::new(0.0, 0.0, 2.0),
            WaterSpec::Ocean { .. } => Position::new(0.0, 0.0, 5.0),
        }
    }

    /// Node position under the canonical deployment geometry.
    pub fn node_pos(&self) -> Position {
        match self.water {
            WaterSpec::River => Position::new(self.range_m, 0.0, 2.0),
            WaterSpec::Ocean { .. } => Position::new(self.range_m, 0.0, 6.0),
        }
    }

    /// Time step between snapshots (zero for a single-snapshot bank).
    pub fn snapshot_dt(&self) -> f64 {
        if self.n_snapshots > 1 {
            self.span_s / (self.n_snapshots - 1) as f64
        } else {
            0.0
        }
    }
}

fn sea_state_from_index(i: u8) -> SeaState {
    *SeaState::all().get(i as usize).unwrap_or(&SeaState::Calm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BankSpec {
        BankSpec {
            water: WaterSpec::River,
            range_m: 320.0,
            carrier_hz: 18_500.0,
            fs: 1600.0,
            n_snapshots: 4,
            span_s: 8.0,
            seed: 2023,
        }
    }

    #[test]
    fn canonical_round_trips() {
        let s = spec();
        let parsed = BankSpec::from_json(&Json::parse(&s.canonical()).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.canonical(), s.canonical());
    }

    #[test]
    fn digest_is_stable_and_separates_fields() {
        let s = spec();
        assert_eq!(s.digest(), spec().digest(), "same spec, same digest, every time");
        let mut other = spec();
        other.seed = 2024;
        assert_ne!(s.digest(), other.digest());
        let mut far = spec();
        far.range_m = 321.0;
        assert_ne!(s.digest(), far.digest());
        assert_ne!(s.digest_with_version("vab-engine/1"), s.digest_with_version("vab-engine/2"));
        assert_eq!(s.id().len(), 16);
    }

    #[test]
    fn numeric_seed_spelling_folds_to_the_same_address() {
        let s = spec();
        let mut j = s.to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "seed" {
                    *v = Json::Num(2023.0);
                }
            }
        }
        let parsed = BankSpec::from_json(&j).unwrap();
        assert_eq!(parsed.digest(), s.digest());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut bad = spec();
        bad.range_m = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.n_snapshots = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.n_snapshots = 3;
        bad.span_s = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.fs = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ocean_spec_names_the_canonical_geometry() {
        let s = BankSpec { water: WaterSpec::Ocean { sea_state: 1 }, ..spec() };
        assert_eq!(s.reader_pos().z, 5.0);
        assert_eq!(s.node_pos().z, 6.0);
        assert_eq!(s.node_pos().x, s.range_m);
    }
}
