//! Content-addressed bank persistence under `results/banks/`.
//!
//! Mirrors the `vab-svc` persistent result cache's crash discipline:
//! atomic temp-file + rename writes, quarantine (never delete) on
//! corruption, engine-version check on read. A bank's filename is its
//! content address, so a digest is either present and replayable or
//! absent and regenerated — there is no "stale" state.

use crate::bank::{generate, TvirBank};
use crate::spec::BankSpec;
use std::path::{Path, PathBuf};

/// Default bank directory, next to the result CSVs and the svc cache.
pub const DEFAULT_BANK_DIR: &str = "results/banks";

/// A directory of content-addressed bank files.
#[derive(Debug, Clone)]
pub struct BankStore {
    dir: PathBuf,
    engine_version: String,
}

impl BankStore {
    /// Opens (lazily — the directory is created on first save) a store at
    /// `dir` under the given engine version.
    pub fn new(dir: impl Into<PathBuf>, engine_version: &str) -> Self {
        Self { dir: dir.into(), engine_version: engine_version.to_string() }
    }

    /// The store at [`DEFAULT_BANK_DIR`] under [`crate::ENGINE_VERSION`].
    pub fn default_store() -> Self {
        Self::new(DEFAULT_BANK_DIR, crate::ENGINE_VERSION)
    }

    /// Directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content-addressed id of `spec` under this store's engine version.
    pub fn id_for(&self, spec: &BankSpec) -> String {
        format!("{:016x}", spec.digest_with_version(&self.engine_version))
    }

    /// File path a spec's bank lives at.
    pub fn path_for(&self, spec: &BankSpec) -> PathBuf {
        self.dir.join(format!("{}.json", self.id_for(spec)))
    }

    /// Loads the bank for `spec` if present and valid. A corrupt or
    /// version-mismatched file is quarantined (renamed `*.corrupt`) and
    /// reported as a miss, so the caller regenerates.
    pub fn load(&self, spec: &BankSpec) -> Option<TvirBank> {
        let path = self.path_for(spec);
        let text = std::fs::read_to_string(&path).ok()?;
        match TvirBank::parse_with_version(&text, &self.engine_version) {
            Ok(bank) if bank.spec == *spec => Some(bank),
            _ => {
                let quarantine = path.with_extension("json.corrupt");
                let _ = std::fs::rename(&path, &quarantine);
                None
            }
        }
    }

    /// Persists `bank` atomically (temp file + rename), returning its
    /// final path.
    pub fn save(&self, bank: &TvirBank) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(&bank.spec);
        let tmp = self.dir.join(format!(".tmp-{}", self.id_for(&bank.spec)));
        std::fs::write(&tmp, bank.to_json_with_version(&self.engine_version))?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Fetches the bank for `spec`, generating and persisting it on a
    /// miss. Returns `(bank, was_cached)`.
    pub fn load_or_generate(&self, spec: &BankSpec) -> Result<(TvirBank, bool), String> {
        if let Some(bank) = self.load(spec) {
            return Ok((bank, true));
        }
        let bank = generate(spec)?;
        self.save(&bank).map_err(|e| format!("cannot persist bank: {e}"))?;
        Ok((bank, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WaterSpec;

    fn spec() -> BankSpec {
        BankSpec {
            water: WaterSpec::River,
            range_m: 45.0,
            carrier_hz: 18_500.0,
            fs: 1600.0,
            n_snapshots: 2,
            span_s: 1.0,
            seed: 99,
        }
    }

    fn temp_store(tag: &str) -> BankStore {
        let dir = std::env::temp_dir().join(format!("vab_banks_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BankStore::new(dir, crate::ENGINE_VERSION)
    }

    #[test]
    fn miss_generates_then_hit_serves_identical_bank() {
        let store = temp_store("roundtrip");
        let (built, cached) = store.load_or_generate(&spec()).unwrap();
        assert!(!cached, "first fetch must generate");
        assert!(store.path_for(&spec()).is_file());
        let (served, cached) = store.load_or_generate(&spec()).unwrap();
        assert!(cached, "second fetch must come from disk");
        assert_eq!(served, built, "disk round trip must be exact");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_is_quarantined_and_regenerated() {
        let store = temp_store("corrupt");
        let (_, _) = store.load_or_generate(&spec()).unwrap();
        std::fs::write(store.path_for(&spec()), "{garbage").unwrap();
        assert!(store.load(&spec()).is_none(), "corrupt bank must read as a miss");
        let quarantined = store.path_for(&spec()).with_extension("json.corrupt");
        assert!(quarantined.is_file(), "corrupt bank must be kept for forensics");
        let (_, cached) = store.load_or_generate(&spec()).unwrap();
        assert!(!cached);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn engine_version_mismatch_is_a_miss() {
        let store = temp_store("version");
        store.load_or_generate(&spec()).unwrap();
        let old = BankStore::new(store.dir().to_path_buf(), "vab-engine/0");
        // Different engine version → different content address → miss.
        assert!(old.load(&spec()).is_none());
        assert_ne!(old.id_for(&spec()), store.id_for(&spec()));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
