//! # vab-replay — content-addressed channel-replay substrate
//!
//! Every sample-level experiment used to re-derive a synthetic channel
//! from scratch on every trial. This crate records the channel **once** —
//! as a bank of time-varying impulse-response (TVIR) snapshots sampled
//! from the image-method + surface-motion models — and replays it by
//! convolution, following the `BasebandReplayChannel` shape from the
//! UnderwaterAcoustics.jl ecosystem:
//!
//! * [`spec::BankSpec`] names the field conditions (water, range, carrier,
//!   sample rate, snapshot schedule, seed). Its canonical JSON hashed with
//!   the engine version ([`BankSpec::digest_with_version`]) is the bank's
//!   content address, exactly like the `vab-svc` result cache.
//! * [`bank::generate`] realizes the channel and freezes its surface-motion
//!   rotation at each snapshot time, producing baseband FIR tap vectors for
//!   both the one-way channel and the Van Atta retrodirective round trip.
//! * [`store::BankStore`] persists banks under `results/banks/<digest>.json`
//!   (atomic write, quarantine on corruption) so a digest is fetched, never
//!   regenerated.
//! * [`channel::ReplayChannel`] convolves waveforms against taps linearly
//!   interpolated between snapshots, on the overlap-save FFT engine
//!   ([`vab_util::ola`]) with plan and scratch reuse.
//!
//! Replay is bit-deterministic: the bank file round-trips `f64`s exactly,
//! and the convolution path is identical whether the bank was just built
//! or fetched from disk — so a figure run on a replayed bank reproduces
//! bit-identical CSVs across worker counts and daemon restarts.

#![warn(missing_docs)]

pub mod bank;
pub mod channel;
pub mod spec;
pub mod store;

pub use bank::{generate, TvirBank, BANK_SCHEMA};
pub use channel::ReplayChannel;
pub use spec::{BankSpec, WaterSpec};
pub use store::{BankStore, DEFAULT_BANK_DIR};

/// Engine version folded into every bank digest. Kept textually identical
/// to `vab_svc::ENGINE_VERSION` so a bank built through the service layer
/// and one built locally share a content address; bump both together when
/// the channel physics changes.
pub const ENGINE_VERSION: &str = "vab-engine/1";
