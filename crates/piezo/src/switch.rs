//! The modulation switch and its non-idealities.
//!
//! A real node toggles its load with an analog switch / FET whose on
//! resistance, off capacitance, finite transition time and gate energy all
//! eat into the ideal modulation depth and the power budget. This module
//! quantifies those effects so the ablation experiments can sweep them.

use crate::bvd::Bvd;
use crate::reflection::{gamma, Load};
use vab_util::complex::C64;
use vab_util::units::Hertz;
use vab_util::TAU;

/// An analog switch model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Switch {
    /// On-state series resistance, ohms.
    pub r_on: f64,
    /// Off-state parallel capacitance, farads.
    pub c_off: f64,
    /// Gate charge energy per transition, joules.
    pub energy_per_toggle: f64,
    /// 10–90 % transition time, seconds.
    pub transition_time: f64,
}

impl Switch {
    /// A typical ultra-low-power analog switch (e.g. the class of parts used
    /// in backscatter nodes): 2 Ω on, 15 pF off, ~50 pJ per toggle, 50 ns
    /// transitions.
    pub fn typical() -> Self {
        Self { r_on: 2.0, c_off: 15e-12, energy_per_toggle: 50e-12, transition_time: 50e-9 }
    }

    /// An idealized switch for ablation comparisons.
    pub fn ideal() -> Self {
        Self { r_on: 0.0, c_off: 0.0, energy_per_toggle: 0.0, transition_time: 0.0 }
    }

    /// Impedance presented by an SPDT arrangement with `selected` connected
    /// through the on-resistance and `deselected` hanging in parallel behind
    /// the off-capacitance of its (open) switch.
    pub fn presented_impedance(
        &self,
        transducer: &Bvd,
        selected: Load,
        deselected: Load,
        f: Hertz,
    ) -> C64 {
        let z_sel = C64::real(self.r_on) + selected.impedance(transducer, f);
        if self.c_off <= 0.0 {
            return z_sel; // ideal open switch fully isolates the other branch
        }
        let w = TAU * f.value();
        let z_coff = C64::new(0.0, -1.0 / (w * self.c_off));
        let z_desel = z_coff + deselected.impedance(transducer, f);
        (z_sel * z_desel) / (z_sel + z_desel)
    }

    /// Realized modulation depth when an SPDT toggles the transducer between
    /// the `reflect` and `absorb` branches through this switch.
    pub fn realized_modulation_depth(
        &self,
        transducer: &Bvd,
        reflect: Load,
        absorb: Load,
        f: Hertz,
    ) -> f64 {
        let g_r = gamma(
            transducer,
            Load::Custom(self.presented_impedance(transducer, reflect, absorb, f)),
            f,
        );
        let g_a = gamma(
            transducer,
            Load::Custom(self.presented_impedance(transducer, absorb, reflect, f)),
            f,
        );
        (g_r - g_a).abs() / 2.0
    }

    /// Average switching power at a toggle rate (W) — every bit boundary
    /// costs `energy_per_toggle`.
    pub fn switching_power(&self, toggle_rate_hz: f64) -> f64 {
        self.energy_per_toggle * toggle_rate_hz.max(0.0)
    }

    /// Fraction of a bit period lost to transitions at `bit_rate`.
    pub fn transition_overhead(&self, bit_rate: f64) -> f64 {
        (self.transition_time * bit_rate).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reflection::ModulationStates;
    use vab_util::approx_eq;

    fn t() -> Bvd {
        Bvd::vab_default()
    }

    #[test]
    fn ideal_switch_matches_pure_states() {
        let tr = t();
        let f0 = tr.series_resonance();
        let states = ModulationStates::vab(&tr, f0);
        let pure = states.modulation_depth(&tr, f0);
        let with_ideal =
            Switch::ideal().realized_modulation_depth(&tr, states.reflect, states.absorb, f0);
        assert!(approx_eq(pure, with_ideal, 1e-6), "{pure} vs {with_ideal}");
    }

    #[test]
    fn real_switch_degrades_depth_only_slightly() {
        let tr = t();
        let f0 = tr.series_resonance();
        let states = ModulationStates::vab(&tr, f0);
        let pure = states.modulation_depth(&tr, f0);
        let real =
            Switch::typical().realized_modulation_depth(&tr, states.reflect, states.absorb, f0);
        assert!(real > 0.7 * pure, "typical switch should keep most depth: {real} vs {pure}");
    }

    #[test]
    fn huge_off_capacitance_ruins_the_open_state() {
        let tr = t();
        let f0 = tr.series_resonance();
        let bad = Switch { c_off: 100e-9, ..Switch::typical() };
        let states = ModulationStates::vab(&tr, f0);
        let depth = bad.realized_modulation_depth(&tr, states.reflect, states.absorb, f0);
        let good =
            Switch::typical().realized_modulation_depth(&tr, states.reflect, states.absorb, f0);
        assert!(depth < good, "100 nF C_off should hurt: {depth} vs {good}");
    }

    #[test]
    fn switching_power_scales_with_rate() {
        let s = Switch::typical();
        // 1 kbps OOK toggles at most once per bit.
        let p = s.switching_power(1000.0);
        assert!(approx_eq(p, 50e-9, 1e-12), "P = {p} W");
        assert_eq!(s.switching_power(0.0), 0.0);
    }

    #[test]
    fn transition_overhead_negligible_at_backscatter_rates() {
        let s = Switch::typical();
        assert!(s.transition_overhead(1000.0) < 1e-3);
        // But a hypothetical MHz rate would hurt.
        assert!(s.transition_overhead(2e6) > 0.05);
    }
}
