//! L-section matching networks.
//!
//! The harvesting/absorb state wants a conjugate match between the piezo and
//! the (roughly resistive) rectifier input. A two-element L-section is what
//! an actual node can afford; this module designs one and evaluates how much
//! of the ideal modulation depth and harvested power it recovers across
//! frequency — feeding the "matching ablation" experiment.

use crate::bvd::Bvd;
use crate::reflection::{gamma, Load};
use vab_util::complex::C64;
use vab_util::units::Hertz;
use vab_util::TAU;

/// Which side of the L carries the shunt element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Series element at the source, shunt element across the load:
    /// `Z_in = jX + (R_L ∥ jB⁻¹)`. Used when stepping resistance **down**.
    ShuntAtLoad,
    /// Series element at the load, shunt element at the source:
    /// `Y_in = jB + 1/(R_L + jX)`. Used when stepping resistance **up**.
    ShuntAtSource,
}

/// A two-element matching network designed at `f0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LSection {
    /// Series reactance at the design frequency (ohms, sign included).
    pub series_reactance: f64,
    /// Shunt susceptance at the design frequency (siemens, sign included).
    pub shunt_susceptance: f64,
    /// Design frequency.
    pub f0: Hertz,
    /// Element arrangement.
    pub topology: Topology,
}

impl LSection {
    /// Designs an L-section that makes a resistive load `r_load` look like
    /// the conjugate of the transducer impedance at `f0` (perfect power
    /// transfer into the rectifier).
    ///
    /// Returns `None` only for non-positive inputs; one of the two L
    /// topologies can always match two impedances with positive real parts.
    pub fn design(transducer: &Bvd, r_load: f64, f0: Hertz) -> Option<LSection> {
        let target = transducer.impedance(f0).conj(); // Z_in goal
        let rt = target.re;
        let xt = target.im;
        if rt <= 0.0 || r_load <= 0.0 {
            return None;
        }
        if r_load >= rt {
            // Step down: shunt across the load, series toward the source.
            let q = (r_load / rt - 1.0).sqrt();
            let b = q / r_load;
            let z_par = (C64::real(r_load).inv() + C64::new(0.0, b)).inv();
            let x_series = xt - z_par.im;
            Some(LSection {
                series_reactance: x_series,
                shunt_susceptance: b,
                f0,
                topology: Topology::ShuntAtLoad,
            })
        } else {
            // Step up: series at the load, shunt at the source.
            // Need Re(1/(R_L + jX)) = Re(1/Z_target) = G_t.
            let g_t = rt / (rt * rt + xt * xt);
            let x2 = r_load / g_t - r_load * r_load;
            if x2 < 0.0 {
                return None; // cannot happen for r_load < rt, kept as a guard
            }
            let x1 = x2.sqrt();
            let y1 = C64::new(r_load, x1).inv();
            let b_target = -xt / (rt * rt + xt * xt); // Im(1/Z_target)
            let b = b_target - y1.im;
            Some(LSection {
                series_reactance: x1,
                shunt_susceptance: b,
                f0,
                topology: Topology::ShuntAtSource,
            })
        }
    }

    /// Input impedance seen from the transducer when the network terminates
    /// in resistive `r_load`, evaluated at frequency `f` (ideal L/C elements
    /// scale their reactance away from `f0`).
    pub fn input_impedance(&self, r_load: f64, f: Hertz) -> C64 {
        let ratio = f.value() / self.f0.value();
        // Positive reactance = inductor (∝ f); negative = capacitor (∝ 1/f).
        let x_ser = if self.series_reactance >= 0.0 {
            self.series_reactance * ratio
        } else {
            self.series_reactance / ratio
        };
        // Positive susceptance = capacitor (∝ f); negative = inductor (∝ 1/f).
        let b_sh = if self.shunt_susceptance >= 0.0 {
            self.shunt_susceptance * ratio
        } else {
            self.shunt_susceptance / ratio
        };
        match self.topology {
            Topology::ShuntAtLoad => {
                let z_par = (C64::real(r_load).inv() + C64::new(0.0, b_sh)).inv();
                z_par + C64::new(0.0, x_ser)
            }
            Topology::ShuntAtSource => {
                let z_ser = C64::new(r_load, x_ser);
                (z_ser.inv() + C64::new(0.0, b_sh)).inv()
            }
        }
    }

    /// The [`Load`] this network + resistor presents at frequency `f`.
    pub fn as_load(&self, r_load: f64, f: Hertz) -> Load {
        Load::Custom(self.input_impedance(r_load, f))
    }

    /// Reflection coefficient achieved at `f` with this network in place.
    pub fn achieved_gamma(&self, transducer: &Bvd, r_load: f64, f: Hertz) -> C64 {
        gamma(transducer, self.as_load(r_load, f), f)
    }

    /// Physical element values at the design frequency:
    /// `(series_element, shunt_element)`.
    pub fn element_values(&self) -> (ElementValue, ElementValue) {
        let w = TAU * self.f0.value();
        let series = if self.series_reactance >= 0.0 {
            ElementValue::Inductor(self.series_reactance / w)
        } else {
            ElementValue::Capacitor(-1.0 / (w * self.series_reactance))
        };
        let shunt = if self.shunt_susceptance >= 0.0 {
            ElementValue::Capacitor(self.shunt_susceptance / w)
        } else {
            ElementValue::Inductor(-1.0 / (w * self.shunt_susceptance))
        };
        (series, shunt)
    }
}

/// A concrete passive element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElementValue {
    /// Henries.
    Inductor(f64),
    /// Farads.
    Capacitor(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Bvd {
        Bvd::vab_default()
    }

    #[test]
    fn design_achieves_match_at_f0_step_down() {
        let tr = t();
        let f0 = tr.series_resonance();
        // Transducer Re(Z) at resonance is ~1 kΩ; these step down.
        for r_load in [2000.0, 10_000.0, 100_000.0] {
            let net = LSection::design(&tr, r_load, f0)
                .unwrap_or_else(|| panic!("design failed for {r_load} Ω"));
            assert_eq!(net.topology, Topology::ShuntAtLoad);
            let g = net.achieved_gamma(&tr, r_load, f0).abs();
            assert!(g < 1e-6, "|Γ| = {g} for r_load = {r_load}");
        }
    }

    #[test]
    fn design_achieves_match_at_f0_step_up() {
        let tr = t();
        let f0 = tr.series_resonance();
        for r_load in [10.0, 50.0, 200.0] {
            let net = LSection::design(&tr, r_load, f0)
                .unwrap_or_else(|| panic!("design failed for {r_load} Ω"));
            let g = net.achieved_gamma(&tr, r_load, f0).abs();
            assert!(g < 1e-6, "|Γ| = {g} for r_load = {r_load} ({:?})", net.topology);
        }
    }

    #[test]
    fn match_degrades_off_frequency() {
        let tr = t();
        let f0 = tr.series_resonance();
        let net = LSection::design(&tr, 1000.0, f0).expect("design");
        let at = net.achieved_gamma(&tr, 1000.0, f0).abs();
        let off = net.achieved_gamma(&tr, 1000.0, Hertz(f0.value() * 1.15)).abs();
        assert!(off > at + 0.1, "mismatch should grow off-frequency: {at} → {off}");
    }

    #[test]
    fn input_impedance_equals_conjugate_at_f0() {
        let tr = t();
        let f0 = tr.series_resonance();
        for r_load in [100.0, 5000.0] {
            let net = LSection::design(&tr, r_load, f0).expect("design");
            let zin = net.input_impedance(r_load, f0);
            let want = tr.impedance(f0).conj();
            assert!((zin - want).abs() < 1e-6 * want.abs().max(1.0), "{zin} vs {want}");
        }
    }

    #[test]
    fn matched_load_variant_tracks_the_network() {
        use crate::reflection::{gamma, Load};
        let tr = t();
        let f0 = tr.series_resonance();
        let net = LSection::design(&tr, 1000.0, f0).expect("design");
        let load = Load::Matched { network: net, r_load: 1000.0 };
        // Perfect at the design frequency…
        assert!(gamma(&tr, load, f0).abs() < 1e-6);
        // …and degrading off-frequency exactly like the raw network.
        let f_off = Hertz(f0.value() * 1.1);
        let via_load = gamma(&tr, load, f_off).abs();
        let via_net = net.achieved_gamma(&tr, 1000.0, f_off).abs();
        assert!((via_load - via_net).abs() < 1e-12);
        assert!(via_load > 0.05, "off-frequency mismatch should be visible");
    }

    #[test]
    fn element_values_are_buildable() {
        let tr = t();
        let f0 = tr.series_resonance();
        for r_load in [100.0, 1000.0, 10_000.0] {
            let net = LSection::design(&tr, r_load, f0).expect("design");
            let (series, shunt) = net.element_values();
            // Components should be in a realistic nH–H / pF–µF range.
            for e in [series, shunt] {
                match e {
                    ElementValue::Inductor(l) => assert!(l > 1e-9 && l < 10.0, "L = {l} H"),
                    ElementValue::Capacitor(c) => assert!(c > 1e-13 && c < 1e-3, "C = {c} F"),
                }
            }
        }
    }
}
