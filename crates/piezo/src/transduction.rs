//! Electro-acoustic transduction: how volts become micropascals and back.
//!
//! The reproduction models a transducer's transmit voltage response (TVR,
//! dB re 1 µPa·m/V) and open-circuit receive sensitivity (OCV/RVS,
//! dB re 1 V/µPa) as resonance-shaped curves derived from the BVD model:
//! peak values are taken from typical potted-PZT cylinder datasheets and the
//! frequency shape follows the motional branch's Lorentzian response.

use crate::bvd::Bvd;
use vab_util::units::{Db, Hertz};

/// A complete transducer: equivalent circuit + transduction sensitivities.
#[derive(Debug, Clone, Copy)]
pub struct Transducer {
    /// Electrical equivalent circuit.
    pub bvd: Bvd,
    /// TVR at resonance, dB re 1 µPa·m/V.
    pub tvr_peak_db: f64,
    /// Receive sensitivity at resonance, dB re 1 V/µPa.
    pub rvs_peak_db: f64,
    /// Electro-acoustic efficiency at resonance (0..1) — fraction of
    /// electrical power radiated as sound.
    pub efficiency: f64,
}

impl Transducer {
    /// The transducer used across the reproduction. Peak numbers are
    /// representative of the small PZT cylinders used by underwater
    /// backscatter prototypes: TVR ≈ 140 dB re µPa·m/V, RVS ≈ −193 dB re
    /// V/µPa, efficiency ≈ 0.5.
    pub fn vab_default() -> Self {
        Self { bvd: Bvd::vab_default(), tvr_peak_db: 140.0, rvs_peak_db: -193.0, efficiency: 0.5 }
    }

    /// Lorentzian resonance shaping (power units) shared by TVR and RVS.
    fn resonance_shape(&self, f: Hertz) -> f64 {
        let f0 = self.bvd.series_resonance().value();
        let q = self.bvd.q_factor();
        let x = f.value() / f0 - f0 / f.value().max(1.0);
        1.0 / (1.0 + (q * x).powi(2))
    }

    /// Transmit voltage response at `f` (dB re 1 µPa·m/V).
    pub fn tvr(&self, f: Hertz) -> Db {
        Db(self.tvr_peak_db + 10.0 * self.resonance_shape(f).log10())
    }

    /// Receive voltage sensitivity at `f` (dB re 1 V/µPa).
    pub fn rvs(&self, f: Hertz) -> Db {
        Db(self.rvs_peak_db + 10.0 * self.resonance_shape(f).log10())
    }

    /// Source level for a drive voltage (dB re 1 µPa @ 1 m):
    /// `SL = TVR + 20·log10(V)`.
    pub fn source_level(&self, f: Hertz, volts_rms: f64) -> Db {
        assert!(volts_rms > 0.0);
        Db(self.tvr(f).value() + 20.0 * volts_rms.log10())
    }

    /// Open-circuit voltage produced by an incident pressure level
    /// (dB re 1 µPa → volts RMS).
    pub fn received_voltage(&self, f: Hertz, level_db_upa: Db) -> f64 {
        10f64.powf((level_db_upa.value() + self.rvs(f).value()) / 20.0)
    }

    /// Electrical power available to a conjugate-matched load from an
    /// incident pressure level, watts.
    ///
    /// Aperture-based: acoustic intensity `I = p²/(ρc)` collected over the
    /// effective aperture `A_e = D·λ²/4π` (directivity `D ≈ 2` for a small
    /// cylinder near a baffle), scaled by the electro-acoustic efficiency.
    /// This keeps harvesting consistent with the scattering physics: a
    /// transducer can only interact with about a wavelength-squared of the
    /// incident field.
    pub fn available_power(&self, f: Hertz, level_db_upa: Db) -> f64 {
        const RHO_C: f64 = 1.5e6; // water characteristic impedance, Pa·s/m
        const DIRECTIVITY: f64 = 2.0;
        let p_rms_pa = 10f64.powf(level_db_upa.value() / 20.0) * 1e-6; // µPa → Pa
        let intensity = p_rms_pa * p_rms_pa / RHO_C;
        let lambda = 1500.0 / f.value();
        let aperture = DIRECTIVITY * lambda * lambda / (4.0 * std::f64::consts::PI);
        self.efficiency * intensity * aperture * self.resonance_shape(f)
    }

    /// −3 dB bandwidth of the resonance, Hz.
    pub fn bandwidth(&self) -> Hertz {
        let f0 = self.bvd.series_resonance().value();
        Hertz(f0 / self.bvd.q_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    fn t() -> Transducer {
        Transducer::vab_default()
    }

    #[test]
    fn tvr_peaks_at_resonance() {
        let tr = t();
        let f0 = tr.bvd.series_resonance();
        assert!(approx_eq(tr.tvr(f0).value(), tr.tvr_peak_db, 1e-6));
        assert!(tr.tvr(Hertz(f0.value() * 1.2)).value() < tr.tvr_peak_db - 3.0);
    }

    #[test]
    fn half_power_at_band_edge() {
        let tr = t();
        let f0 = tr.bvd.series_resonance().value();
        let bw = tr.bandwidth().value();
        let edge = tr.tvr(Hertz(f0 + bw / 2.0)).value();
        // Lorentzian −3 dB point (approximately, thanks to the symmetric x).
        assert!(approx_eq(tr.tvr_peak_db - edge, 3.0, 0.15), "edge drop {}", tr.tvr_peak_db - edge);
    }

    #[test]
    fn source_level_scales_with_voltage() {
        let tr = t();
        let f0 = tr.bvd.series_resonance();
        let sl1 = tr.source_level(f0, 1.0).value();
        let sl10 = tr.source_level(f0, 10.0).value();
        assert!(approx_eq(sl10 - sl1, 20.0, 1e-9));
        assert!(approx_eq(sl1, 140.0, 1e-9));
    }

    #[test]
    fn projector_reaches_practical_source_levels() {
        // ~180 dB re µPa @ 1 m needs 100 V drive — realistic for a projector.
        let tr = t();
        let sl = tr.source_level(tr.bvd.series_resonance(), 100.0).value();
        assert!(approx_eq(sl, 180.0, 1e-9));
    }

    #[test]
    fn received_voltage_plausible() {
        // 120 dB re µPa arriving: V = 10^((120−193)/20) ≈ 0.22 mV.
        let tr = t();
        let v = tr.received_voltage(tr.bvd.series_resonance(), Db(120.0));
        assert!(approx_eq(v, 10f64.powf(-73.0 / 20.0), 1e-9));
        assert!(v > 1e-4 && v < 1e-3);
    }

    #[test]
    fn available_power_scales_with_level() {
        let tr = t();
        let f0 = tr.bvd.series_resonance();
        let p100 = tr.available_power(f0, Db(100.0));
        let p120 = tr.available_power(f0, Db(120.0));
        // +20 dB pressure → 100× power.
        assert!(approx_eq(p120 / p100, 100.0, 1e-6));
    }

    #[test]
    fn harvesting_magnitude_sanity() {
        // At 160 dB re µPa incident (≈1 Pa, near-field of a strong
        // projector) the µW regime is reachable; at 140 dB it is not.
        let tr = t();
        let f0 = tr.bvd.series_resonance();
        let near = tr.available_power(f0, Db(160.0));
        assert!(near > 1e-6 && near < 1e-5, "P(160 dB) = {near} W (expect a few µW)");
        let far = tr.available_power(f0, Db(140.0));
        assert!(far > 1e-8 && far < 1e-7, "P(140 dB) = {far} W (expect tens of nW)");
    }
}
