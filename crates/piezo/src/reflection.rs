//! Load-dependent acoustic reflection — the heart of backscatter.
//!
//! A transducer terminated in electrical load `Z_L` re-radiates (reflects)
//! a fraction of the incident acoustic wave given by the *power-wave*
//! reflection coefficient (Kurokawa):
//!
//! ```text
//! Γ(Z_L) = (Z_L − Z_t*) / (Z_L + Z_t)
//! ```
//!
//! where `Z_t` is the transducer's electrical impedance (BVD model). A node
//! signals by toggling between two loads; the backscattered *signal*
//! amplitude is proportional to the modulation depth `|Γ₁ − Γ₂| / 2`.
//!
//! The electro-mechanical subtlety the paper exploits: underwater piezos
//! have strongly reactive `Z_t`, so open/short switching — which maximizes
//! |ΔΓ| for a resistive RF antenna — is far from optimal, and a matching
//! network that rotates the two states apart recovers most of the lost
//! modulation depth.

use crate::bvd::Bvd;
use vab_util::complex::C64;
use vab_util::units::Hertz;
use vab_util::TAU;

/// An electrical termination presented to the transducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Load {
    /// Open circuit (Z → ∞).
    Open,
    /// Short circuit (Z = 0).
    Short,
    /// Pure resistance, ohms.
    Resistor(f64),
    /// Series R–L, ohms and henries.
    SeriesRl(f64, f64),
    /// Series R–C, ohms and farads.
    SeriesRc(f64, f64),
    /// Conjugate match to the transducer at the evaluation frequency
    /// (the maximally *absorptive* state — all power to the harvester).
    ConjugateMatch,
    /// A physical L-section matching network terminated in a resistor —
    /// unlike [`Load::ConjugateMatch`] this is a *fixed* circuit whose match
    /// degrades off its design frequency, like real hardware.
    Matched {
        /// The designed network.
        network: crate::matching::LSection,
        /// Terminating (rectifier input) resistance, ohms.
        r_load: f64,
    },
    /// Arbitrary fixed impedance.
    Custom(C64),
}

impl Load {
    /// Impedance of this load at frequency `f`, given the transducer it
    /// terminates (needed for [`Load::ConjugateMatch`]).
    pub fn impedance(&self, transducer: &Bvd, f: Hertz) -> C64 {
        let w = TAU * f.value();
        match *self {
            Load::Open => C64::new(1e12, 0.0),
            Load::Short => C64::ZERO,
            Load::Resistor(r) => C64::real(r),
            Load::SeriesRl(r, l) => C64::new(r, w * l),
            Load::SeriesRc(r, c) => C64::new(r, -1.0 / (w * c)),
            Load::ConjugateMatch => transducer.impedance(f).conj(),
            Load::Matched { network, r_load } => network.input_impedance(r_load, f),
            Load::Custom(z) => z,
        }
    }
}

/// Power-wave reflection coefficient of `load` on `transducer` at `f`.
pub fn gamma(transducer: &Bvd, load: Load, f: Hertz) -> C64 {
    let zt = transducer.impedance(f);
    let zl = load.impedance(transducer, f);
    (zl - zt.conj()) / (zl + zt)
}

/// Fraction of incident acoustic power absorbed into the electrical load
/// (available for harvesting): `1 − |Γ|²`.
pub fn absorbed_fraction(transducer: &Bvd, load: Load, f: Hertz) -> f64 {
    (1.0 - gamma(transducer, load, f).norm_sq()).clamp(0.0, 1.0)
}

/// Inverse of [`gamma`]: the load impedance that realizes a desired
/// reflection coefficient `g` on `transducer` at `f`:
/// `Z_L = (Z_t* + g·Z_t) / (1 − g)`.
///
/// Any `|g| < 1` maps to a passive load (positive real part); `|g| = 1`
/// maps to a pure reactance only for the phases a reactance can reach.
pub fn gamma_to_load(transducer: &Bvd, g: C64, f: Hertz) -> C64 {
    let zt = transducer.impedance(f);
    (zt.conj() + g * zt) / (C64::ONE - g)
}

/// Finds the purely reactive load whose reflection coefficient at `f` has
/// the **largest magnitude with a phase we can pair against** — i.e. sweeps
/// X over a dense log grid of both signs (plus open/short) and returns the
/// pair of reactances maximizing |Γ₁ − Γ₂|.
pub fn best_reactive_pair(transducer: &Bvd, f: Hertz) -> (C64, C64, f64) {
    let mut candidates: Vec<C64> = Vec::with_capacity(130);
    candidates.push(C64::new(1e12, 0.0)); // open
    candidates.push(C64::ZERO); // short
    let mut x = 1.0;
    while x < 1e7 {
        candidates.push(C64::new(0.0, x));
        candidates.push(C64::new(0.0, -x));
        x *= 1.3;
    }
    let gammas: Vec<C64> =
        candidates.iter().map(|&z| gamma(transducer, Load::Custom(z), f)).collect();
    let mut best = (candidates[0], candidates[1], -1.0);
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let d = (gammas[i] - gammas[j]).abs() / 2.0;
            if d > best.2 {
                best = (candidates[i], candidates[j], d);
            }
        }
    }
    best
}

/// A pair of load states used for on–off backscatter modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulationStates {
    /// Load in the "reflect" state.
    pub reflect: Load,
    /// Load in the "absorb" state (doubles as the harvesting state).
    pub absorb: Load,
}

impl ModulationStates {
    /// Naive RF-style switching: open vs. short. The baseline the paper
    /// improves upon — for a reactive piezo the two Γs are *not* antipodal
    /// (depth `≈ |cos(arg Z_t)|` instead of 1) and neither state harvests.
    pub fn open_short() -> Self {
        Self { reflect: Load::Open, absorb: Load::Short }
    }

    /// The paper-style electro-mechanical co-design, tuned at `f0`:
    ///
    /// * the **reflect** state is the best reactive (lossless) termination —
    ///   found by sweeping the reactance axis — giving `|Γ_r| ≈ 1`;
    /// * the **absorb** state realizes `|Γ_a| = √(1 − harvest)` *anti-phased*
    ///   against Γ_r, so the pair trades harvested power against modulation
    ///   depth along the Pareto frontier:
    ///   `depth = (|Γ_r| + √(1−h)·|Γ_r|)/2`.
    ///
    /// `harvest` = 1.0 degenerates to a conjugate match (depth ≈ 0.5);
    /// `harvest` = 0.0 gives the maximal-depth reactive pair (depth ≈ 1).
    pub fn co_design(transducer: &Bvd, f0: Hertz, harvest: f64) -> Self {
        assert!((0.0..=1.0).contains(&harvest), "harvest fraction in [0,1]");
        let (z1, z2, _) = best_reactive_pair(transducer, f0);
        // Pick as "reflect" the member whose Γ we keep whole.
        let g1 = gamma(transducer, Load::Custom(z1), f0);
        let g2 = gamma(transducer, Load::Custom(z2), f0);
        let (z_r, g_r) = if g1.abs() >= g2.abs() { (z1, g1) } else { (z2, g2) };
        // Absorb: magnitude √(1−h), phase opposite Γ_r.
        let g_a = C64::from_polar(
            (1.0 - harvest).sqrt().min(0.999_999),
            g_r.arg() + std::f64::consts::PI,
        );
        let z_a = gamma_to_load(transducer, g_a, f0);
        Self { reflect: Load::Custom(z_r), absorb: Load::Custom(z_a) }
    }

    /// The default VAB operating point: half the incident power harvested in
    /// the absorb state, which still keeps ~85 % of the ideal modulation
    /// depth — the "communication + energy" sweet spot.
    pub fn vab(transducer: &Bvd, f0: Hertz) -> Self {
        Self::co_design(transducer, f0, 0.5)
    }

    /// The maximal-depth pair (no harvesting constraint) — used by the
    /// range-oriented experiments.
    pub fn max_depth(transducer: &Bvd, f0: Hertz) -> Self {
        Self::co_design(transducer, f0, 0.0)
    }

    /// Complex modulation difference ΔΓ = Γ_reflect − Γ_absorb at `f`.
    pub fn delta_gamma(&self, transducer: &Bvd, f: Hertz) -> C64 {
        gamma(transducer, self.reflect, f) - gamma(transducer, self.absorb, f)
    }

    /// Modulation depth |ΔΓ|/2 — the amplitude efficiency of the
    /// backscattered sideband relative to a perfect reflector
    /// (1.0 means ideal ±1 reflection switching).
    pub fn modulation_depth(&self, transducer: &Bvd, f: Hertz) -> f64 {
        self.delta_gamma(transducer, f).abs() / 2.0
    }

    /// Power fraction available to the harvester while in the absorb state.
    pub fn harvest_fraction(&self, transducer: &Bvd, f: Hertz) -> f64 {
        absorbed_fraction(transducer, self.absorb, f)
    }
}

/// Exhaustively searches a candidate load set for the pair with the largest
/// |ΔΓ| at `f`. Returns `(reflect, absorb, modulation_depth)` with the
/// more-absorptive load reported as `absorb`.
pub fn best_pair(transducer: &Bvd, candidates: &[Load], f: Hertz) -> (Load, Load, f64) {
    assert!(candidates.len() >= 2, "need at least two candidate loads");
    let mut best = (candidates[0], candidates[1], -1.0);
    for (i, &a) in candidates.iter().enumerate() {
        for &b in candidates.iter().skip(i + 1) {
            let d = (gamma(transducer, a, f) - gamma(transducer, b, f)).abs() / 2.0;
            if d > best.2 {
                // Order so the state with more absorption harvests.
                let (ga, gb) =
                    (gamma(transducer, a, f).norm_sq(), gamma(transducer, b, f).norm_sq());
                best = if ga >= gb { (a, b, d) } else { (b, a, d) };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    fn t() -> Bvd {
        Bvd::vab_default()
    }

    fn f0() -> Hertz {
        t().series_resonance()
    }

    #[test]
    fn gamma_magnitude_never_exceeds_one() {
        let tr = t();
        for khz in [10.0, 15.0, 18.5, 20.0, 30.0] {
            for load in [
                Load::Open,
                Load::Short,
                Load::Resistor(500.0),
                Load::SeriesRl(100.0, 1e-3),
                Load::SeriesRc(100.0, 1e-8),
                Load::ConjugateMatch,
            ] {
                let g = gamma(&tr, load, Hertz::from_khz(khz)).abs();
                assert!(g <= 1.0 + 1e-9, "|Γ|={g} for {load:?} at {khz} kHz");
            }
        }
    }

    #[test]
    fn conjugate_match_fully_absorbs() {
        let g = gamma(&t(), Load::ConjugateMatch, f0());
        assert!(g.abs() < 1e-9, "match should have Γ = 0, got {g}");
        assert!(approx_eq(absorbed_fraction(&t(), Load::ConjugateMatch, f0()), 1.0, 1e-9));
    }

    #[test]
    fn open_reflects_nearly_everything() {
        let g = gamma(&t(), Load::Open, f0()).abs();
        assert!(g > 0.95, "open-circuit |Γ| = {g}");
    }

    #[test]
    fn open_short_depth_limited_by_piezo_reactance() {
        // For a reactive Z_t, Γ_open and Γ_short are not antipodal:
        // depth ≈ |cos(arg Z_t)| < 1. This is the electro-mechanical
        // problem the paper's co-design solves.
        let tr = t();
        let naive = ModulationStates::open_short().modulation_depth(&tr, f0());
        assert!(naive < 0.85, "reactive piezo should cap open/short depth, got {naive}");
        assert!(naive > 0.3, "but it should not vanish, got {naive}");
    }

    #[test]
    fn vab_states_beat_open_short_at_resonance() {
        let tr = t();
        let naive = ModulationStates::open_short().modulation_depth(&tr, f0());
        let vab = ModulationStates::vab(&tr, f0()).modulation_depth(&tr, f0());
        assert!(vab > naive, "co-designed states ({vab:.3}) must beat open/short ({naive:.3})");
        assert!(vab > 0.75, "VAB modulation depth {vab:.3} too small");
    }

    #[test]
    fn max_depth_pair_approaches_ideal() {
        let tr = t();
        let depth = ModulationStates::max_depth(&tr, f0()).modulation_depth(&tr, f0());
        assert!(depth > 0.9, "optimal reactive pair should near depth 1, got {depth}");
    }

    #[test]
    fn vab_state_harvests_while_open_short_does_not() {
        let tr = t();
        let vab = ModulationStates::vab(&tr, f0()).harvest_fraction(&tr, f0());
        let naive = ModulationStates::open_short().harvest_fraction(&tr, f0());
        assert!((vab - 0.5).abs() < 0.05, "co-design targeted h = 0.5, got {vab}");
        assert!(naive < 0.1, "open/short should harvest ~nothing, got {naive}");
    }

    #[test]
    fn co_design_tradeoff_is_monotonic() {
        // More harvesting → less modulation depth, along the frontier.
        let tr = t();
        let mut prev_depth = f64::INFINITY;
        for h in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let s = ModulationStates::co_design(&tr, f0(), h);
            let depth = s.modulation_depth(&tr, f0());
            let harvest = s.harvest_fraction(&tr, f0());
            assert!((harvest - h).abs() < 0.05, "harvest {harvest} ≠ target {h}");
            assert!(depth <= prev_depth + 1e-9, "depth must fall as h rises");
            prev_depth = depth;
        }
    }

    #[test]
    fn modulation_depth_peaks_near_resonance() {
        // A pair *designed at f0* loses depth off-resonance.
        let tr = t();
        let states = ModulationStates::vab(&tr, f0());
        let at_res = states.modulation_depth(&tr, f0());
        let off = states.modulation_depth(&tr, Hertz(f0().value() * 1.3));
        assert!(at_res > off, "depth should fall off resonance: {at_res} vs {off}");
    }

    #[test]
    fn gamma_to_load_inverts_gamma() {
        let tr = t();
        for g in [C64::new(0.3, 0.2), C64::new(-0.5, 0.4), C64::from_polar(0.9, 2.0), C64::ZERO] {
            let z = gamma_to_load(&tr, g, f0());
            let back = gamma(&tr, Load::Custom(z), f0());
            assert!((back - g).abs() < 1e-9, "γ {g} → Z {z} → {back}");
            assert!(z.re >= -1e-6, "passive load must have Re Z ≥ 0, got {z}");
        }
    }

    #[test]
    fn best_pair_finds_at_least_vab_depth() {
        let tr = t();
        let vab_states = ModulationStates::vab(&tr, f0());
        let candidates = [
            Load::Open,
            Load::Short,
            Load::Resistor(100.0),
            Load::Resistor(1000.0),
            Load::ConjugateMatch,
            vab_states.reflect,
            vab_states.absorb,
        ];
        let (_, _, depth) = best_pair(&tr, &candidates, f0());
        let vab = vab_states.modulation_depth(&tr, f0());
        assert!(depth >= vab - 1e-12);
    }

    #[test]
    fn best_pair_orders_absorber_second() {
        let tr = t();
        let (reflect, absorb, _) = best_pair(&tr, &[Load::Open, Load::ConjugateMatch], f0());
        assert_eq!(absorb, Load::ConjugateMatch);
        assert_eq!(reflect, Load::Open);
    }

    #[test]
    fn delta_gamma_antisymmetric() {
        let tr = t();
        let a = ModulationStates { reflect: Load::Open, absorb: Load::Short };
        let b = ModulationStates { reflect: Load::Short, absorb: Load::Open };
        let da = a.delta_gamma(&tr, f0());
        let db = b.delta_gamma(&tr, f0());
        assert!((da + db).abs() < 1e-12);
    }
}
