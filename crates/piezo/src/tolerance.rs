//! Component-tolerance analysis.
//!
//! Real nodes are built from ±5 % inductors and capacitors and transducers
//! whose resonance wanders with temperature and potting. This module Monte
//! Carlos the manufacturing distribution of the key figure of merit — the
//! realized modulation depth — so the design margin experiments can answer
//! "how reproducible is a 4-pair node build?".

use crate::bvd::Bvd;
use crate::matching::LSection;
use crate::reflection::{gamma, Load, ModulationStates};
use rand::Rng;
use vab_util::rng::gaussian;
use vab_util::stats::RunningStats;
use vab_util::units::Hertz;

/// Manufacturing tolerances (1-σ relative deviations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Transducer resonance frequency deviation (potting, temperature).
    pub resonance: f64,
    /// Transducer Q deviation.
    pub q_factor: f64,
    /// Static capacitance deviation.
    pub c0: f64,
    /// Matching-network element deviation (L and C).
    pub network: f64,
}

impl Tolerances {
    /// Typical commercial build: ±2 % resonance, ±10 % Q, ±5 % C0,
    /// ±5 % network elements.
    pub fn commercial() -> Self {
        Self { resonance: 0.02, q_factor: 0.10, c0: 0.05, network: 0.05 }
    }

    /// A tight, hand-trimmed lab build.
    pub fn lab_trimmed() -> Self {
        Self { resonance: 0.005, q_factor: 0.05, c0: 0.02, network: 0.01 }
    }
}

/// One manufactured instance: a perturbed transducer.
pub fn sample_transducer<R: Rng + ?Sized>(nominal: &Bvd, tol: &Tolerances, rng: &mut R) -> Bvd {
    let fs = nominal.series_resonance().value() * (1.0 + tol.resonance * gaussian(rng));
    let q = (nominal.q_factor() * (1.0 + tol.q_factor * gaussian(rng))).max(1.0);
    let c0 = nominal.c0 * (1.0 + tol.c0 * gaussian(rng));
    let ratio = nominal.cm / nominal.c0;
    Bvd::from_resonance(Hertz(fs.max(1.0)), q, c0.max(1e-12), ratio)
}

/// Perturbs an L-section's element values (reactance/susceptance scale
/// linearly with L and C).
pub fn sample_network<R: Rng + ?Sized>(
    nominal: &LSection,
    tol: &Tolerances,
    rng: &mut R,
) -> LSection {
    LSection {
        series_reactance: nominal.series_reactance * (1.0 + tol.network * gaussian(rng)),
        shunt_susceptance: nominal.shunt_susceptance * (1.0 + tol.network * gaussian(rng)),
        ..*nominal
    }
}

/// Distribution summary of a figure of merit across builds.
#[derive(Debug, Clone)]
pub struct YieldReport {
    /// Modulation-depth statistics across the sampled builds.
    pub depth: RunningStats,
    /// Fraction of builds whose depth clears `depth_spec`.
    pub yield_fraction: f64,
    /// The spec line used.
    pub depth_spec: f64,
}

/// Monte Carlo over `n` builds: each gets a perturbed transducer, re-uses
/// the *nominal* co-designed load states (trimmed once at design time, as a
/// production line would), and is scored at the nominal carrier.
pub fn depth_yield<R: Rng + ?Sized>(
    nominal: &Bvd,
    f0: Hertz,
    tol: &Tolerances,
    depth_spec: f64,
    n: usize,
    rng: &mut R,
) -> YieldReport {
    // States designed once against the nominal transducer.
    let states = ModulationStates::vab(nominal, f0);
    let mut depth = RunningStats::new();
    let mut pass = 0usize;
    for _ in 0..n {
        let unit = sample_transducer(nominal, tol, rng);
        let d = states.modulation_depth(&unit, f0);
        depth.push(d);
        if d >= depth_spec {
            pass += 1;
        }
    }
    YieldReport { depth, yield_fraction: pass as f64 / n.max(1) as f64, depth_spec }
}

/// Match quality |Γ| achieved by a *sampled* network on a *sampled*
/// transducer — the harvesting-path tolerance stack-up.
pub fn match_quality_sample<R: Rng + ?Sized>(
    nominal: &Bvd,
    f0: Hertz,
    r_load: f64,
    tol: &Tolerances,
    rng: &mut R,
) -> Option<f64> {
    let net = LSection::design(nominal, r_load, f0)?;
    let unit = sample_transducer(nominal, tol, rng);
    let built = sample_network(&net, tol, rng);
    Some(gamma(&unit, Load::Matched { network: built, r_load }, f0).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::seeded;

    fn nominal() -> Bvd {
        Bvd::vab_default()
    }

    #[test]
    fn zero_tolerance_reproduces_nominal() {
        let tol = Tolerances { resonance: 0.0, q_factor: 0.0, c0: 0.0, network: 0.0 };
        let mut rng = seeded(91);
        let unit = sample_transducer(&nominal(), &tol, &mut rng);
        assert!(
            (unit.series_resonance().value() - nominal().series_resonance().value()).abs() < 1e-6
        );
        assert!((unit.q_factor() - nominal().q_factor()).abs() < 1e-9);
    }

    #[test]
    fn lab_build_yields_higher_than_commercial() {
        let mut rng = seeded(92);
        let f0 = nominal().series_resonance();
        let spec = 0.7;
        let lab = depth_yield(&nominal(), f0, &Tolerances::lab_trimmed(), spec, 400, &mut rng);
        let com = depth_yield(&nominal(), f0, &Tolerances::commercial(), spec, 400, &mut rng);
        assert!(
            lab.yield_fraction >= com.yield_fraction,
            "lab {} < commercial {}",
            lab.yield_fraction,
            com.yield_fraction
        );
        assert!(lab.yield_fraction > 0.9, "lab yield {}", lab.yield_fraction);
    }

    #[test]
    fn commercial_spread_is_visible_but_bounded() {
        let mut rng = seeded(93);
        let f0 = nominal().series_resonance();
        let rep = depth_yield(&nominal(), f0, &Tolerances::commercial(), 0.5, 400, &mut rng);
        assert!(rep.depth.std_dev() > 0.005, "spread {}", rep.depth.std_dev());
        assert!(rep.depth.mean() > 0.6, "mean depth {}", rep.depth.mean());
        assert!(rep.depth.min() > 0.2, "worst unit {}", rep.depth.min());
    }

    #[test]
    fn matched_network_degrades_with_tolerance() {
        let mut rng = seeded(94);
        let f0 = nominal().series_resonance();
        let perfect = match_quality_sample(
            &nominal(),
            f0,
            1000.0,
            &Tolerances { resonance: 0.0, q_factor: 0.0, c0: 0.0, network: 0.0 },
            &mut rng,
        )
        .expect("design");
        assert!(perfect < 1e-6, "nominal build should match: |Γ| = {perfect}");
        let mut worst = 0.0f64;
        for _ in 0..100 {
            let g =
                match_quality_sample(&nominal(), f0, 1000.0, &Tolerances::commercial(), &mut rng)
                    .expect("design");
            worst = worst.max(g);
        }
        assert!(worst > 0.05, "tolerances must cost some match, worst |Γ| = {worst}");
        assert!(worst < 0.9, "but not destroy it, worst |Γ| = {worst}");
    }
}
