//! # vab-piezo — piezoelectric transducer electro-mechanics
//!
//! The paper's central engineering challenge is *electro-mechanical*: an
//! underwater backscatter node modulates the acoustic reflection of a
//! piezoelectric transducer by switching its electrical load, and the
//! transducer's complex, resonant impedance makes the naive RF-backscatter
//! recipe (open/short switching) behave very differently underwater.
//!
//! This crate models that physics:
//! * [`bvd`] — Butterworth–Van Dyke equivalent circuit and its impedance.
//! * [`transduction`] — transmit/receive sensitivity around resonance.
//! * [`reflection`] — load-dependent reflection coefficient Γ(Z_L) and the
//!   modulation depth |ΔΓ| between two load states.
//! * [`matching`] — L-section matching networks that maximize |ΔΓ| and
//!   harvested power.
//! * [`switch`] — the modulation switch and its non-idealities;
//! * [`tolerance`] — manufacturing-tolerance Monte Carlo (build yield).

pub mod bvd;
pub mod matching;
pub mod reflection;
pub mod switch;
pub mod tolerance;
pub mod transduction;

pub use bvd::Bvd;
pub use reflection::{Load, ModulationStates};
pub use switch::Switch;
pub use transduction::Transducer;
