//! Butterworth–Van Dyke (BVD) equivalent circuit.
//!
//! A piezoelectric transducer near one resonance is electrically equivalent
//! to a static capacitance `C0` in parallel with a *motional* RLC branch
//! (`Rm`, `Lm`, `Cm`) that represents the mechanical resonance. `Rm` lumps
//! mechanical dissipation **and acoustic radiation into the water** — it is
//! the term through which electrical loading reaches the acoustic field.

use vab_util::complex::C64;
use vab_util::units::Hertz;
use vab_util::TAU;

/// BVD circuit parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bvd {
    /// Static (blocked) capacitance, farads.
    pub c0: f64,
    /// Motional resistance, ohms (mechanical loss + radiation).
    pub rm: f64,
    /// Motional inductance, henries (moving mass).
    pub lm: f64,
    /// Motional capacitance, farads (compliance).
    pub cm: f64,
}

impl Bvd {
    /// Builds a BVD model from resonance targets instead of raw elements:
    /// series-resonance frequency `fs`, mechanical quality factor `q`,
    /// static capacitance `c0`, and the capacitance ratio `cm/c0`.
    ///
    /// This is how transducer datasheets are usually stated.
    pub fn from_resonance(fs: Hertz, q: f64, c0: f64, cap_ratio: f64) -> Self {
        assert!(fs.value() > 0.0 && q > 0.0 && c0 > 0.0 && cap_ratio > 0.0);
        let cm = c0 * cap_ratio;
        let w = TAU * fs.value();
        let lm = 1.0 / (w * w * cm);
        let rm = w * lm / q;
        Self { c0, rm, lm, cm }
    }

    /// The transducer used throughout the VAB reproduction: a water-loaded
    /// cylindrical piezo resonant at 18.5 kHz with Q ≈ 9 — representative of
    /// the potted PZT cylinders used by the MIT underwater backscatter
    /// hardware.
    pub fn vab_default() -> Self {
        Self::from_resonance(Hertz(18_500.0), 9.0, 10e-9, 0.08)
    }

    /// Complex electrical impedance at frequency `f`.
    pub fn impedance(&self, f: Hertz) -> C64 {
        let w = TAU * f.value();
        let z_c0 = C64::new(0.0, -1.0 / (w * self.c0));
        let z_mot = C64::new(self.rm, w * self.lm - 1.0 / (w * self.cm));
        // Parallel combination.
        (z_c0 * z_mot) / (z_c0 + z_mot)
    }

    /// Series (motional) resonance frequency — impedance minimum.
    pub fn series_resonance(&self) -> Hertz {
        Hertz(1.0 / (TAU * (self.lm * self.cm).sqrt()))
    }

    /// Parallel (anti-)resonance frequency — impedance maximum.
    pub fn parallel_resonance(&self) -> Hertz {
        let c_eff = self.c0 * self.cm / (self.c0 + self.cm);
        Hertz(1.0 / (TAU * (self.lm * c_eff).sqrt()))
    }

    /// Mechanical quality factor `ω_s·Lm / Rm`.
    pub fn q_factor(&self) -> f64 {
        TAU * self.series_resonance().value() * self.lm / self.rm
    }

    /// Effective electromechanical coupling estimate `k_eff²` from the
    /// resonance spacing: `(fp² − fs²)/fp²`.
    pub fn coupling_k2(&self) -> f64 {
        let fs = self.series_resonance().value();
        let fp = self.parallel_resonance().value();
        (fp * fp - fs * fs) / (fp * fp)
    }

    /// Half-power fractional bandwidth around series resonance, ≈ 1/Q.
    pub fn fractional_bandwidth(&self) -> f64 {
        1.0 / self.q_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn from_resonance_roundtrips() {
        let b = Bvd::from_resonance(Hertz(18_500.0), 9.0, 10e-9, 0.08);
        assert!(approx_eq(b.series_resonance().value(), 18_500.0, 1e-6));
        assert!(approx_eq(b.q_factor(), 9.0, 1e-9));
    }

    #[test]
    fn impedance_minimum_near_series_resonance() {
        let b = Bvd::vab_default();
        let fs = b.series_resonance().value();
        let at_res = b.impedance(Hertz(fs)).abs();
        let below = b.impedance(Hertz(fs * 0.8)).abs();
        let above = b.impedance(Hertz(fs * 1.2)).abs();
        assert!(at_res < below && at_res < above, "series resonance should be a |Z| dip");
    }

    #[test]
    fn impedance_maximum_near_parallel_resonance() {
        let b = Bvd::vab_default();
        let fp = b.parallel_resonance().value();
        let at_p = b.impedance(Hertz(fp)).abs();
        let off = b.impedance(Hertz(fp * 1.1)).abs();
        assert!(at_p > off, "antiresonance should be a |Z| peak");
    }

    #[test]
    fn parallel_above_series_resonance() {
        let b = Bvd::vab_default();
        assert!(b.parallel_resonance().value() > b.series_resonance().value());
    }

    #[test]
    fn coupling_positive_and_below_one() {
        let k2 = Bvd::vab_default().coupling_k2();
        assert!(k2 > 0.0 && k2 < 1.0, "k_eff² = {k2}");
    }

    #[test]
    fn far_below_resonance_is_capacitive() {
        let b = Bvd::vab_default();
        let z = b.impedance(Hertz(1000.0));
        assert!(z.im < 0.0, "low-frequency piezo must look capacitive, Z = {z}");
        // And roughly 1/(ωC_total): at 1 kHz, C ≈ C0+Cm.
        let w = TAU * 1000.0;
        let expect = 1.0 / (w * (b.c0 + b.cm));
        assert!(approx_eq(z.abs(), expect, 0.05), "{} vs {}", z.abs(), expect);
    }

    #[test]
    fn resistance_at_resonance_reduced_by_c0_shunt() {
        let b = Bvd::vab_default();
        let z = b.impedance(b.series_resonance());
        // At fs the motional branch is purely Rm, but C0's reactance is
        // comparable to Rm for this transducer, so the shunt pulls the
        // effective resistance well below Rm while keeping it substantial.
        assert!(z.re > 0.2 * b.rm && z.re < b.rm, "Re Z = {} vs Rm = {}", z.re, b.rm);
        // And the input is reactive — the co-design problem exists.
        assert!(z.im.abs() > 0.2 * z.re, "Z at fs should be visibly reactive, Z = {z}");
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        let _ = Bvd::from_resonance(Hertz(-1.0), 9.0, 10e-9, 0.08);
    }
}
