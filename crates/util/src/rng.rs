//! Seeded randomness helpers.
//!
//! Every stochastic component of the simulator draws from a seeded
//! [`rand::rngs::StdRng`], so all experiments are reproducible. Gaussian
//! variates are generated here with Box–Muller rather than pulling in
//! `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index using
/// SplitMix64 mixing, so parallel Monte Carlo shards are decorrelated but
/// reproducible.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one standard-normal sample via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (crate::TAU * u2).cos()
}

/// Fills a buffer with i.i.d. N(0, σ²) noise.
pub fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, sigma: f64, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = sigma * gaussian(rng);
    }
}

/// Returns a vector of `n` i.i.d. N(0, σ²) samples.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, sigma: f64, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    gaussian_noise(rng, sigma, &mut v);
    v
}

/// Draws a complex circular Gaussian sample with total variance σ²
/// (σ²/2 per quadrature) — the standard fading-tap distribution.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> crate::complex::C64 {
    let s = sigma / std::f64::consts::SQRT_2;
    crate::complex::C64::new(s * gaussian(rng), s * gaussian(rng))
}

/// Draws a Rayleigh-distributed magnitude with scale σ (mode).
pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    sigma * (-2.0 * u.ln()).sqrt()
}

/// Random bit vector of length `n` — test payloads.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.random::<bool>()).collect()
}

/// Random byte payload of length `n`.
pub fn random_bytes<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.random::<u8>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::stats::RunningStats;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        // Different parents also differ.
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(1);
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(gaussian(&mut rng));
        }
        assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
        assert!(approx_eq(s.variance(), 1.0, 0.02), "var {}", s.variance());
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = seeded(2);
        let mut re = RunningStats::new();
        let mut im = RunningStats::new();
        for _ in 0..100_000 {
            let z = complex_gaussian(&mut rng, 2.0);
            re.push(z.re);
            im.push(z.im);
        }
        // total variance 4, split 2 per quadrature
        assert!(approx_eq(re.variance(), 2.0, 0.05));
        assert!(approx_eq(im.variance(), 2.0, 0.05));
    }

    #[test]
    fn rayleigh_mean_matches_theory() {
        let mut rng = seeded(3);
        let sigma = 1.5;
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            s.push(rayleigh(&mut rng, sigma));
        }
        let want = sigma * (std::f64::consts::PI / 2.0f64).sqrt();
        assert!(approx_eq(s.mean(), want, 0.02), "{} vs {}", s.mean(), want);
    }

    #[test]
    fn random_bits_are_balanced() {
        let mut rng = seeded(4);
        let bits = random_bits(&mut rng, 100_000);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((ones as f64 / 1e5 - 0.5).abs() < 0.01);
    }
}
