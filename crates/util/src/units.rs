//! Unit newtypes for the sonar-equation arithmetic.
//!
//! These are deliberately thin: a `f64` wrapper with a named accessor and
//! only the arithmetic that is dimensionally meaningful. They exist to make
//! function signatures self-documenting (`fn absorption(f: Hertz) -> DbPerKm`)
//! and to stop metres/kilometres and dB-power/dB-amplitude mixups at compile
//! time, without dragging in a dimensional-analysis framework.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw numeric value in the unit named by the type.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

unit!(
    /// A level or level-difference in decibels. The *reference* is contextual
    /// (`dB re 1 µPa` for underwater pressure levels, plain ratio for gains).
    Db, "dB");
unit!(
    /// Distance in metres.
    Meters, "m");
unit!(
    /// Frequency in hertz.
    Hertz, "Hz");
unit!(
    /// Time in seconds.
    Seconds, "s");
unit!(
    /// Power in watts.
    Watts, "W");
unit!(
    /// Angle in degrees.
    Degrees, "deg");
unit!(
    /// Electrical resistance/reactance magnitude in ohms.
    Ohms, "Ω");
unit!(
    /// Voltage in volts.
    Volts, "V");
unit!(
    /// Energy in joules.
    Joules, "J");
unit!(
    /// Acoustic pressure in pascals.
    Pascals, "Pa");

impl Hertz {
    /// Construct from kilohertz.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// Value in kilohertz.
    #[inline]
    pub fn khz(self) -> f64 {
        self.0 / 1e3
    }

    /// Period of one cycle.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Meters {
    /// Construct from kilometres.
    #[inline]
    pub fn from_km(km: f64) -> Self {
        Meters(km * 1e3)
    }

    /// Value in kilometres.
    #[inline]
    pub fn km(self) -> f64 {
        self.0 / 1e3
    }
}

impl Degrees {
    /// Conversion to radians.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Construct from radians.
    #[inline]
    pub fn from_radians(rad: f64) -> Self {
        Degrees(rad.to_degrees())
    }
}

impl Watts {
    /// Construct from microwatts — the natural unit for backscatter nodes.
    #[inline]
    pub fn from_uw(uw: f64) -> Self {
        Watts(uw * 1e-6)
    }

    /// Value in microwatts.
    #[inline]
    pub fn uw(self) -> f64 {
        self.0 * 1e6
    }

    /// Value in milliwatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Value in milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power × time = energy.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Energy ÷ power = time (e.g. how long a capacitor sustains a load).
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy ÷ time = average power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// Wavelength of an acoustic wave: `c / f`.
#[inline]
pub fn wavelength(sound_speed_mps: f64, f: Hertz) -> Meters {
    Meters(sound_speed_mps / f.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_and_ratio() {
        let a = Meters(300.0);
        let b = Meters(20.0);
        assert_eq!((a - b).value(), 280.0);
        assert!(approx_eq(a / b, 15.0, 1e-12));
        assert_eq!((2.0 * b).value(), 40.0);
    }

    #[test]
    fn khz_and_km_helpers() {
        assert_eq!(Hertz::from_khz(18.5).value(), 18_500.0);
        assert!(approx_eq(Hertz(18_500.0).khz(), 18.5, 1e-12));
        assert_eq!(Meters::from_km(0.3).value(), 300.0);
    }

    #[test]
    fn energy_power_time_relations() {
        let e = Watts::from_uw(100.0) * Seconds(10.0);
        assert!(approx_eq(e.value(), 1e-3, 1e-12));
        let t = e / Watts::from_uw(50.0);
        assert!(approx_eq(t.value(), 20.0, 1e-12));
        let p = e / Seconds(2.0);
        assert!(approx_eq(p.uw(), 500.0, 1e-9));
    }

    #[test]
    fn degrees_radians_roundtrip() {
        let d = Degrees(45.0);
        assert!(approx_eq(Degrees::from_radians(d.radians()).value(), 45.0, 1e-12));
    }

    #[test]
    fn wavelength_at_vab_carrier() {
        // 18.5 kHz in 1500 m/s water → ~8.1 cm wavelength.
        let lam = wavelength(1500.0, Hertz::from_khz(18.5));
        assert!(approx_eq(lam.value(), 0.0811, 1e-3));
    }

    #[test]
    fn display_has_units() {
        assert_eq!(format!("{}", Meters(3.0)), "3 m");
        assert_eq!(format!("{}", Db(-12.5)), "-12.5 dB");
    }
}
