//! Radix-2 decimation-in-time FFT and a Goertzel single-bin DFT.
//!
//! The FFT is the iterative Cooley–Tukey algorithm with a precomputed
//! bit-reversal permutation. It is not the fastest FFT in the world, but it
//! is allocation-free after planning, exact enough for simulation work, and
//! keeps the workspace free of FFT dependencies.

use crate::complex::C64;
use crate::TAU;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Smallest power of two ≥ `n` (and ≥ 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Process-wide plan cache: there are only ever a handful of distinct FFT
/// sizes in play (one per filter/replay size class), so planning each size
/// once and sharing the immutable plan removes the per-call allocation
/// that used to dominate [`rfft`]'s profile.
static PLAN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<Fft>>>> = OnceLock::new();

/// Returns the shared plan for size `n`, planning it on first use.
///
/// The returned plan is immutable and cheap to clone ([`Arc`]); hot loops
/// should hold it across iterations. Sizes must be powers of two.
///
/// # Panics
/// Panics if `n` is not a power of two or is zero.
pub fn plan(n: usize) -> Arc<Fft> {
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("FFT plan cache poisoned");
    map.entry(n).or_insert_with(|| Arc::new(Fft::new(n))).clone()
}

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Twiddle factors e^{-2πik/n} for k in 0..n/2 (forward direction).
    twiddles: Vec<C64>,
    /// Conjugate twiddles (inverse direction), so the butterfly loop has
    /// no per-element direction branch.
    twiddles_inv: Vec<C64>,
}

impl Fft {
    /// Plans an FFT of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if n == 1 { 0 } else { i })
            .collect();
        let twiddles: Vec<C64> = (0..n / 2).map(|k| C64::cis(-TAU * k as f64 / n as f64)).collect();
        let twiddles_inv = twiddles.iter().map(|w| w.conj()).collect();
        Self { n, rev, twiddles, twiddles_inv }
    }

    /// Planned transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the planned size is 1 (the degenerate transform).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// In-place forward FFT. `data.len()` must equal the planned size.
    pub fn forward(&self, data: &mut [C64]) {
        self.transform(data, false);
    }

    /// In-place inverse FFT, including the 1/N normalization.
    pub fn inverse(&self, data: &mut [C64]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for x in data.iter_mut() {
            *x = x.scale(scale);
        }
    }

    fn transform(&self, data: &mut [C64], inverse: bool) {
        assert_eq!(data.len(), self.n, "buffer length must match planned FFT size");
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies. Slice iteration (no index bounds checks) and a
        // direction-specific twiddle table keep the inner loop branch-free.
        let twiddles = if inverse { &self.twiddles_inv } else { &self.twiddles };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for chunk in data.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for ((a, b), &w) in
                    lo.iter_mut().zip(hi.iter_mut()).zip(twiddles.iter().step_by(step))
                {
                    let t = *b * w;
                    let u = *a;
                    *a = u + t;
                    *b = u - t;
                }
            }
            len *= 2;
        }
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum (length `next_pow2(x.len())`). The
/// plan comes from the shared [`plan`] cache, so only the output buffer
/// is allocated per call.
pub fn rfft(x: &[f64]) -> Vec<C64> {
    let n = next_pow2(x.len());
    let mut buf: Vec<C64> = Vec::with_capacity(n);
    buf.extend(x.iter().map(|&v| C64::real(v)));
    buf.resize(n, C64::ZERO);
    plan(n).forward(&mut buf);
    buf
}

/// Forward FFT of a real signal into a caller-owned buffer — the fully
/// allocation-free variant of [`rfft`] for hot loops. `buf` is resized to
/// `next_pow2(x.len())` (a no-op once warm).
pub fn rfft_into(x: &[f64], buf: &mut Vec<C64>) {
    let n = next_pow2(x.len());
    buf.clear();
    buf.extend(x.iter().map(|&v| C64::real(v)));
    buf.resize(n, C64::ZERO);
    plan(n).forward(buf);
}

/// Power spectral density estimate `|X[k]|²/N` of a real signal (one-sided not
/// applied; bins cover 0..fs).
pub fn power_spectrum(x: &[f64]) -> Vec<f64> {
    let spec = rfft(x);
    let n = spec.len() as f64;
    spec.iter().map(|c| c.norm_sq() / n).collect()
}

/// Frequency of FFT bin `k` for sample rate `fs` and size `n`.
#[inline]
pub fn bin_freq(k: usize, n: usize, fs: f64) -> f64 {
    k as f64 * fs / n as f64
}

/// Goertzel algorithm: the DFT of `x` evaluated at a single frequency.
///
/// Much cheaper than a full FFT when only one tone matters — exactly the
/// situation of an OOK/FSK backscatter receiver watching one subcarrier.
/// Returns the complex DFT coefficient (same scaling as an FFT bin).
pub fn goertzel(x: &[f64], freq_hz: f64, fs: f64) -> C64 {
    let n = x.len();
    let w = TAU * freq_hz / fs;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0f64, 0.0f64);
    for &sample in x {
        let s = sample + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Standard Goertzel finalization; phase referenced to the start of the block.
    let real = s_prev - s_prev2 * w.cos();
    let imag = s_prev2 * w.sin();
    // Rotate so the result matches sum x[m] e^{-j w m} over m=0..n-1.
    C64::new(real, imag) * C64::cis(-w * (n as f64 - 1.0))
}

/// Magnitude of the Goertzel bin — the usual tone-detection statistic.
#[inline]
pub fn goertzel_power(x: &[f64], freq_hz: f64, fs: f64) -> f64 {
    goertzel(x, freq_hz, fs).norm_sq()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn naive_dft(x: &[C64]) -> Vec<C64> {
        let n = x.len();
        (0..n)
            .map(|k| (0..n).map(|m| x[m] * C64::cis(-TAU * (k * m) as f64 / n as f64)).sum())
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 64] {
            let x: Vec<C64> =
                (0..n).map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos())).collect();
            let mut got = x.clone();
            Fft::new(n).forward(&mut got);
            let want = naive_dft(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let x: Vec<C64> =
            (0..n).map(|i| C64::new((i as f64).sin(), (i as f64 * 0.1).cos())).collect();
        let mut buf = x.clone();
        let plan = Fft::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 128;
        let fs = 1000.0;
        let k = 10; // bin-centered tone
        let f = bin_freq(k, n, fs);
        let x: Vec<f64> = (0..n).map(|i| (TAU * f * i as f64 / fs).cos()).collect();
        let spec = rfft(&x);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        // Energy should be in bins k and n-k only.
        assert!(mags[k] > 60.0);
        assert!(mags[n - k] > 60.0);
        for (i, &m) in mags.iter().enumerate() {
            if i != k && i != n - k {
                assert!(m < 1e-9, "leakage at bin {i}: {m}");
            }
        }
    }

    #[test]
    fn goertzel_matches_fft_bin() {
        let n = 64;
        let fs = 8000.0;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (TAU * 1000.0 * i as f64 / fs).sin() + 0.5 * (TAU * 2500.0 * i as f64 / fs).cos()
            })
            .collect();
        let spec = rfft(&x);
        for k in [8usize, 20] {
            let g = goertzel(&x, bin_freq(k, n, fs), fs);
            assert!(
                approx_eq(g.abs(), spec[k].abs(), 1e-6),
                "k={k} g={} fft={}",
                g.abs(),
                spec[k].abs()
            );
        }
    }

    #[test]
    fn goertzel_detects_tone_presence() {
        let fs = 44100.0;
        let f = 18500.0;
        let n = 441;
        let on: Vec<f64> = (0..n).map(|i| (TAU * f * i as f64 / fs).sin()).collect();
        let off: Vec<f64> = (0..n).map(|i| (TAU * (f + 4000.0) * i as f64 / fs).sin()).collect();
        assert!(goertzel_power(&on, f, fs) > 100.0 * goertzel_power(&off, f, fs));
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = rfft(&x);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!(approx_eq(time_energy, freq_energy, 1e-9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        let _ = Fft::new(100);
    }

    #[test]
    fn plan_cache_returns_the_same_plan() {
        let a = plan(512);
        let b = plan(512);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        assert_eq!(a.len(), 512);
        assert!(!Arc::ptr_eq(&a, &plan(1024)));
    }

    #[test]
    fn rfft_into_matches_rfft_and_reuses_capacity() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.21).sin()).collect();
        let want = rfft(&x);
        let mut buf = Vec::new();
        rfft_into(&x, &mut buf);
        assert_eq!(buf.len(), want.len());
        for (g, w) in buf.iter().zip(&want) {
            assert!((g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12);
        }
        let cap = buf.capacity();
        rfft_into(&x, &mut buf);
        assert_eq!(buf.capacity(), cap, "warm rfft_into must not reallocate");
    }
}
