//! Special functions used by BER theory and window design.
//!
//! Implementations follow Abramowitz & Stegun rational approximations,
//! accurate to well below the 1e-7 level — far tighter than anything a BER
//! curve needs.

/// Modified Bessel function of the first kind, order zero, I₀(x).
///
/// Power series for |x| < 3.75, asymptotic rational form beyond
/// (A&S 9.8.1 / 9.8.2).
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        1.0 + t
            * (3.5156229
                + t * (3.0899424
                    + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

/// Complementary error function erfc(x) with ~1.2e-7 absolute accuracy
/// (A&S 7.1.26-style rational Chebyshev approximation).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function erf(x).
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian tail probability Q(x) = P(N(0,1) > x) = ½·erfc(x/√2).
#[inline]
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of [`q_func`] by bisection — used to convert a target BER into a
/// required SNR. Valid for p in (0, 0.5].
pub fn q_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 0.5, "q_inv domain is (0, 0.5], got {p}");
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_func(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// First-order Marcum Q function Q₁(a, b), used for noncoherent OOK detection
/// analysis. Computed by the canonical series in modified Bessel functions.
///
/// Q₁(a,b) = exp(-(a²+b²)/2) Σ_{k=0..∞} (a/b)^k I_k(ab)   for b > a.
/// For numerical robustness we integrate the Rician PDF directly instead,
/// which is accurate across the whole (a, b) range used by BER math.
pub fn marcum_q1(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return 1.0;
    }
    // Q1(a,b) = ∫_b^∞ x·exp(-(x²+a²)/2)·I0(ax) dx. Integrate by Simpson on a
    // transformed grid out to where the integrand is negligible.
    let upper = (b + a + 12.0).max(b * 1.5);
    let n = 4000; // even
    let h = (upper - b) / n as f64;
    let f = |x: f64| {
        // exp-scaled I0 to avoid overflow: I0(ax)·exp(-(x-a)²/2 - ax + ax) etc.
        let log_i0 = if a * x > 700.0 {
            // asymptotic ln I0(z) ≈ z - ½ ln(2πz)
            a * x - 0.5 * (std::f64::consts::TAU * a * x).ln()
        } else {
            bessel_i0(a * x).ln()
        };
        let log_term = x.ln() - 0.5 * (x * x + a * a) + log_i0;
        log_term.exp()
    };
    let mut acc = f(b) + f(upper);
    for i in 1..n {
        let x = b + i as f64 * h;
        acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    (acc * h / 3.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bessel_i0_known_values() {
        assert!(approx_eq(bessel_i0(0.0), 1.0, 1e-9));
        assert!(approx_eq(bessel_i0(1.0), 1.2660658, 1e-6));
        assert!(approx_eq(bessel_i0(5.0), 27.239871, 1e-5));
        // symmetry
        assert!(approx_eq(bessel_i0(-2.5), bessel_i0(2.5), 1e-12));
    }

    #[test]
    fn erfc_known_values() {
        assert!(approx_eq(erfc(0.0), 1.0, 1e-7));
        assert!(approx_eq(erfc(1.0), 0.1572992, 1e-6));
        assert!(approx_eq(erfc(2.0), 0.0046777, 1e-6));
        assert!(approx_eq(erfc(-1.0), 2.0 - 0.1572992, 1e-6));
    }

    #[test]
    fn q_func_known_values() {
        assert!(approx_eq(q_func(0.0), 0.5, 1e-6));
        assert!(approx_eq(q_func(1.0), 0.158655, 1e-5));
        assert!(approx_eq(q_func(3.0), 1.3499e-3, 1e-4));
    }

    #[test]
    fn q_inv_inverts_q() {
        for p in [0.4, 0.1, 1e-2, 1e-3, 1e-6] {
            let x = q_inv(p);
            assert!(approx_eq(q_func(x), p, 1e-6), "p={p}: Q({x})={}", q_func(x));
        }
    }

    #[test]
    fn marcum_q1_degenerate_cases() {
        // Q1(0, b) = exp(-b²/2)  (Rayleigh tail)
        for b in [0.5, 1.0, 2.0, 3.0] {
            let want = (-b * b / 2.0f64).exp();
            assert!(approx_eq(marcum_q1(0.0, b), want, 1e-4), "b={b}");
        }
        // Q1(a, 0) = 1
        assert!(approx_eq(marcum_q1(2.0, 0.0), 1.0, 1e-9));
    }

    #[test]
    fn marcum_q1_monotonicity() {
        // Increasing a (signal) raises detection prob; increasing b (threshold) lowers it.
        assert!(marcum_q1(3.0, 2.0) > marcum_q1(1.0, 2.0));
        assert!(marcum_q1(2.0, 1.0) > marcum_q1(2.0, 3.0));
        // Large signal, moderate threshold → near certain detection.
        assert!(marcum_q1(10.0, 3.0) > 0.999);
    }
}
