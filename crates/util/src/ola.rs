//! Overlap-save FFT block convolution.
//!
//! Direct FIR convolution costs O(N·M) for an N-sample signal and M taps;
//! at the tap counts a replayed impulse-response bank or a sharp channel
//! filter needs, that dominates every sample-level experiment. The
//! overlap-save method factors the work through the FFT: pick a block size
//! `B = L − M + 1` for an FFT of length `L`, slide an `L`-sample window
//! over the input in steps of `B`, multiply by the precomputed tap
//! spectrum, and keep the last `B` samples of each inverse transform (the
//! first `M − 1` are circular wrap-around and are discarded). Cost drops
//! to O(N log L).
//!
//! [`OlaPlan`] owns the FFT plan, the tap spectrum and every scratch
//! buffer, so steady-state convolution performs **no allocation at all**
//! beyond (re)sizing the caller's output vector — the property the alloc
//! ratchet pins. [`convolve_auto`] picks direct vs FFT by tap count so
//! short filters keep their exact direct-form arithmetic.

use crate::complex::C64;
use crate::fft::{next_pow2, plan, Fft};
use std::sync::Arc;

/// Tap count at and above which [`convolve_auto`] switches from the exact
/// direct form to the overlap-save engine. Below this the direct loop is
/// both faster (no transform overhead) and bit-exact, which several
/// callers rely on.
pub const FFT_CROSSOVER_TAPS: usize = 64;

/// Chooses the FFT length for a given tap count: at least 4× the taps
/// (so ≥ 75 % of every block is useful output), and no smaller than 256
/// so tiny filters still amortize the transform.
fn fft_len_for(taps_len: usize) -> usize {
    next_pow2((4 * taps_len.max(1)).max(256))
}

/// A reusable overlap-save convolution plan for a fixed tap vector.
///
/// Construction performs all allocation (FFT plan lookup, tap spectrum,
/// scratch); [`OlaPlan::convolve_into`] then runs allocation-free. Swap
/// the taps without reallocating via [`OlaPlan::set_taps`] as long as the
/// tap count stays in the same FFT size class — exactly the pattern a
/// time-varying replay channel needs.
#[derive(Debug, Clone)]
pub struct OlaPlan {
    taps_len: usize,
    fft_n: usize,
    /// Valid output samples produced per block: `fft_n - taps_len + 1`.
    step: usize,
    fft: Arc<Fft>,
    /// Forward FFT of the zero-padded taps.
    h_spec: Vec<C64>,
    /// Block work buffer (`fft_n` long).
    scratch: Vec<C64>,
}

impl OlaPlan {
    /// Plans overlap-save convolution with complex `taps`.
    ///
    /// # Panics
    /// Panics when `taps` is empty.
    pub fn new(taps: &[C64]) -> Self {
        assert!(!taps.is_empty(), "overlap-save needs at least one tap");
        let fft_n = fft_len_for(taps.len());
        let fft = plan(fft_n);
        let mut h_spec = vec![C64::ZERO; fft_n];
        h_spec[..taps.len()].copy_from_slice(taps);
        fft.forward(&mut h_spec);
        Self {
            taps_len: taps.len(),
            fft_n,
            step: fft_n - taps.len() + 1,
            fft,
            h_spec,
            scratch: vec![C64::ZERO; fft_n],
        }
    }

    /// Plans overlap-save convolution with real `taps`.
    pub fn new_real(taps: &[f64]) -> Self {
        let c: Vec<C64> = taps.iter().map(|&t| C64::real(t)).collect();
        Self::new(&c)
    }

    /// Replaces the taps in place. Reuses the FFT plan and both buffers
    /// when the new tap count maps to the same FFT length (same size
    /// class); otherwise replans.
    pub fn set_taps(&mut self, taps: &[C64]) {
        assert!(!taps.is_empty(), "overlap-save needs at least one tap");
        if fft_len_for(taps.len()) != self.fft_n {
            *self = Self::new(taps);
            return;
        }
        self.taps_len = taps.len();
        self.step = self.fft_n - taps.len() + 1;
        self.h_spec[..taps.len()].copy_from_slice(taps);
        self.h_spec[taps.len()..].fill(C64::ZERO);
        self.fft.forward(&mut self.h_spec);
    }

    /// Planned tap count.
    #[inline]
    pub fn taps_len(&self) -> usize {
        self.taps_len
    }

    /// FFT length in use (diagnostic).
    #[inline]
    pub fn fft_len(&self) -> usize {
        self.fft_n
    }

    /// Full linear convolution `y = x ⊛ taps` into `out`
    /// (`out.len() == x.len() + taps_len − 1`; resized as needed).
    ///
    /// After the one-time construction, this performs no allocation
    /// beyond growing `out`.
    pub fn convolve_into(&mut self, x: &[C64], out: &mut Vec<C64>) {
        if x.is_empty() {
            out.clear();
            return;
        }
        let m = self.taps_len;
        let out_len = x.len() + m - 1;
        out.clear();
        out.resize(out_len, C64::ZERO);
        let mut pos = 0usize; // next output index to produce
        while pos < out_len {
            // Window covers padded input [pos − (m−1), pos + step); the
            // virtual padding is m−1 leading zeros plus a zero tail that
            // flushes the final taps. Copy the in-range slice, zero the rest.
            let start = pos as isize - (m as isize - 1);
            let lo = start.max(0) as usize;
            let hi = (start + self.fft_n as isize).clamp(0, x.len() as isize) as usize;
            self.scratch.fill(C64::ZERO);
            if lo < hi {
                let dst = (lo as isize - start) as usize;
                self.scratch[dst..dst + (hi - lo)].copy_from_slice(&x[lo..hi]);
            }
            self.fft.forward(&mut self.scratch);
            for (s, h) in self.scratch.iter_mut().zip(&self.h_spec) {
                *s *= *h;
            }
            self.fft.inverse(&mut self.scratch);
            let take = self.step.min(out_len - pos);
            out[pos..pos + take].copy_from_slice(&self.scratch[m - 1..m - 1 + take]);
            pos += take;
        }
    }

    /// Full linear convolution of a real signal against real taps,
    /// writing the real part of the product into `out`.
    pub fn convolve_real_into(&mut self, x: &[f64], out: &mut Vec<f64>) {
        if x.is_empty() {
            out.clear();
            return;
        }
        let m = self.taps_len;
        let out_len = x.len() + m - 1;
        out.clear();
        out.resize(out_len, 0.0);
        let mut pos = 0usize;
        while pos < out_len {
            let start = pos as isize - (m as isize - 1);
            let lo = start.max(0) as usize;
            let hi = (start + self.fft_n as isize).clamp(0, x.len() as isize) as usize;
            self.scratch.fill(C64::ZERO);
            if lo < hi {
                let dst = (lo as isize - start) as usize;
                for (s, &v) in self.scratch[dst..dst + (hi - lo)].iter_mut().zip(&x[lo..hi]) {
                    *s = C64::real(v);
                }
            }
            self.fft.forward(&mut self.scratch);
            for (s, h) in self.scratch.iter_mut().zip(&self.h_spec) {
                *s *= *h;
            }
            self.fft.inverse(&mut self.scratch);
            let take = self.step.min(out_len - pos);
            for (o, s) in out[pos..pos + take].iter_mut().zip(&self.scratch[m - 1..m - 1 + take]) {
                *o = s.re;
            }
            pos += take;
        }
    }
}

/// One-shot FFT convolution of real sequences (full mode). Allocates a
/// fresh plan; reuse [`OlaPlan`] in loops.
pub fn convolve_fft(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let mut plan = OlaPlan::new_real(h);
    let mut out = Vec::new();
    plan.convolve_real_into(x, &mut out);
    out
}

/// One-shot FFT convolution of complex sequences (full mode).
pub fn convolve_fft_c64(x: &[C64], h: &[C64]) -> Vec<C64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let mut plan = OlaPlan::new(h);
    let mut out = Vec::new();
    plan.convolve_into(x, &mut out);
    out
}

/// Full convolution that dispatches on tap count: exact direct form below
/// [`FFT_CROSSOVER_TAPS`], overlap-save at or above it. The signal/taps
/// roles follow the shorter-is-taps convention so a long kernel against a
/// short burst still takes the fast path.
pub fn convolve_auto(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let (sig, taps) = if h.len() <= x.len() { (x, h) } else { (h, x) };
    if taps.len() < FFT_CROSSOVER_TAPS {
        crate::filter::convolve(x, h)
    } else {
        convolve_fft(sig, taps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::convolve;

    fn direct_c64(x: &[C64], h: &[C64]) -> Vec<C64> {
        let mut y = vec![C64::ZERO; x.len() + h.len() - 1];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &hj) in h.iter().enumerate() {
                y[i + j] += xi * hj;
            }
        }
        y
    }

    fn wave(n: usize, k: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * k).sin() + 0.3 * (i as f64 * 2.7 * k).cos()).collect()
    }

    #[test]
    fn matches_direct_convolution_real() {
        for (n, m) in [(1usize, 1usize), (7, 3), (100, 17), (500, 64), (1000, 257), (257, 1000)] {
            let x = wave(n, 0.13);
            let h = wave(m, 0.31);
            let got = convolve_fft(&x, &h);
            let want = convolve(&x, &h);
            assert_eq!(got.len(), want.len(), "n={n} m={m}");
            let scale: f64 = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() / scale < 1e-10, "n={n} m={m} i={i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn matches_direct_convolution_complex() {
        let x: Vec<C64> =
            (0..400).map(|i| C64::new((i as f64 * 0.2).sin(), (i as f64 * 0.11).cos())).collect();
        let h: Vec<C64> =
            (0..90).map(|i| C64::new((i as f64 * 0.4).cos(), (i as f64 * 0.05).sin())).collect();
        let got = convolve_fft_c64(&x, &h);
        let want = direct_c64(&x, &h);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_reuse_and_set_taps_stay_correct() {
        let x: Vec<C64> = (0..300).map(|i| C64::new((i as f64 * 0.17).sin(), 0.0)).collect();
        let h1: Vec<C64> = (0..120).map(|i| C64::real((i as f64 * 0.23).cos())).collect();
        let h2: Vec<C64> = (0..120).map(|i| C64::new(0.0, (i as f64 * 0.19).sin())).collect();
        let mut plan = OlaPlan::new(&h1);
        let mut out = Vec::new();
        plan.convolve_into(&x, &mut out);
        let want1 = direct_c64(&x, &h1);
        for (g, w) in out.iter().zip(&want1) {
            assert!((g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9);
        }
        // Same size class: set_taps must not replan.
        let fft_before = plan.fft_len();
        plan.set_taps(&h2);
        assert_eq!(plan.fft_len(), fft_before);
        plan.convolve_into(&x, &mut out);
        let want2 = direct_c64(&x, &h2);
        for (g, w) in out.iter().zip(&want2) {
            assert!((g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9);
        }
        // Different size class: replans transparently.
        let h3: Vec<C64> = (0..2048).map(|i| C64::real((i as f64 * 0.01).sin())).collect();
        plan.set_taps(&h3);
        assert_eq!(plan.taps_len(), 2048);
        plan.convolve_into(&x, &mut out);
        assert_eq!(out.len(), x.len() + 2048 - 1);
    }

    #[test]
    fn auto_dispatch_is_exact_below_crossover() {
        // Below the crossover the result must be *bit-identical* to the
        // direct form — callers depend on that.
        let x = wave(200, 0.4);
        let h = wave(FFT_CROSSOVER_TAPS - 1, 0.7);
        assert_eq!(convolve_auto(&x, &h), convolve(&x, &h));
    }

    #[test]
    fn auto_dispatch_commutes_roles() {
        // Long kernel, short signal: the roles swap internally but the
        // linear convolution is symmetric.
        let x = wave(80, 0.3);
        let h = wave(700, 0.05);
        let got = convolve_auto(&x, &h);
        let want = convolve(&x, &h);
        assert_eq!(got.len(), want.len());
        let scale: f64 = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() / scale < 1e-10);
        }
    }

    #[test]
    fn impulse_taps_reproduce_the_signal() {
        let x: Vec<C64> = (0..513).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let h = [C64::ONE];
        let got = convolve_fft_c64(&x, &h);
        for (g, w) in got.iter().zip(&x) {
            assert!((g.re - w.re).abs() < 1e-8 && (g.im - w.im).abs() < 1e-8);
        }
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(convolve_fft(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
        assert!(convolve_auto(&[], &[]).is_empty());
    }

    #[test]
    fn convolve_into_is_allocation_free_after_planning() {
        // Structural check: repeated calls with the same output vector
        // must not grow capacity once sized.
        let x: Vec<C64> = (0..1000).map(|i| C64::real((i as f64 * 0.01).sin())).collect();
        let h: Vec<C64> = (0..128).map(|i| C64::real((i as f64 * 0.1).cos())).collect();
        let mut plan = OlaPlan::new(&h);
        let mut out = Vec::new();
        plan.convolve_into(&x, &mut out);
        let cap = out.capacity();
        for _ in 0..3 {
            plan.convolve_into(&x, &mut out);
            assert_eq!(out.capacity(), cap);
        }
    }
}
