//! A minimal recursive-descent JSON parser and serializer.
//!
//! The workspace consumes only JSON it emitted itself (trace lines from
//! `vab-obs`, `metrics.json` snapshots, `BENCH_<sha>.json` perf files, the
//! committed baseline, `vab-svc` job specs and wire frames), so this stays
//! deliberately small: full RFC 8259 value grammar, numbers as `f64`,
//! objects as ordered key/value vectors. It exists so the workspace keeps
//! its zero-dependency rule — no serde.
//!
//! The serializer ([`Json::render`]) is *canonical*: objects keep their
//! insertion order, integral floats print without a fraction, and the
//! shortest round-trip representation is used for everything else — so two
//! structurally identical values always render to identical bytes. That
//! property is what `vab-svc` content-addresses its job cache on.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`; the emitters never exceed 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` in the canonical number form: integral values in
/// the exactly-representable range print without a fraction (`3`, not
/// `3.0`), everything else uses Rust's shortest round-trip `{:?}`.
/// Non-finite values have no JSON form and render as `null`.
pub fn write_json_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", v as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
    }
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Renders the value compactly (no insignificant whitespace). The
    /// output is canonical: the same value always yields the same bytes,
    /// and `Json::parse(v.render()) == v` for finite numbers.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_json_number(out, *v),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Builds an object from `(key, value)` pairs, in the given order.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then `as_f64`.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `get(key)` then `as_u64`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: `get(key)` then `as_str`.
    pub fn str_field<'a>(&'a self, key: &str) -> Option<&'a str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` then `as_bool`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if !fields.iter().any(|(k, _)| *k == key) {
                fields.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain bytes are copied in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, msg: format!("invalid number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_workspace_emitters_shapes() {
        let line = r#"{"seq":3,"t_us":1500,"target":"sim.test","event":"e","fields":{"a":1,"b":-2.5,"c":true,"d":"x\n"}}"#;
        let v = Json::parse(line).expect("parse");
        assert_eq!(v.u64_field("seq"), Some(3));
        assert_eq!(v.str_field("target"), Some("sim.test"));
        let fields = v.get("fields").expect("fields");
        assert_eq!(fields.f64_field("b"), Some(-2.5));
        assert_eq!(fields.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(fields.str_field("d"), Some("x\n"));
    }

    #[test]
    fn parses_nested_arrays_and_keeps_object_order() {
        let v = Json::parse(r#"{"z":[1,2,[3]],"a":{}}"#).expect("parse");
        let obj = v.as_obj().expect("obj");
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
        let arr = v.get("z").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_arr().map(<[Json]>::len), Some(1));
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        assert!(Json::parse(r#"{"seq":3,"t_us":15"#).is_err());
        assert!(Json::parse(r#"{"a":1} extra"#).is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse(r#"{"a":01x}"#).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""snap A😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("snap A\u{1F600}"));
    }

    #[test]
    fn nonfinite_sentinels_from_the_snapshot_stay_strings() {
        // vab-obs encodes NaN/Inf as strings; they come back as Json::Str.
        let v = Json::parse(r#"{"sum":"NaN"}"#).expect("parse");
        assert_eq!(v.f64_field("sum"), None);
        assert_eq!(v.str_field("sum"), Some("NaN"));
    }

    #[test]
    fn render_is_compact_and_round_trips() {
        let v = Json::obj([
            ("kind", Json::Str("mc_point".into())),
            ("range_m", Json::Num(123.5)),
            ("trials", Json::Num(100.0)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::Null, Json::Num(-2.25)])),
        ]);
        let s = v.render();
        assert_eq!(
            s,
            r#"{"kind":"mc_point","range_m":123.5,"trials":100,"ok":true,"tags":[null,-2.25]}"#
        );
        assert_eq!(Json::parse(&s).expect("reparse"), v);
    }

    #[test]
    fn render_escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let s = v.render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&s).expect("reparse"), v);
    }

    #[test]
    fn render_is_canonical_for_integral_floats() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.0).render(), "0");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn shortest_roundtrip_floats_survive_reparse_exactly() {
        for v in [1.0 / 3.0, 1e-300, 2.2250738585072014e-308, 9.007199254740993e15, -0.1] {
            let rendered = Json::Num(v).render();
            let back = Json::parse(&rendered).expect("reparse").as_f64().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} rendered as {rendered}");
        }
    }
}
