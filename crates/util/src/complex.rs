//! Minimal complex-number type used throughout the workspace.
//!
//! The standard library has no complex type and the workspace deliberately
//! avoids `num-complex`; this covers everything the DSP and circuit code
//! needs: field arithmetic, polar forms, `exp`, conjugation and magnitudes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Real unit.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// Imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates a complex number from magnitude and phase (radians).
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        let (s, c) = phase.sin_cos();
        Self::new(mag * c, mag * s)
    }

    /// `e^{i·phase}` — a unit phasor.
    #[inline]
    pub fn cis(phase: f64) -> Self {
        Self::from_polar(1.0, phase)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the sqrt of [`C64::abs`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse. Returns NaN components when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sq();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is intended
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn c_approx(a: C64, b: C64, tol: f64) -> bool {
        approx_eq(a.re, b.re, tol) && approx_eq(a.im, b.im, tol)
    }

    #[test]
    fn field_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        assert_eq!(a * b, C64::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(c_approx(a / b * b, a, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.5, 1.1);
        assert!(approx_eq(z.abs(), 2.5, 1e-12));
        assert!(approx_eq(z.arg(), 1.1, 1e-12));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = C64::cis(k as f64 * 0.5);
            assert!(approx_eq(z.abs(), 1.0, 1e-12));
        }
    }

    #[test]
    fn exp_matches_euler() {
        let z = C64::new(0.3, std::f64::consts::PI / 3.0);
        let e = z.exp();
        let expected = C64::from_polar(0.3f64.exp(), std::f64::consts::PI / 3.0);
        assert!(c_approx(e, expected, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-4.0, 3.0);
        let r = z.sqrt();
        assert!(c_approx(r * r, z, 1e-12));
    }

    #[test]
    fn conj_and_norms() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!(approx_eq(z.norm_sq(), 25.0, 1e-12));
        assert!(approx_eq(z.abs(), 5.0, 1e-12));
        // z * conj(z) is |z|² (purely real)
        let p = z * z.conj();
        assert!(approx_eq(p.re, 25.0, 1e-12));
        assert!(approx_eq(p.im, 0.0, 1e-12));
    }

    #[test]
    fn inverse_of_zero_is_nan() {
        assert!(C64::ZERO.inv().is_nan());
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // N-th roots of unity sum to zero.
        let n = 8;
        let s: C64 = (0..n).map(|k| C64::cis(crate::TAU * k as f64 / n as f64)).sum();
        assert!(s.abs() < 1e-12);
    }
}
