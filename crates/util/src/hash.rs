//! FNV-1a hashing — the workspace's shared content-address primitive.
//!
//! Lives here (rather than in `vab-svc`, where it originated) so crates
//! below the service layer — notably `vab-net`, which digests topology
//! specs — can address content without depending on the serving stack.

/// FNV-1a 64-bit digest of `bytes`.
///
/// Not cryptographic: it addresses caches and names deterministic
/// artifacts, where speed and zero dependencies matter and adversarial
/// collisions do not.
///
/// ```
/// assert_eq!(vab_util::hash::fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
