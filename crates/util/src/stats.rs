//! Streaming and batch statistics for Monte Carlo experiment results.

/// Welford online mean/variance accumulator.
///
/// Numerically stable for millions of samples; merging two accumulators is
/// supported so parallel Monte Carlo shards can be combined exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan et al. parallel formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile by linear interpolation on a sorted copy (p in [0, 100]).
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> f64 {
    percentile(data, 50.0)
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// A fixed-bin histogram over a closed range; out-of-range samples clamp to
/// the edge bins so nothing is silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Self { lo, hi, counts: vec![0; bins] }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!(approx_eq(a.mean(), whole.mean(), 1e-12));
        assert!(approx_eq(a.variance(), whole.variance(), 1e-10));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
    }

    #[test]
    fn percentile_and_median() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(approx_eq(median(&data), 3.0, 1e-12));
        assert!(approx_eq(percentile(&data, 0.0), 1.0, 1e-12));
        assert!(approx_eq(percentile(&data, 100.0), 5.0, 1e-12));
        assert!(approx_eq(percentile(&data, 25.0), 2.0, 1e-12));
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.5);
        h.push(9.5);
        h.push(-3.0); // clamps into bin 0
        h.push(42.0); // clamps into bin 9
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
        assert!(approx_eq(h.bin_center(0), 0.5, 1e-12));
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }
}
