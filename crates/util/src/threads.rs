//! Worker-thread sizing, shared by every parallel subsystem.
//!
//! The Monte Carlo shards, the `vab-svc` worker pool and the bench fleet
//! all need the same answer to "how many workers should I start?". One
//! resolution order, applied everywhere:
//!
//! 1. a process-wide override installed with [`set_jobs`] (the `--jobs N`
//!    CLI flag),
//! 2. the `VAB_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`],
//! 4. a fallback of 4 when the platform cannot say.
//!
//! Thread count never affects simulation *results* — every shard derives
//! its RNG stream from the master seed — so this is purely a throughput
//! and oversubscription knob.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide `--jobs` override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or, with `0`, clears) the process-wide worker-count override.
/// Takes precedence over `VAB_THREADS` and the detected parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Resolves the worker-thread count: [`set_jobs`] override, then a
/// positive integer in `VAB_THREADS`, then the available parallelism,
/// then 4. Invalid or zero `VAB_THREADS` values are ignored.
pub fn threads() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("VAB_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_clears() {
        // The test harness does not set VAB_THREADS, so after clearing the
        // override we must fall through to detected parallelism (>= 1).
        set_jobs(3);
        assert_eq!(threads(), 3);
        set_jobs(0);
        assert!(threads() >= 1);
    }
}
