//! Window functions for FIR design and spectral analysis.

use crate::special::bessel_i0;
use crate::TAU;

/// The window families supported by the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// Rectangular (no taper).
    Rect,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
    /// Kaiser with shape parameter β.
    Kaiser(f64),
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-point window.
    pub fn coeff(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64; // 0..=1
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * (TAU * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (TAU * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (TAU * x).cos() + 0.08 * (2.0 * TAU * x).cos(),
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // -1..=1
                bessel_i0(beta * (1.0 - t * t).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Generates the full `n`-point window.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coeff(i, n)).collect()
    }

    /// Kaiser β for a desired stopband attenuation in dB (Kaiser's formula).
    pub fn kaiser_beta(atten_db: f64) -> f64 {
        if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman, Window::Kaiser(6.0)] {
            let v = w.generate(65);
            for i in 0..v.len() {
                assert!(approx_eq(v[i], v[v.len() - 1 - i], 1e-12), "{w:?} not symmetric at {i}");
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero_and_peak_is_one() {
        let v = Window::Hann.generate(33);
        assert!(v[0].abs() < 1e-12 && v[32].abs() < 1e-12);
        assert!(approx_eq(v[16], 1.0, 1e-12));
    }

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.generate(10).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn kaiser_beta_zero_is_rect() {
        let v = Window::Kaiser(0.0).generate(9);
        for x in v {
            assert!(approx_eq(x, 1.0, 1e-12));
        }
    }

    #[test]
    fn kaiser_beta_formula_regions() {
        assert_eq!(Window::kaiser_beta(10.0), 0.0);
        assert!(Window::kaiser_beta(30.0) > 0.0);
        assert!(approx_eq(Window::kaiser_beta(60.0), 0.1102 * 51.3, 1e-9));
    }

    #[test]
    fn length_one_window_is_unity() {
        for w in [Window::Rect, Window::Hann, Window::Kaiser(8.0)] {
            assert_eq!(w.generate(1), vec![1.0]);
        }
    }
}
