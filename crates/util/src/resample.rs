//! Fractional delay and resampling.
//!
//! Multipath arrivals land between sample instants; applying an integer
//! round of the delay would bias phase by up to half a sample (several
//! degrees at the VAB carrier), so the channel simulator uses windowed-sinc
//! fractional delays from this module.

use crate::window::Window;

/// Delays a signal by a (possibly fractional) number of samples using a
/// windowed-sinc interpolator, returning a buffer of length
/// `x.len() + ceil(delay) + taps`.
///
/// `taps` controls interpolation quality; 16–32 is plenty for simulation.
pub fn fractional_delay(x: &[f64], delay_samples: f64, taps: usize) -> Vec<f64> {
    assert!(delay_samples >= 0.0, "delay must be non-negative");
    assert!(taps >= 4, "need at least 4 interpolator taps");
    let int_delay = delay_samples.floor() as usize;
    let frac = delay_samples - int_delay as f64;
    let out_len = x.len() + int_delay + taps;
    let mut y = vec![0.0; out_len];
    if x.is_empty() {
        return y;
    }
    if frac == 0.0 {
        y[int_delay..int_delay + x.len()].copy_from_slice(x);
        return y;
    }
    // Sinc kernel centered at `frac` within a `taps`-long window.
    let half = taps as f64 / 2.0;
    let kernel: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - (half - 1.0) - frac;
            let s = if t == 0.0 {
                1.0
            } else {
                (std::f64::consts::PI * t).sin() / (std::f64::consts::PI * t)
            };
            s * Window::Hann.coeff(i, taps)
        })
        .collect();
    // Normalize kernel DC gain to exactly 1 so long delays don't change level.
    let gain: f64 = kernel.iter().sum();
    let base = int_delay as isize - (half as isize - 1);
    // High-order interpolators are a plain convolution with the kernel
    // placed at `base`; route those through the overlap-save engine. The
    // short kernels every simulation call uses stay on the exact direct
    // loop.
    if taps >= crate::ola::FFT_CROSSOVER_TAPS && x.len() >= taps {
        let scaled: Vec<f64> = kernel.iter().map(|k| k / gain).collect();
        let conv = crate::ola::convolve_fft(x, &scaled);
        for (i, &v) in conv.iter().enumerate() {
            let idx = i as isize + base;
            if idx >= 0 && (idx as usize) < out_len {
                y[idx as usize] = v;
            }
        }
        return y;
    }
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (j, &k) in kernel.iter().enumerate() {
            let idx = i as isize + base + j as isize;
            if idx >= 0 && (idx as usize) < out_len {
                y[idx as usize] += xi * k / gain;
            }
        }
    }
    y
}

/// Linear interpolation resampler from `fs_in` to `fs_out`.
///
/// Adequate for rate conversion of already-band-limited envelopes; carrier
/// waveforms should stay at one rate end-to-end.
pub fn resample_linear(x: &[f64], fs_in: f64, fs_out: f64) -> Vec<f64> {
    assert!(fs_in > 0.0 && fs_out > 0.0);
    if x.is_empty() {
        return Vec::new();
    }
    let ratio = fs_in / fs_out;
    let n_out = ((x.len() as f64 - 1.0) / ratio).floor() as usize + 1;
    (0..n_out)
        .map(|i| {
            let t = i as f64 * ratio;
            let i0 = t.floor() as usize;
            let frac = t - i0 as f64;
            if i0 + 1 < x.len() {
                x[i0] * (1.0 - frac) + x[i0 + 1] * frac
            } else {
                x[x.len() - 1]
            }
        })
        .collect()
}

/// Integer decimation by `m` with no anti-alias filter (caller must have
/// band-limited the signal, e.g. after matched filtering).
pub fn decimate(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "decimation factor must be positive");
    x.iter().step_by(m).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TAU;

    #[test]
    fn integer_delay_shifts_exactly() {
        let x = [1.0, 2.0, 3.0];
        let y = fractional_delay(&x, 2.0, 8);
        assert_eq!(&y[2..5], &[1.0, 2.0, 3.0]);
        assert!(y[..2].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fractional_delay_shifts_sine_phase() {
        let fs = 1000.0;
        let f = 50.0;
        let n = 512;
        let x: Vec<f64> = (0..n).map(|i| (TAU * f * i as f64 / fs).sin()).collect();
        let d = 3.37;
        let y = fractional_delay(&x, d, 32);
        // In the steady-state interior, y[i] ≈ sin(2πf(i-d)/fs).
        for (i, &yi) in y.iter().enumerate().take(400).skip(100) {
            let want = (TAU * f * (i as f64 - d) / fs).sin();
            assert!((yi - want).abs() < 5e-3, "i={i}: {yi} vs {want}");
        }
    }

    #[test]
    fn fractional_delay_preserves_amplitude() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..800).map(|i| (TAU * 40.0 * i as f64 / fs).cos()).collect();
        let y = fractional_delay(&x, 0.5, 32);
        let peak = y[100..700].iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 1.0).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn resample_identity_rate() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = resample_linear(&x, 100.0, 100.0);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn resample_doubles_samples() {
        let x = [0.0, 1.0, 2.0];
        let y = resample_linear(&x, 100.0, 200.0);
        assert_eq!(y.len(), 5);
        assert!((y[1] - 0.5).abs() < 1e-12);
        assert!((y[3] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn decimate_takes_every_mth() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(decimate(&x, 2), vec![0.0, 2.0, 4.0]);
        assert_eq!(decimate(&x, 3), vec![0.0, 3.0]);
    }

    #[test]
    fn long_interpolator_fft_path_matches_sine_shift() {
        // 64 taps crosses the FFT dispatch threshold; the result must
        // still be the delayed sine to interpolator accuracy.
        let fs = 1000.0;
        let f = 50.0;
        let n = 512;
        let x: Vec<f64> = (0..n).map(|i| (TAU * f * i as f64 / fs).sin()).collect();
        let d = 7.41;
        let y = fractional_delay(&x, d, 64);
        for (i, &yi) in y.iter().enumerate().take(400).skip(120) {
            let want = (TAU * f * (i as f64 - d) / fs).sin();
            assert!((yi - want).abs() < 5e-3, "i={i}: {yi} vs {want}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(fractional_delay(&[], 1.5, 8).iter().all(|&v| v == 0.0));
        assert!(resample_linear(&[], 10.0, 20.0).is_empty());
    }
}
