//! Decibel ↔ linear conversions.
//!
//! Underwater acoustics mixes *power* quantities (source level, noise level,
//! SNR) and *amplitude* quantities (pressure, voltage). The two conversion
//! families differ by a factor of two in the exponent and confusing them is
//! the classic sonar-equation bug, so both are spelled out explicitly.

/// Converts a power ratio to decibels: `10·log10(x)`.
#[inline]
pub fn lin_pow_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a power ratio: `10^(x/10)`.
#[inline]
pub fn db_to_lin_pow(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude ratio (pressure, voltage) to decibels: `20·log10(x)`.
#[inline]
pub fn lin_amp_to_db(x: f64) -> f64 {
    20.0 * x.log10()
}

/// Converts decibels to an amplitude ratio: `10^(x/20)`.
#[inline]
pub fn db_to_lin_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Adds two incoherent power levels expressed in dB.
///
/// `power_db_add(60.0, 60.0)` is ≈ 63 dB: equal incoherent sources add 3 dB.
#[inline]
pub fn power_db_add(a_db: f64, b_db: f64) -> f64 {
    lin_pow_to_db(db_to_lin_pow(a_db) + db_to_lin_pow(b_db))
}

/// Sums an arbitrary collection of incoherent power levels in dB.
///
/// Returns `f64::NEG_INFINITY` for an empty input (zero power).
pub fn power_db_sum<I: IntoIterator<Item = f64>>(levels_db: I) -> f64 {
    let total: f64 = levels_db.into_iter().map(db_to_lin_pow).sum();
    if total <= 0.0 {
        f64::NEG_INFINITY
    } else {
        lin_pow_to_db(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn power_roundtrip() {
        for db in [-120.0, -3.0, 0.0, 10.0, 96.5] {
            assert!(approx_eq(lin_pow_to_db(db_to_lin_pow(db)), db, 1e-12));
        }
    }

    #[test]
    fn amplitude_roundtrip() {
        for db in [-60.0, 0.0, 6.0, 40.0] {
            assert!(approx_eq(lin_amp_to_db(db_to_lin_amp(db)), db, 1e-12));
        }
    }

    #[test]
    fn amplitude_vs_power_factor_two() {
        // A 2× amplitude ratio is ~6.02 dB; a 2× power ratio is ~3.01 dB.
        assert!(approx_eq(lin_amp_to_db(2.0), 6.0206, 1e-4));
        assert!(approx_eq(lin_pow_to_db(2.0), 3.0103, 1e-4));
    }

    #[test]
    fn incoherent_addition() {
        assert!(approx_eq(power_db_add(60.0, 60.0), 63.0103, 1e-4));
        // A source 20 dB below another barely moves the total.
        assert!(power_db_add(60.0, 40.0) < 60.05);
    }

    #[test]
    fn power_sum_empty_is_neg_inf() {
        assert_eq!(power_db_sum(std::iter::empty()), f64::NEG_INFINITY);
    }

    #[test]
    fn power_sum_matches_pairwise() {
        let s = power_db_sum([50.0, 53.0, 47.0]);
        let p = power_db_add(power_db_add(50.0, 53.0), 47.0);
        assert!(approx_eq(s, p, 1e-12));
    }
}
