//! # vab-util — numerics substrate for the VAB reproduction
//!
//! Self-contained numerical building blocks shared by every other crate in
//! the workspace: complex arithmetic, dB conversions, unit newtypes, an FFT,
//! overlap-save FFT block convolution ([`ola`]), FIR filter design, windows,
//! fractional-delay resampling, statistics, special functions (erfc,
//! Marcum-Q, Bessel I0), seeded random-number helpers, a JSON
//! parser/serializer ([`json`]), FNV-1a content hashing ([`hash`]) and the
//! shared worker-thread sizing policy ([`mod@threads`]).
//!
//! Nothing in this crate knows about acoustics or backscatter; it exists so
//! that the domain crates can stay free of third-party DSP dependencies.

pub mod complex;
pub mod db;
pub mod fft;
pub mod filter;
pub mod hash;
pub mod json;
pub mod ola;
pub mod resample;
pub mod rng;
pub mod special;
pub mod stats;
pub mod threads;
pub mod units;
pub mod window;

pub use complex::C64;
pub use db::{db_to_lin_amp, db_to_lin_pow, lin_amp_to_db, lin_pow_to_db};
pub use hash::fnv1a64;
pub use threads::threads;
pub use units::{Db, Degrees, Hertz, Meters, Seconds, Watts};

/// Speed of sound placeholder used by tests that do not care about the
/// environment (m/s). Real code should use `vab-acoustics`.
pub const NOMINAL_SOUND_SPEED: f64 = 1500.0;

/// Two pi, re-exported because `std::f64::consts::TAU` reads worse in phase math.
pub const TAU: f64 = std::f64::consts::TAU;

/// Returns true if two floats agree to within `tol` absolutely or relatively.
///
/// Used pervasively in tests; lives here so every crate asserts the same way.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }
}
