//! FIR filter design (windowed-sinc) and filtering primitives.

use crate::window::Window;
use crate::TAU;

/// Filter pass-band specification. All frequencies are normalized to the
/// sample rate (cycles/sample, so 0.5 is Nyquist).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Band {
    /// Pass below `cutoff`.
    Lowpass { cutoff: f64 },
    /// Pass above `cutoff`.
    Highpass { cutoff: f64 },
    /// Pass between `lo` and `hi`.
    Bandpass { lo: f64, hi: f64 },
    /// Reject between `lo` and `hi`.
    Bandstop { lo: f64, hi: f64 },
}

/// A finite-impulse-response filter.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Builds an FIR from explicit taps.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR must have at least one tap");
        Self { taps }
    }

    /// Windowed-sinc design. `n_taps` should be odd for a symmetric
    /// (linear-phase, type-I) filter; it is bumped to odd if even.
    ///
    /// # Panics
    /// Panics when cutoffs are outside (0, 0.5) or badly ordered.
    pub fn design(band: Band, n_taps: usize, window: Window) -> Self {
        let n = if n_taps.is_multiple_of(2) { n_taps + 1 } else { n_taps }.max(3);
        let mid = (n - 1) as f64 / 2.0;
        let sinc_lp = |fc: f64, i: usize| -> f64 {
            let t = i as f64 - mid;
            if t == 0.0 {
                2.0 * fc
            } else {
                (TAU * fc * t).sin() / (std::f64::consts::PI * t)
            }
        };
        let check = |f: f64| assert!(f > 0.0 && f < 0.5, "cutoff must be in (0, 0.5), got {f}");
        let mut taps: Vec<f64> = match band {
            Band::Lowpass { cutoff } => {
                check(cutoff);
                (0..n).map(|i| sinc_lp(cutoff, i)).collect()
            }
            Band::Highpass { cutoff } => {
                check(cutoff);
                // Spectral inversion of a lowpass: δ[mid] - lp.
                (0..n)
                    .map(|i| {
                        let d = if i as f64 == mid { 1.0 } else { 0.0 };
                        d - sinc_lp(cutoff, i)
                    })
                    .collect()
            }
            Band::Bandpass { lo, hi } => {
                check(lo);
                check(hi);
                assert!(lo < hi, "bandpass needs lo < hi");
                (0..n).map(|i| sinc_lp(hi, i) - sinc_lp(lo, i)).collect()
            }
            Band::Bandstop { lo, hi } => {
                check(lo);
                check(hi);
                assert!(lo < hi, "bandstop needs lo < hi");
                (0..n)
                    .map(|i| {
                        let d = if i as f64 == mid { 1.0 } else { 0.0 };
                        d - (sinc_lp(hi, i) - sinc_lp(lo, i))
                    })
                    .collect()
            }
        };
        for (i, t) in taps.iter_mut().enumerate() {
            *t *= window.coeff(i, n);
        }
        Self { taps }
    }

    /// The filter taps.
    #[inline]
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (linear-phase symmetric filters only).
    #[inline]
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filters a signal, returning an output of the same length ("same" mode:
    /// output is aligned so that the group delay is compensated).
    ///
    /// Dispatches to the overlap-save FFT engine above
    /// [`crate::ola::FFT_CROSSOVER_TAPS`] taps; short filters keep the
    /// exact direct form.
    pub fn filter_same(&self, x: &[f64]) -> Vec<f64> {
        let full = crate::ola::convolve_auto(x, &self.taps);
        let delay = (self.taps.len() - 1) / 2;
        full[delay..delay + x.len()].to_vec()
    }

    /// Full convolution of the signal with the taps
    /// (output length `x.len() + taps.len() - 1`). Same FFT dispatch as
    /// [`Fir::filter_same`].
    pub fn filter_full(&self, x: &[f64]) -> Vec<f64> {
        crate::ola::convolve_auto(x, &self.taps)
    }

    /// Complex frequency response H(e^{j2πf}) at normalized frequency `f`.
    pub fn response_at(&self, f: f64) -> crate::complex::C64 {
        self.taps
            .iter()
            .enumerate()
            .map(|(i, &t)| t * crate::complex::C64::cis(-TAU * f * i as f64))
            .sum()
    }

    /// Magnitude response in dB at normalized frequency `f`.
    pub fn magnitude_db(&self, f: f64) -> f64 {
        20.0 * self.response_at(f).abs().log10()
    }
}

/// Direct-form full convolution `y = x ⊛ h`.
pub fn convolve(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let mut y = vec![0.0; x.len() + h.len() - 1];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            y[i + j] += xi * hj;
        }
    }
    y
}

/// A single-pole DC-blocking IIR filter `y[n] = x[n] - x[n-1] + r·y[n-1]`.
///
/// Used by the reader front end to strip rectifier/bias drift before
/// correlation. `r` close to 1 gives a narrow notch at DC.
#[derive(Debug, Clone)]
pub struct DcBlocker {
    r: f64,
    x1: f64,
    y1: f64,
}

impl DcBlocker {
    /// Creates a DC blocker with pole radius `r` in (0, 1).
    pub fn new(r: f64) -> Self {
        assert!(r > 0.0 && r < 1.0, "pole radius must be in (0,1)");
        Self { r, x1: 0.0, y1: 0.0 }
    }

    /// Processes one sample.
    #[inline]
    pub fn step(&mut self, x: f64) -> f64 {
        let y = x - self.x1 + self.r * self.y1;
        self.x1 = x;
        self.y1 = y;
        y
    }

    /// Processes a whole buffer.
    pub fn process(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.step(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_identity() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(convolve(&x, &[1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn convolution_known_result() {
        // [1,1] ⊛ [1,1] = [1,2,1]
        assert_eq!(convolve(&[1.0, 1.0], &[1.0, 1.0]), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn convolution_commutes() {
        let a = [0.5, -1.0, 2.0, 0.25];
        let b = [1.0, 3.0, -2.0];
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let f = Fir::design(Band::Lowpass { cutoff: 0.1 }, 101, Window::Hamming);
        assert!(f.magnitude_db(0.01) > -1.0, "passband droop");
        assert!(f.magnitude_db(0.25) < -40.0, "stopband leak");
    }

    #[test]
    fn highpass_blocks_dc() {
        let f = Fir::design(Band::Highpass { cutoff: 0.2 }, 101, Window::Hamming);
        assert!(f.magnitude_db(0.0) < -40.0);
        assert!(f.magnitude_db(0.35) > -1.0);
    }

    #[test]
    fn bandpass_selects_band() {
        let f = Fir::design(Band::Bandpass { lo: 0.15, hi: 0.25 }, 151, Window::Hamming);
        assert!(f.magnitude_db(0.2) > -1.0);
        assert!(f.magnitude_db(0.05) < -40.0);
        assert!(f.magnitude_db(0.4) < -40.0);
    }

    #[test]
    fn bandstop_notches_band() {
        let f = Fir::design(Band::Bandstop { lo: 0.18, hi: 0.22 }, 201, Window::Hamming);
        assert!(f.magnitude_db(0.2) < -20.0);
        assert!(f.magnitude_db(0.05) > -1.0);
        assert!(f.magnitude_db(0.4) > -1.0);
    }

    #[test]
    fn even_tap_request_is_bumped_to_odd() {
        let f = Fir::design(Band::Lowpass { cutoff: 0.1 }, 100, Window::Hann);
        assert_eq!(f.taps().len() % 2, 1);
    }

    #[test]
    fn filter_same_preserves_length_and_alignment() {
        let f = Fir::design(Band::Lowpass { cutoff: 0.2 }, 51, Window::Hamming);
        // A slow sine should come through nearly unchanged and aligned.
        let n = 400;
        let x: Vec<f64> = (0..n).map(|i| (TAU * 0.05 * i as f64).sin()).collect();
        let y = f.filter_same(&x);
        assert_eq!(y.len(), n);
        // Compare away from the edges.
        for i in 60..n - 60 {
            assert!((y[i] - x[i]).abs() < 0.02, "misaligned at {i}: {} vs {}", y[i], x[i]);
        }
    }

    #[test]
    fn dc_blocker_removes_offset_keeps_ac() {
        let mut blk = DcBlocker::new(0.995);
        let n = 4000;
        let x: Vec<f64> = (0..n).map(|i| 3.0 + (TAU * 0.05 * i as f64).sin()).collect();
        let y = blk.process(&x);
        let tail = &y[n / 2..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean.abs() < 0.01, "residual DC {mean}");
        let peak = tail.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 0.9, "AC attenuated: {peak}");
    }

    #[test]
    #[should_panic(expected = "cutoff must be in")]
    fn bad_cutoff_panics() {
        let _ = Fir::design(Band::Lowpass { cutoff: 0.7 }, 11, Window::Hann);
    }
}
