//! Property tests for the stop-and-wait ARQ state machines.
//!
//! A randomized lossy channel drives sender and receiver through long event
//! scripts (frame loss, ACK loss, ACK corruption, clean exchanges) and
//! checks the invariants that make stop-and-wait correct:
//!
//! * conservation — every offered payload ends exactly once as delivered
//!   or dropped;
//! * at-most-once delivery — the receiver never accepts the same payload
//!   twice, whatever the ACK weather (duplicate ACKs included);
//! * 1-bit sequence alternation — accepted payloads carry alternating
//!   sequence bits across wraparound;
//! * bounded backoff — the timeout multiplier never exceeds its cap.

use proptest::prelude::*;
use vab_link::arq::{
    ArqReceiver, ArqSender, ReceiveOutcome, SenderAction, BACKOFF_JITTER, MAX_BACKOFF_EXP,
};

/// What the channel does to one transmission attempt.
#[derive(Debug, Clone, Copy)]
enum Weather {
    /// The data frame never reaches the receiver.
    FrameLost,
    /// The frame arrives but the ACK is lost on the way back.
    AckLost,
    /// The frame arrives but the ACK comes back corrupted.
    AckCorrupt,
    /// Both legs succeed.
    Clean,
}

fn weather(token: u8) -> Weather {
    match token % 8 {
        0 | 1 => Weather::FrameLost,
        2 => Weather::AckLost,
        3 => Weather::AckCorrupt,
        _ => Weather::Clean,
    }
}

/// Everything observed while driving one event script.
struct RunLog {
    tx: ArqSender,
    rx: ArqReceiver,
    offers: u64,
    /// Payload ids in the order the receiver accepted them.
    accepted_ids: Vec<u16>,
    /// Sequence bits in the order the receiver accepted them.
    accepted_seqs: Vec<u8>,
}

/// Drives a sender/receiver pair through `tokens`, offering a fresh
/// uniquely-numbered payload whenever the sender is idle, then drains the
/// last payload with timeouts so every offer reaches a terminal state.
fn drive(tokens: &[u8], max_retries: u32) -> RunLog {
    let mut tx = ArqSender::new(max_retries);
    let mut rx = ArqReceiver::new();
    let mut offers = 0u64;
    let mut next_id = 0u16;
    let mut accepted_ids = Vec::new();
    let mut accepted_seqs = Vec::new();
    let mut in_flight: Option<(u8, Vec<u8>)> = None;

    for &token in tokens {
        if tx.ready() {
            let payload = next_id.to_be_bytes().to_vec();
            next_id += 1;
            if let Some(SenderAction::Transmit { seq, payload }) = tx.offer(payload) {
                offers += 1;
                in_flight = Some((seq, payload));
            }
        }
        let Some((seq, payload)) = in_flight.take() else { continue };
        match weather(token) {
            Weather::FrameLost => {
                if let SenderAction::Transmit { seq, payload } = tx.on_timeout() {
                    in_flight = Some((seq, payload));
                }
            }
            w => {
                let ack_seq = match rx.on_frame(seq, payload) {
                    ReceiveOutcome::Deliver { payload, ack_seq } => {
                        accepted_ids.push(u16::from_be_bytes([payload[0], payload[1]]));
                        accepted_seqs.push(ack_seq);
                        ack_seq
                    }
                    ReceiveOutcome::Duplicate { ack_seq } => ack_seq,
                };
                match w {
                    Weather::AckLost => {
                        if let SenderAction::Transmit { seq, payload } = tx.on_timeout() {
                            in_flight = Some((seq, payload));
                        }
                    }
                    Weather::AckCorrupt => {
                        tx.on_corrupt_ack();
                        if let SenderAction::Transmit { seq, payload } = tx.on_timeout() {
                            in_flight = Some((seq, payload));
                        }
                    }
                    _ => {
                        // A clean exchange — and the channel occasionally
                        // replays the same ACK, which must be harmless.
                        tx.on_ack(ack_seq);
                        if token & 0x10 != 0 {
                            tx.on_ack(ack_seq);
                        }
                    }
                }
            }
        }
        assert!(tx.backoff_exp() <= MAX_BACKOFF_EXP);
    }
    // Drain: time out until the last payload is delivered or dropped.
    while !tx.ready() {
        tx.on_timeout();
    }
    RunLog { tx, rx, offers, accepted_ids, accepted_seqs }
}

proptest! {
    #[test]
    fn every_offer_ends_delivered_or_dropped(
        tokens in prop::collection::vec(any::<u8>(), 1..240),
        max_retries in 1u32..6,
    ) {
        let log = drive(&tokens, max_retries);
        prop_assert_eq!(
            log.offers,
            log.tx.delivered + log.tx.dropped,
            "conservation: {} offers vs {} delivered + {} dropped",
            log.offers,
            log.tx.delivered,
            log.tx.dropped
        );
        // Every offer costs at least one transmission; retries only add.
        prop_assert!(log.tx.tx_count >= log.offers);
    }

    #[test]
    fn receiver_never_double_delivers(
        tokens in prop::collection::vec(any::<u8>(), 1..240),
        max_retries in 1u32..6,
    ) {
        let log = drive(&tokens, max_retries);
        // Accepted ids are strictly increasing — each payload at most once,
        // in offer order — under any mix of duplicate and corrupted ACKs.
        for w in log.accepted_ids.windows(2) {
            prop_assert!(w[0] < w[1], "payload {} accepted twice or reordered", w[1]);
        }
        prop_assert_eq!(log.rx.accepted, log.accepted_ids.len() as u64);
    }

    #[test]
    fn sequence_bit_alternates_across_wraparound(
        tokens in prop::collection::vec(any::<u8>(), 1..240),
        max_retries in 1u32..6,
    ) {
        let log = drive(&tokens, max_retries);
        for (i, &s) in log.accepted_seqs.iter().enumerate() {
            prop_assert!(s <= 1, "1-bit sequence escaped its alphabet: {s}");
            // The receiver only accepts the expected bit, which alternates
            // from 0 — any drop desyncs sender and receiver by design of
            // stop-and-wait, but the *accepted* stream always alternates.
            prop_assert_eq!(s, (log.accepted_seqs[0] + i as u8) % 2);
        }
    }

    #[test]
    fn timeout_scale_is_always_bounded(
        tokens in prop::collection::vec(any::<u8>(), 1..120),
        max_retries in 1u32..6,
    ) {
        let mut tx = ArqSender::new(max_retries);
        let cap = (1u64 << MAX_BACKOFF_EXP) as f64 * (1.0 + BACKOFF_JITTER);
        for &t in &tokens {
            if tx.ready() {
                tx.offer(vec![t]);
            }
            match t % 3 {
                0 => {
                    tx.on_timeout();
                }
                1 => {
                    tx.on_corrupt_ack();
                }
                _ => {
                    let seq = tx.seq();
                    tx.on_ack(seq);
                }
            }
            let s = tx.timeout_scale();
            prop_assert!((1.0..=cap).contains(&s), "timeout scale {s} outside [1, {cap}]");
        }
    }
}
