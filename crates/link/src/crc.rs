//! Cyclic redundancy checks: CRC-8 (ATM HEC polynomial), CRC-16-CCITT-FALSE
//! and CRC-32 (IEEE 802.3). Bitwise implementations — frame sizes here are
//! tens of bytes, table lookups would be tuning for the wrong bottleneck.

/// CRC-8, polynomial 0x07, init 0x00 (SMBus/ATM style).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ 0x07 } else { crc << 1 };
        }
    }
    crc
}

/// CRC-16-CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no reflection.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn crc8_check_value() {
        assert_eq!(crc8(CHECK), 0xF4);
    }

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16_ccitt(CHECK), 0x29B1);
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = CHECK.to_vec();
        let orig16 = crc16_ccitt(&data);
        let orig32 = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc16_ccitt(&data), orig16, "CRC16 missed flip {byte}.{bit}");
                assert_ne!(crc32(&data), orig32, "CRC32 missed flip {byte}.{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn detects_swapped_bytes() {
        let a = crc16_ccitt(b"AB");
        let b = crc16_ccitt(b"BA");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_inputs_defined() {
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
        assert_eq!(crc32(&[]), 0x0000_0000);
    }
}
