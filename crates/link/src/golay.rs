//! The extended binary Golay code (24, 12, 8).
//!
//! A classic for small-packet links: rate ½ like the convolutional code,
//! but block-oriented with *bounded* decoding cost — it corrects any ≤ 3
//! errors per 24-bit word with a handful of weight checks, which is a
//! plausible decode for a slightly smarter node (downlink FEC) as well as
//! the reader. Uses the standard quadratic-residue construction
//! `G = [I₁₂ | B]` with `B` symmetric and `B² = I` (both properties are
//! asserted by tests), enabling the textbook IMLD decoder.

/// The 12×12 `B` matrix, one row per `u16` (bit j = column j).
const B: [u16; 12] = [
    0b0111_1111_1111,
    0b1110_1110_0010,
    0b1101_1100_0101,
    0b1011_1000_1011,
    0b1111_0001_0110,
    0b1110_0010_1101,
    0b1100_0101_1011,
    0b1000_1011_0111,
    0b1001_0110_1110,
    0b1010_1101_1100,
    0b1101_1011_1000,
    0b1011_0111_0001,
];

#[inline]
fn weight(x: u32) -> u32 {
    x.count_ones()
}

/// Multiplies a 12-bit row vector by `B` (over GF(2)).
fn mul_b(v: u16) -> u16 {
    let mut out = 0u16;
    for (i, &row) in B.iter().enumerate() {
        if v >> (11 - i) & 1 == 1 {
            out ^= row;
        }
    }
    out
}

// NOTE on bit order: bit 11 of a `u16` word is "position 0" (leftmost),
// matching the row order of `B`. `mul_b` treats v as a row selector.

/// Encodes 12 information bits into a 24-bit codeword `(m, m·B)`,
/// packed as `(m << 12) | parity`.
pub fn golay24_encode_word(m: u16) -> u32 {
    let m = m & 0x0FFF;
    ((m as u32) << 12) | mul_b(m) as u32
}

/// Decodes a 24-bit word, correcting up to 3 bit errors.
/// Returns `(info_bits, corrected_errors)`, or `None` when the error
/// pattern is uncorrectable (≥ 4 errors detected).
pub fn golay24_decode_word(r: u32) -> Option<(u16, u32)> {
    let x = ((r >> 12) & 0x0FFF) as u16; // received info half
    let y = (r & 0x0FFF) as u16; // received parity half
    let s = mul_b(x) ^ y; // syndrome = e₁·B + e₂

    // Case 1: all errors in the parity half.
    if weight(s as u32) <= 3 {
        return Some((x, weight(s as u32)));
    }
    // Case 2: one error in the info half, ≤ 2 in parity.
    for (i, &row) in B.iter().enumerate() {
        let t = s ^ row;
        if weight(t as u32) <= 2 {
            let e1 = 1u16 << (11 - i);
            return Some((x ^ e1, 1 + weight(t as u32)));
        }
    }
    // Case 3: all errors in the info half (uses B² = I).
    let q = mul_b(s);
    if weight(q as u32) <= 3 {
        return Some((x ^ q, weight(q as u32)));
    }
    // Case 4: ≤ 2 errors in the info half, one in parity (uses B = Bᵀ).
    for (i, &row) in B.iter().enumerate() {
        let t = q ^ row;
        if weight(t as u32) <= 2 {
            return Some((x ^ t, 1 + weight(t as u32)));
        }
        let _ = i;
    }
    None
}

/// Encodes a bit stream: 12-bit blocks (zero-padded tail) → 24-bit words.
pub fn golay24_encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len().div_ceil(12) * 24);
    for chunk in bits.chunks(12) {
        let mut m = 0u16;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                m |= 1 << (11 - i);
            }
        }
        let w = golay24_encode_word(m);
        for i in (0..24).rev() {
            out.push(w >> i & 1 == 1);
        }
    }
    out
}

/// Decodes a bit stream; uncorrectable words pass their info half through
/// unchanged (the CRC above catches them). Incomplete trailing words are
/// dropped.
pub fn golay24_decode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() / 24 * 12);
    for chunk in bits.chunks(24) {
        if chunk.len() < 24 {
            break;
        }
        let mut w = 0u32;
        for &b in chunk {
            w = (w << 1) | b as u32;
        }
        let m = match golay24_decode_word(w) {
            Some((m, _)) => m,
            None => ((w >> 12) & 0x0FFF) as u16,
        };
        for i in (0..12).rev() {
            out.push(m >> i & 1 == 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use vab_util::rng::{random_bits, seeded};

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn b_matrix_is_symmetric() {
        for i in 0..12 {
            for j in 0..12 {
                let a = B[i] >> (11 - j) & 1;
                let b = B[j] >> (11 - i) & 1;
                assert_eq!(a, b, "B not symmetric at ({i},{j})");
            }
        }
    }

    #[test]
    fn b_squared_is_identity() {
        for i in 0..12 {
            let unit = 1u16 << (11 - i);
            assert_eq!(mul_b(mul_b(unit)), unit, "B² ≠ I at row {i}");
        }
    }

    #[test]
    fn codewords_have_min_weight_8() {
        // Spot-check: every nonzero single-information-bit codeword and a
        // random sample must have weight ≥ 8 (the code's minimum distance).
        for i in 0..12 {
            let w = golay24_encode_word(1 << i);
            assert!(weight(w) >= 8, "weight {} for unit {i}", weight(w));
        }
        let mut rng = seeded(81);
        for _ in 0..500 {
            let m: u16 = rng.random_range(1..4096);
            let w = golay24_encode_word(m);
            assert!(weight(w) >= 8, "weight {} for m={m:03x}", weight(w));
        }
    }

    #[test]
    fn clean_word_roundtrip() {
        for m in [0u16, 1, 0xFFF, 0xABC, 0x555] {
            let (got, errs) = golay24_decode_word(golay24_encode_word(m)).expect("clean");
            assert_eq!(got, m);
            assert_eq!(errs, 0);
        }
    }

    #[test]
    fn corrects_every_single_and_double_error() {
        let m = 0x9A5u16;
        let c = golay24_encode_word(m);
        for i in 0..24 {
            let (got, errs) = golay24_decode_word(c ^ (1 << i)).expect("1 error");
            assert_eq!(got, m, "failed single error at {i}");
            assert_eq!(errs, 1);
            for j in (i + 1)..24 {
                let (got, errs) = golay24_decode_word(c ^ (1 << i) ^ (1 << j)).expect("2 errors");
                assert_eq!(got, m, "failed double error at {i},{j}");
                assert_eq!(errs, 2);
            }
        }
    }

    #[test]
    fn corrects_triple_errors_sampled() {
        let mut rng = seeded(82);
        let m = 0x3C7u16;
        let c = golay24_encode_word(m);
        for _ in 0..2000 {
            let mut e = 0u32;
            while weight(e) < 3 {
                e |= 1u32 << rng.random_range(0..24u32);
            }
            if weight(e) > 3 {
                continue;
            }
            let (got, errs) = golay24_decode_word(c ^ e).expect("3 errors correctable");
            assert_eq!(got, m, "failed triple error {e:06x}");
            assert_eq!(errs, 3);
        }
    }

    #[test]
    fn four_errors_detected_or_miscorrected_never_panic() {
        // d=8: 4 errors are never *silently* decoded to the wrong word at
        // distance ≤ 3 from another codeword... they are either flagged
        // (None) or land on a wrong word — both must be handled gracefully.
        let mut rng = seeded(83);
        let m = 0x0F0u16;
        let c = golay24_encode_word(m);
        let mut flagged = 0;
        let mut wrong = 0;
        for _ in 0..500 {
            let mut e = 0u32;
            while weight(e) < 4 {
                e |= 1u32 << rng.random_range(0..24u32);
            }
            if weight(e) > 4 {
                continue;
            }
            match golay24_decode_word(c ^ e) {
                None => flagged += 1,
                Some((got, _)) if got != m => wrong += 1,
                Some(_) => panic!("4 errors cannot decode correctly in a distance-8 code"),
            }
        }
        assert!(flagged > 0, "some 4-error patterns must be flagged");
        let _ = wrong;
    }

    #[test]
    fn stream_roundtrip_with_padding() {
        let bits = random_bits(&mut seeded(84), 100); // pads to 108
        let coded = golay24_encode(&bits);
        assert_eq!(coded.len(), 100usize.div_ceil(12) * 24);
        let decoded = golay24_decode(&coded);
        assert_eq!(&decoded[..100], &bits[..]);
    }

    #[test]
    fn stream_corrects_scattered_errors() {
        let mut rng = seeded(85);
        let bits = random_bits(&mut rng, 240);
        let mut coded = golay24_encode(&bits);
        // Up to 3 errors per 24-bit word: flip 2 per word deterministically.
        for w in 0..coded.len() / 24 {
            let a = w * 24 + rng.random_range(0..24usize);
            coded[a] = !coded[a];
            let b = w * 24 + rng.random_range(0..24usize);
            coded[b] = !coded[b];
        }
        let decoded = golay24_decode(&coded);
        assert_eq!(&decoded[..240], &bits[..]);
    }
}
