//! Forward error correction.
//!
//! Three codes, matching what a µW-class node can actually afford to
//! *encode* (all three encoders are trivial shift-register logic; the heavy
//! Viterbi decoding runs on the reader):
//!
//! * repetition-n with majority decoding;
//! * Hamming(7,4) with single-error correction per block;
//! * convolutional K=7, rate ½ (the classic `(171, 133)` octal generators)
//!   with hard- or soft-decision Viterbi decoding.

/// Code selection carried in link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fec {
    /// No coding.
    None,
    /// Repetition code with odd factor `n`.
    Repetition(usize),
    /// Hamming(7,4).
    Hamming74,
    /// Extended Golay(24,12): corrects 3 errors per 24-bit word.
    Golay24,
    /// Convolutional K=7 R=1/2 with Viterbi decoding.
    Conv,
}

impl Fec {
    /// Code rate (information bits per channel bit).
    pub fn rate(&self) -> f64 {
        match self {
            Fec::None => 1.0,
            Fec::Repetition(n) => 1.0 / *n as f64,
            Fec::Hamming74 => 4.0 / 7.0,
            Fec::Golay24 => 0.5,
            Fec::Conv => 0.5,
        }
    }

    /// Encodes information bits into channel bits.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let _t = vab_obs::time_stage("fec.encode");
        match self {
            Fec::None => bits.to_vec(),
            Fec::Repetition(n) => repetition_encode(bits, *n),
            Fec::Hamming74 => hamming74_encode(bits),
            Fec::Golay24 => crate::golay::golay24_encode(bits),
            Fec::Conv => conv_encode(bits),
        }
    }

    /// Decodes channel bits back to information bits (hard decision).
    pub fn decode(&self, bits: &[bool]) -> Vec<bool> {
        let _t = vab_obs::time_stage("fec.decode");
        match self {
            Fec::None => bits.to_vec(),
            Fec::Repetition(n) => repetition_decode(bits, *n),
            Fec::Hamming74 => hamming74_decode(bits),
            Fec::Golay24 => crate::golay::golay24_decode(bits),
            Fec::Conv => conv_decode_hard(bits),
        }
    }

    /// Number of channel bits produced for `k` information bits.
    pub fn encoded_len(&self, k: usize) -> usize {
        match self {
            Fec::None => k,
            Fec::Repetition(n) => k * n,
            Fec::Hamming74 => k.div_ceil(4) * 7,
            Fec::Golay24 => k.div_ceil(12) * 24,
            Fec::Conv => (k + CONV_K - 1) * 2,
        }
    }
}

// --- Repetition --------------------------------------------------------

fn repetition_encode(bits: &[bool], n: usize) -> Vec<bool> {
    assert!(n >= 1 && n % 2 == 1, "repetition factor must be odd");
    let mut out = Vec::with_capacity(bits.len() * n);
    for &b in bits {
        out.extend(std::iter::repeat_n(b, n));
    }
    out
}

fn repetition_decode(bits: &[bool], n: usize) -> Vec<bool> {
    assert!(n >= 1 && n % 2 == 1, "repetition factor must be odd");
    bits.chunks(n).map(|c| c.iter().filter(|&&b| b).count() * 2 > c.len()).collect()
}

// --- Hamming(7,4) -------------------------------------------------------

/// Encodes 4-bit nibbles into 7-bit codewords `[d0 d1 d2 d3 p0 p1 p2]`.
/// Short tail nibbles are zero-padded (the framer carries the true length).
fn hamming74_encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len().div_ceil(4) * 7);
    for chunk in bits.chunks(4) {
        let mut d = [false; 4];
        d[..chunk.len()].copy_from_slice(chunk);
        let p0 = d[0] ^ d[1] ^ d[2];
        let p1 = d[1] ^ d[2] ^ d[3];
        let p2 = d[0] ^ d[1] ^ d[3];
        out.extend_from_slice(&[d[0], d[1], d[2], d[3], p0, p1, p2]);
    }
    out
}

/// Decodes 7-bit blocks, correcting any single-bit error per block.
fn hamming74_decode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() / 7 * 4);
    for chunk in bits.chunks(7) {
        if chunk.len() < 7 {
            break; // incomplete trailing block carries no data
        }
        let mut w = [false; 7];
        w.copy_from_slice(chunk);
        // Syndromes of the three parity equations.
        let s0 = w[4] ^ w[0] ^ w[1] ^ w[2];
        let s1 = w[5] ^ w[1] ^ w[2] ^ w[3];
        let s2 = w[6] ^ w[0] ^ w[1] ^ w[3];
        // Map the syndrome to the erroneous position. Each position has a
        // unique signature (s0, s1, s2):
        // d0:(1,0,1) d1:(1,1,1) d2:(1,1,0) d3:(0,1,1) p0:(1,0,0) p1:(0,1,0) p2:(0,0,1)
        let flip = match (s0, s1, s2) {
            (true, false, true) => Some(0),
            (true, true, true) => Some(1),
            (true, true, false) => Some(2),
            (false, true, true) => Some(3),
            (true, false, false) => Some(4),
            (false, true, false) => Some(5),
            (false, false, true) => Some(6),
            (false, false, false) => None,
        };
        if let Some(i) = flip {
            w[i] = !w[i];
        }
        out.extend_from_slice(&w[..4]);
    }
    out
}

// --- Convolutional K=7 R=1/2 with Viterbi -------------------------------

/// Constraint length.
pub const CONV_K: usize = 7;
const G0: u32 = 0o171; // 1111001
const G1: u32 = 0o133; // 1011011
const STATES: usize = 1 << (CONV_K - 1);

#[inline]
fn parity(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// Convolutional encoder; appends `K−1` zero tail bits to flush the
/// register, so output length is `2·(len + 6)`.
pub fn conv_encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity((bits.len() + CONV_K - 1) * 2);
    let mut reg: u32 = 0;
    for &b in bits.iter().chain(std::iter::repeat_n(&false, CONV_K - 1)) {
        reg = (reg >> 1) | ((b as u32) << (CONV_K - 1));
        out.push(parity(reg & G0));
        out.push(parity(reg & G1));
    }
    out
}

/// Hard-decision Viterbi: wraps the soft decoder with ±1 metrics.
pub fn conv_decode_hard(bits: &[bool]) -> Vec<bool> {
    let soft: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    conv_decode_soft(&soft)
}

/// Soft-decision Viterbi decoder. Input is one metric per channel bit,
/// positive meaning "probably 1" (e.g. the demodulator's soft statistic).
/// Returns the information bits (tail removed).
pub fn conv_decode_soft(metrics: &[f64]) -> Vec<bool> {
    let _t = vab_obs::time_stage("fec.viterbi");
    let n_steps = metrics.len() / 2;
    if n_steps < CONV_K {
        return Vec::new();
    }
    // Trellis tables. The decoder state is the encoder register shifted
    // down by one — i.e. the last K−1 input bits. A step with input `inp`
    // reconstructs the full register `reg = state | inp << (K−1)`, emits the
    // two generator parities, and moves to `reg >> 1`, exactly mirroring
    // [`conv_encode`].
    let mut next_state = [[0usize; 2]; STATES];
    let mut outs = [[(false, false); 2]; STATES];
    for s in 0..STATES {
        for inp in 0..2 {
            let reg = (s as u32) | ((inp as u32) << (CONV_K - 1));
            outs[s][inp] = (parity(reg & G0), parity(reg & G1));
            next_state[s][inp] = (reg >> 1) as usize;
        }
    }
    const NEG: f64 = f64::NEG_INFINITY;
    let mut metric = vec![NEG; STATES];
    metric[0] = 0.0;
    // Survivor paths as packed input bits per step.
    let mut survivors: Vec<[u8; STATES]> = Vec::with_capacity(n_steps);
    let mut prev_state: Vec<[u16; STATES]> = Vec::with_capacity(n_steps);
    for step in 0..n_steps {
        let m0 = metrics[2 * step];
        let m1 = metrics[2 * step + 1];
        let mut new_metric = vec![NEG; STATES];
        let mut surv = [0u8; STATES];
        let mut prev = [0u16; STATES];
        for s in 0..STATES {
            if metric[s] == NEG {
                continue;
            }
            for inp in 0..2 {
                let (o0, o1) = outs[s][inp];
                let branch = (if o0 { m0 } else { -m0 }) + (if o1 { m1 } else { -m1 });
                let ns = next_state[s][inp];
                let cand = metric[s] + branch;
                if cand > new_metric[ns] {
                    new_metric[ns] = cand;
                    surv[ns] = inp as u8;
                    prev[ns] = s as u16;
                }
            }
        }
        metric = new_metric;
        survivors.push(surv);
        prev_state.push(prev);
    }
    // Traceback from state 0 (the tail flushes the encoder to 0).
    let mut state = 0usize;
    let mut decoded = vec![false; n_steps];
    for step in (0..n_steps).rev() {
        decoded[step] = survivors[step][state] == 1;
        state = prev_state[step][state] as usize;
    }
    decoded.truncate(n_steps - (CONV_K - 1));
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use vab_util::rng::{random_bits, seeded};

    #[test]
    fn repetition_roundtrip_and_correction() {
        let bits = vec![true, false, true, true, false];
        let mut coded = repetition_encode(&bits, 3);
        assert_eq!(coded.len(), 15);
        // Flip one chip per repeated group — all correctable.
        coded[0] = !coded[0];
        coded[4] = !coded[4];
        coded[14] = !coded[14];
        assert_eq!(repetition_decode(&coded, 3), bits);
    }

    #[test]
    fn hamming_roundtrip_clean() {
        let bits = random_bits(&mut seeded(41), 64);
        let coded = hamming74_encode(&bits);
        assert_eq!(coded.len(), 64 / 4 * 7);
        assert_eq!(hamming74_decode(&coded), bits);
    }

    #[test]
    fn hamming_corrects_any_single_error_per_block() {
        let bits = vec![true, false, true, true];
        let coded = hamming74_encode(&bits);
        for i in 0..7 {
            let mut c = coded.clone();
            c[i] = !c[i];
            assert_eq!(hamming74_decode(&c), bits, "failed to correct position {i}");
        }
    }

    #[test]
    fn hamming_pads_short_tail() {
        let bits = vec![true, true]; // half a nibble
        let decoded = hamming74_decode(&hamming74_encode(&bits));
        assert_eq!(&decoded[..2], &bits[..]);
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn conv_roundtrip_clean() {
        let bits = random_bits(&mut seeded(42), 200);
        let coded = conv_encode(&bits);
        assert_eq!(coded.len(), (200 + 6) * 2);
        assert_eq!(conv_decode_hard(&coded), bits);
    }

    #[test]
    fn conv_corrects_scattered_errors() {
        let mut rng = seeded(43);
        let bits = random_bits(&mut rng, 300);
        let mut coded = conv_encode(&bits);
        // Flip ~4% of channel bits, scattered.
        let n_flips = coded.len() / 25;
        for _ in 0..n_flips {
            let i = rng.random_range(0..coded.len());
            coded[i] = !coded[i];
        }
        let decoded = conv_decode_hard(&coded);
        let errors = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "Viterbi should clean 4% scattered errors");
    }

    #[test]
    fn conv_soft_beats_hard_at_same_noise() {
        let mut rng = seeded(44);
        let trials = 40;
        let (mut hard_errs, mut soft_errs) = (0usize, 0usize);
        for _ in 0..trials {
            let bits = random_bits(&mut rng, 120);
            let coded = conv_encode(&bits);
            // AWGN on ±1 symbols at low SNR.
            let soft: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let s = if b { 1.0 } else { -1.0 };
                    s + 1.1 * vab_util::rng::gaussian(&mut rng)
                })
                .collect();
            let hard_in: Vec<bool> = soft.iter().map(|&m| m >= 0.0).collect();
            let hd = conv_decode_hard(&hard_in);
            let sd = conv_decode_soft(&soft);
            hard_errs += hd.iter().zip(&bits).filter(|(a, b)| a != b).count();
            soft_errs += sd.iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        assert!(soft_errs < hard_errs, "soft ({soft_errs}) should beat hard ({hard_errs})");
    }

    #[test]
    fn fec_enum_dispatch_consistency() {
        let bits = random_bits(&mut seeded(45), 96);
        for fec in [
            Fec::None,
            Fec::Repetition(3),
            Fec::Repetition(5),
            Fec::Hamming74,
            Fec::Golay24,
            Fec::Conv,
        ] {
            let coded = fec.encode(&bits);
            assert_eq!(coded.len(), fec.encoded_len(bits.len()), "{fec:?} length");
            let decoded = fec.decode(&coded);
            assert_eq!(&decoded[..bits.len()], &bits[..], "{fec:?} roundtrip");
            assert!(fec.rate() > 0.0 && fec.rate() <= 1.0);
        }
    }

    #[test]
    fn conv_empty_and_tiny_inputs() {
        assert!(conv_decode_hard(&[]).is_empty());
        let one = conv_encode(&[true]);
        assert_eq!(conv_decode_hard(&one), vec![true]);
    }
}
