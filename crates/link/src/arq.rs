//! Stop-and-wait ARQ.
//!
//! The reader polls, the node answers; round trips are long (hundreds of ms
//! at 300 m) and node memory is tiny, so stop-and-wait with a 1-bit sequence
//! number is the right-size protocol. Both ends are pure state machines —
//! no timers inside; the caller drives time via explicit events.

/// Sender (node-side) state machine.
#[derive(Debug, Clone)]
pub struct ArqSender {
    seq: u8,
    outstanding: Option<Vec<u8>>,
    retries: u32,
    max_retries: u32,
    /// Statistics: total transmissions (including retransmissions).
    pub tx_count: u64,
    /// Statistics: payloads delivered (acked).
    pub delivered: u64,
    /// Statistics: payloads dropped after exhausting retries.
    pub dropped: u64,
}

/// What the sender wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Transmit these payload bytes with this sequence number.
    Transmit { seq: u8, payload: Vec<u8> },
    /// Nothing to do.
    Idle,
}

impl ArqSender {
    /// Creates a sender allowing `max_retries` retransmissions per payload.
    pub fn new(max_retries: u32) -> Self {
        Self {
            seq: 0,
            outstanding: None,
            retries: 0,
            max_retries,
            tx_count: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// True when the previous payload is finished (acked or dropped).
    pub fn ready(&self) -> bool {
        self.outstanding.is_none()
    }

    /// Current sequence bit.
    pub fn seq(&self) -> u8 {
        self.seq
    }

    /// Offers a new payload; returns the transmit action, or `None` if one
    /// is still outstanding.
    pub fn offer(&mut self, payload: Vec<u8>) -> Option<SenderAction> {
        if self.outstanding.is_some() {
            return None;
        }
        self.outstanding = Some(payload.clone());
        self.retries = 0;
        self.tx_count += 1;
        Some(SenderAction::Transmit { seq: self.seq, payload })
    }

    /// Handles an ACK carrying the acked sequence number.
    pub fn on_ack(&mut self, acked_seq: u8) -> SenderAction {
        if self.outstanding.is_some() && acked_seq == self.seq {
            self.outstanding = None;
            self.seq ^= 1;
            self.delivered += 1;
        }
        SenderAction::Idle
    }

    /// Handles a timeout: retransmits or gives up.
    pub fn on_timeout(&mut self) -> SenderAction {
        match &self.outstanding {
            None => SenderAction::Idle,
            Some(p) => {
                if self.retries >= self.max_retries {
                    self.outstanding = None;
                    self.dropped += 1;
                    self.seq ^= 1;
                    SenderAction::Idle
                } else {
                    self.retries += 1;
                    self.tx_count += 1;
                    SenderAction::Transmit { seq: self.seq, payload: p.clone() }
                }
            }
        }
    }
}

/// Receiver (reader-side) state machine.
#[derive(Debug, Clone, Default)]
pub struct ArqReceiver {
    expected: u8,
    /// Statistics: duplicates discarded.
    pub duplicates: u64,
    /// Statistics: payloads accepted.
    pub accepted: u64,
}

/// Result of offering a received frame to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// New payload accepted; ACK `ack_seq` back.
    Deliver { payload: Vec<u8>, ack_seq: u8 },
    /// Duplicate of an already-delivered payload; re-ACK.
    Duplicate { ack_seq: u8 },
}

impl ArqReceiver {
    /// Fresh receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes a correctly-decoded frame.
    pub fn on_frame(&mut self, seq: u8, payload: Vec<u8>) -> ReceiveOutcome {
        if seq == self.expected {
            self.expected ^= 1;
            self.accepted += 1;
            ReceiveOutcome::Deliver { payload, ack_seq: seq }
        } else {
            self.duplicates += 1;
            ReceiveOutcome::Duplicate { ack_seq: seq }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_alternates_sequence() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        for i in 0..4u8 {
            let action = tx.offer(vec![i]).expect("ready");
            let SenderAction::Transmit { seq, payload } = action else { panic!() };
            assert_eq!(seq, i % 2);
            let out = rx.on_frame(seq, payload);
            let ReceiveOutcome::Deliver { ack_seq, .. } = out else { panic!("dup") };
            tx.on_ack(ack_seq);
            assert!(tx.ready());
        }
        assert_eq!(tx.delivered, 4);
        assert_eq!(rx.accepted, 4);
        assert_eq!(rx.duplicates, 0);
    }

    #[test]
    fn lost_data_frame_retransmits() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        tx.offer(vec![7]).expect("ready");
        // Frame lost → timeout → retransmit.
        let SenderAction::Transmit { seq, payload } = tx.on_timeout() else { panic!() };
        let ReceiveOutcome::Deliver { ack_seq, payload: got } = rx.on_frame(seq, payload) else {
            panic!()
        };
        assert_eq!(got, vec![7]);
        tx.on_ack(ack_seq);
        assert!(tx.ready());
        assert_eq!(tx.tx_count, 2);
        assert_eq!(tx.delivered, 1);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_reacked() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let SenderAction::Transmit { seq, payload } = tx.offer(vec![1]).expect("ready") else {
            panic!()
        };
        // Receiver gets it, but the ACK is lost.
        let _ = rx.on_frame(seq, payload);
        // Sender times out and retransmits the same seq.
        let SenderAction::Transmit { seq: seq2, payload: p2 } = tx.on_timeout() else { panic!() };
        assert_eq!(seq2, seq);
        // Receiver recognizes the duplicate and re-ACKs without delivering.
        let out = rx.on_frame(seq2, p2);
        assert_eq!(out, ReceiveOutcome::Duplicate { ack_seq: seq2 });
        tx.on_ack(seq2);
        assert!(tx.ready());
        assert_eq!(rx.accepted, 1);
        assert_eq!(rx.duplicates, 1);
    }

    #[test]
    fn gives_up_after_max_retries() {
        let mut tx = ArqSender::new(2);
        tx.offer(vec![9]).expect("ready");
        assert!(matches!(tx.on_timeout(), SenderAction::Transmit { .. })); // retry 1
        assert!(matches!(tx.on_timeout(), SenderAction::Transmit { .. })); // retry 2
        assert_eq!(tx.on_timeout(), SenderAction::Idle); // give up
        assert!(tx.ready());
        assert_eq!(tx.dropped, 1);
        assert_eq!(tx.tx_count, 3);
    }

    #[test]
    fn cannot_offer_while_outstanding() {
        let mut tx = ArqSender::new(1);
        tx.offer(vec![1]).expect("first accepted");
        assert!(tx.offer(vec![2]).is_none());
    }

    #[test]
    fn stale_ack_ignored() {
        let mut tx = ArqSender::new(3);
        tx.offer(vec![1]).expect("ready");
        tx.on_ack(1); // wrong seq (current is 0)
        assert!(!tx.ready());
    }
}
