//! Stop-and-wait ARQ.
//!
//! The reader polls, the node answers; round trips are long (hundreds of ms
//! at 300 m) and node memory is tiny, so stop-and-wait with a 1-bit sequence
//! number is the right-size protocol. Both ends are pure state machines —
//! no timers inside; the caller drives time via explicit events.
//!
//! ## Graceful degradation
//!
//! Sustained loss (impulsive-noise storms, harvest blackouts) used to make
//! the sender hammer the channel at a fixed cadence. The sender now keeps a
//! bounded exponential backoff driven by recent loss: each timeout doubles
//! the recommended timeout multiplier ([`ArqSender::timeout_scale`], capped
//! at [`MAX_BACKOFF_EXP`] doublings) and each delivery halves it. A small
//! deterministic jitter decorrelates retry instants across nodes without
//! any RNG inside the state machine.

use vab_util::rng::derive_seed;

/// Cap on backoff doublings: timeouts stretch at most `2^MAX_BACKOFF_EXP`×
/// (64× — minutes, not hours, at VAB round-trip times).
pub const MAX_BACKOFF_EXP: u32 = 6;

/// Fractional jitter span applied on top of the exponential scale.
pub const BACKOFF_JITTER: f64 = 0.25;

/// Sender (node-side) state machine.
#[derive(Debug, Clone)]
pub struct ArqSender {
    seq: u8,
    outstanding: Option<Vec<u8>>,
    retries: u32,
    max_retries: u32,
    /// Current backoff level (doublings of the base timeout).
    backoff_exp: u32,
    /// Statistics: total transmissions (including retransmissions).
    pub tx_count: u64,
    /// Statistics: payloads delivered (acked).
    pub delivered: u64,
    /// Statistics: payloads dropped after exhausting retries.
    pub dropped: u64,
    /// Statistics: ACKs that arrived corrupted (fault-plan protocol hook).
    pub corrupt_acks: u64,
}

/// What the sender wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Transmit these payload bytes with this sequence number.
    Transmit { seq: u8, payload: Vec<u8> },
    /// Nothing to do.
    Idle,
}

impl ArqSender {
    /// Creates a sender allowing `max_retries` retransmissions per payload.
    pub fn new(max_retries: u32) -> Self {
        Self {
            seq: 0,
            outstanding: None,
            retries: 0,
            max_retries,
            backoff_exp: 0,
            tx_count: 0,
            delivered: 0,
            dropped: 0,
            corrupt_acks: 0,
        }
    }

    /// Recommended timeout multiplier for the *next* wait: `2^backoff ×
    /// (1 + jitter)`, where the jitter is a deterministic hash of the
    /// sender's progress counters (so two nodes with identical histories
    /// but different traffic still decorrelate, with no RNG in the state
    /// machine). Always ≥ 1; bounded by `2^`[`MAX_BACKOFF_EXP`]` × (1 +
    /// `[`BACKOFF_JITTER`]`)`.
    pub fn timeout_scale(&self) -> f64 {
        let base = (1u64 << self.backoff_exp) as f64;
        let h = derive_seed(self.tx_count ^ (self.seq as u64) << 32, self.retries as u64);
        let jitter = (h % 1024) as f64 / 1024.0 * BACKOFF_JITTER;
        base * (1.0 + jitter)
    }

    /// Current backoff level (number of timeout doublings in force).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }

    /// Consumes a corrupted-ACK fault: the payload stays outstanding (the
    /// sender cannot trust the corrupted frame) and loss pressure rises as
    /// if a timeout had occurred. The caller follows up with
    /// [`ArqSender::on_timeout`] once the (scaled) timer expires.
    pub fn on_corrupt_ack(&mut self) -> SenderAction {
        self.corrupt_acks += 1;
        if self.outstanding.is_some() {
            self.backoff_exp = (self.backoff_exp + 1).min(MAX_BACKOFF_EXP);
        }
        vab_obs::event!(
            "link.arq",
            "corrupt_ack",
            seq = self.seq,
            backoff_exp = self.backoff_exp,
            total = self.corrupt_acks,
        );
        vab_obs::metrics::inc("arq.corrupt_acks", 1);
        SenderAction::Idle
    }

    /// True when the previous payload is finished (acked or dropped).
    pub fn ready(&self) -> bool {
        self.outstanding.is_none()
    }

    /// Current sequence bit.
    pub fn seq(&self) -> u8 {
        self.seq
    }

    /// Offers a new payload; returns the transmit action, or `None` if one
    /// is still outstanding.
    pub fn offer(&mut self, payload: Vec<u8>) -> Option<SenderAction> {
        if self.outstanding.is_some() {
            return None;
        }
        self.outstanding = Some(payload.clone());
        self.retries = 0;
        self.tx_count += 1;
        Some(SenderAction::Transmit { seq: self.seq, payload })
    }

    /// Handles an ACK carrying the acked sequence number. Delivery relaxes
    /// the backoff by one level (recent-loss pressure decays).
    pub fn on_ack(&mut self, acked_seq: u8) -> SenderAction {
        if self.outstanding.is_some() && acked_seq == self.seq {
            self.outstanding = None;
            self.seq ^= 1;
            self.delivered += 1;
            self.backoff_exp = self.backoff_exp.saturating_sub(1);
        }
        SenderAction::Idle
    }

    /// Handles a timeout: retransmits or gives up. Either way the loss
    /// raises the backoff level (bounded).
    pub fn on_timeout(&mut self) -> SenderAction {
        match &self.outstanding {
            None => SenderAction::Idle,
            Some(p) => {
                self.backoff_exp = (self.backoff_exp + 1).min(MAX_BACKOFF_EXP);
                if self.retries >= self.max_retries {
                    self.outstanding = None;
                    self.dropped += 1;
                    self.seq ^= 1;
                    vab_obs::event!(
                        "link.arq",
                        "drop",
                        retries = self.retries,
                        total_dropped = self.dropped,
                    );
                    vab_obs::metrics::inc("arq.drops", 1);
                    SenderAction::Idle
                } else {
                    self.retries += 1;
                    self.tx_count += 1;
                    vab_obs::event!(
                        "link.arq",
                        "retransmit",
                        seq = self.seq,
                        retry = self.retries,
                        backoff_exp = self.backoff_exp,
                    );
                    vab_obs::metrics::inc("arq.retransmits", 1);
                    SenderAction::Transmit { seq: self.seq, payload: p.clone() }
                }
            }
        }
    }
}

/// Receiver (reader-side) state machine.
#[derive(Debug, Clone, Default)]
pub struct ArqReceiver {
    expected: u8,
    /// Statistics: duplicates discarded.
    pub duplicates: u64,
    /// Statistics: payloads accepted.
    pub accepted: u64,
}

/// Result of offering a received frame to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// New payload accepted; ACK `ack_seq` back.
    Deliver { payload: Vec<u8>, ack_seq: u8 },
    /// Duplicate of an already-delivered payload; re-ACK.
    Duplicate { ack_seq: u8 },
}

impl ArqReceiver {
    /// Fresh receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes a correctly-decoded frame.
    pub fn on_frame(&mut self, seq: u8, payload: Vec<u8>) -> ReceiveOutcome {
        if seq == self.expected {
            self.expected ^= 1;
            self.accepted += 1;
            ReceiveOutcome::Deliver { payload, ack_seq: seq }
        } else {
            self.duplicates += 1;
            ReceiveOutcome::Duplicate { ack_seq: seq }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_alternates_sequence() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        for i in 0..4u8 {
            let action = tx.offer(vec![i]).expect("ready");
            let SenderAction::Transmit { seq, payload } = action else { panic!() };
            assert_eq!(seq, i % 2);
            let out = rx.on_frame(seq, payload);
            let ReceiveOutcome::Deliver { ack_seq, .. } = out else { panic!("dup") };
            tx.on_ack(ack_seq);
            assert!(tx.ready());
        }
        assert_eq!(tx.delivered, 4);
        assert_eq!(rx.accepted, 4);
        assert_eq!(rx.duplicates, 0);
    }

    #[test]
    fn lost_data_frame_retransmits() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        tx.offer(vec![7]).expect("ready");
        // Frame lost → timeout → retransmit.
        let SenderAction::Transmit { seq, payload } = tx.on_timeout() else { panic!() };
        let ReceiveOutcome::Deliver { ack_seq, payload: got } = rx.on_frame(seq, payload) else {
            panic!()
        };
        assert_eq!(got, vec![7]);
        tx.on_ack(ack_seq);
        assert!(tx.ready());
        assert_eq!(tx.tx_count, 2);
        assert_eq!(tx.delivered, 1);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_reacked() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let SenderAction::Transmit { seq, payload } = tx.offer(vec![1]).expect("ready") else {
            panic!()
        };
        // Receiver gets it, but the ACK is lost.
        let _ = rx.on_frame(seq, payload);
        // Sender times out and retransmits the same seq.
        let SenderAction::Transmit { seq: seq2, payload: p2 } = tx.on_timeout() else { panic!() };
        assert_eq!(seq2, seq);
        // Receiver recognizes the duplicate and re-ACKs without delivering.
        let out = rx.on_frame(seq2, p2);
        assert_eq!(out, ReceiveOutcome::Duplicate { ack_seq: seq2 });
        tx.on_ack(seq2);
        assert!(tx.ready());
        assert_eq!(rx.accepted, 1);
        assert_eq!(rx.duplicates, 1);
    }

    #[test]
    fn gives_up_after_max_retries() {
        let mut tx = ArqSender::new(2);
        tx.offer(vec![9]).expect("ready");
        assert!(matches!(tx.on_timeout(), SenderAction::Transmit { .. })); // retry 1
        assert!(matches!(tx.on_timeout(), SenderAction::Transmit { .. })); // retry 2
        assert_eq!(tx.on_timeout(), SenderAction::Idle); // give up
        assert!(tx.ready());
        assert_eq!(tx.dropped, 1);
        assert_eq!(tx.tx_count, 3);
    }

    #[test]
    fn cannot_offer_while_outstanding() {
        let mut tx = ArqSender::new(1);
        tx.offer(vec![1]).expect("first accepted");
        assert!(tx.offer(vec![2]).is_none());
    }

    #[test]
    fn stale_ack_ignored() {
        let mut tx = ArqSender::new(3);
        tx.offer(vec![1]).expect("ready");
        tx.on_ack(1); // wrong seq (current is 0)
        assert!(!tx.ready());
    }

    #[test]
    fn backoff_grows_on_loss_and_is_bounded() {
        let mut tx = ArqSender::new(100);
        assert_eq!(tx.backoff_exp(), 0);
        assert!(tx.timeout_scale() >= 1.0 && tx.timeout_scale() < 1.0 + BACKOFF_JITTER);
        tx.offer(vec![1]).expect("ready");
        let mut last = 0.0;
        for _ in 0..4 {
            tx.on_timeout();
            let s = tx.timeout_scale();
            assert!(s > last, "scale must grow: {s} after {last}");
            last = s;
        }
        // Bounded: many more timeouts never exceed the cap.
        for _ in 0..50 {
            tx.on_timeout();
        }
        assert_eq!(tx.backoff_exp(), MAX_BACKOFF_EXP);
        let cap = (1u64 << MAX_BACKOFF_EXP) as f64 * (1.0 + BACKOFF_JITTER);
        assert!(tx.timeout_scale() <= cap);
    }

    #[test]
    fn backoff_relaxes_on_delivery() {
        let mut tx = ArqSender::new(100);
        let mut rx = ArqReceiver::new();
        tx.offer(vec![1]).expect("ready");
        tx.on_timeout();
        tx.on_timeout();
        assert_eq!(tx.backoff_exp(), 2);
        // A delivered exchange halves the pressure.
        let SenderAction::Transmit { seq, payload } = tx.on_timeout() else { panic!() };
        let ReceiveOutcome::Deliver { ack_seq, .. } = rx.on_frame(seq, payload) else { panic!() };
        tx.on_ack(ack_seq);
        assert_eq!(tx.backoff_exp(), 2, "3 timeouts then 1 ack → 3 − 1 = 2");
        // Further clean exchanges decay it to zero.
        for _ in 0..3 {
            let SenderAction::Transmit { seq, payload } = tx.offer(vec![2]).expect("ready") else {
                panic!()
            };
            let ReceiveOutcome::Deliver { ack_seq, .. } = rx.on_frame(seq, payload) else {
                panic!()
            };
            tx.on_ack(ack_seq);
        }
        assert_eq!(tx.backoff_exp(), 0);
    }

    #[test]
    fn corrupt_ack_keeps_payload_outstanding() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let SenderAction::Transmit { seq, payload } = tx.offer(vec![5]).expect("ready") else {
            panic!()
        };
        // Receiver delivers, but the ACK comes back corrupted.
        let _ = rx.on_frame(seq, payload);
        tx.on_corrupt_ack();
        assert!(!tx.ready(), "corrupted ACK must not complete the exchange");
        assert_eq!(tx.corrupt_acks, 1);
        assert_eq!(tx.backoff_exp(), 1, "corruption is loss pressure");
        // Timeout → retransmit → duplicate path re-ACKs and completes.
        let SenderAction::Transmit { seq: s2, payload: p2 } = tx.on_timeout() else { panic!() };
        let ReceiveOutcome::Duplicate { ack_seq } = rx.on_frame(s2, p2) else { panic!() };
        tx.on_ack(ack_seq);
        assert!(tx.ready());
        assert_eq!(tx.delivered, 1);
        assert_eq!(rx.accepted, 1, "payload delivered exactly once");
    }

    #[test]
    fn timeout_scale_jitter_stays_in_band() {
        let mut tx = ArqSender::new(100);
        tx.offer(vec![1]).expect("ready");
        for _ in 0..20 {
            tx.on_timeout();
            let base = (1u64 << tx.backoff_exp()) as f64;
            let s = tx.timeout_scale();
            assert!(s >= base && s <= base * (1.0 + BACKOFF_JITTER), "scale {s} vs base {base}");
        }
    }
}
