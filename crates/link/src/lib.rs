//! # vab-link — link layer: framing, CRC, FEC, interleaving, ARQ
//!
//! Everything between raw PHY bits and node payloads:
//!
//! * [`crc`] — CRC-8 / CRC-16-CCITT / CRC-32 integrity checks;
//! * [`fec`] — repetition, Hamming(7,4), extended Golay(24,12) and K=7
//!   rate-½ convolutional codes (hard and soft Viterbi decoding);
//! * [`interleave`] — block interleaving against burst errors (surface-wave
//!   fades are bursty);
//! * [`whiten`] — PN9 scrambling so FM0 sees balanced data;
//! * [`frame`] — the uplink/downlink frame format;
//! * [`arq`] — stop-and-wait retransmission for lossy links.

pub mod arq;
pub mod bits;
pub mod crc;
pub mod fec;
pub mod frame;
pub mod golay;
pub mod interleave;
pub mod whiten;

pub use fec::Fec;
pub use frame::{Frame, FrameError, LinkConfig};
