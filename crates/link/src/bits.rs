//! Bit/byte conversions used across the link layer. LSB-first within each
//! byte (matching the shift-register hardware a node would use).

/// Expands bytes into bits, LSB first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push(b >> i & 1 == 1);
        }
    }
    bits
}

/// Packs bits into bytes, LSB first. Trailing partial bytes are zero-padded.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let data = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn lsb_first_order() {
        let bits = bytes_to_bits(&[0b0000_0001]);
        assert!(bits[0]);
        assert!(bits[1..].iter().all(|&b| !b));
    }

    #[test]
    fn partial_byte_zero_padded() {
        let bits = vec![true, false, true]; // 0b101 = 5
        assert_eq!(bits_to_bytes(&bits), vec![5u8]);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(bytes_to_bits(&[]).is_empty());
        assert!(bits_to_bytes(&[]).is_empty());
    }
}
