//! Block interleaving.
//!
//! Surface-wave fades and impulsive snapping-shrimp noise hit the underwater
//! channel in bursts; a rows×cols block interleaver spreads a burst of up to
//! `rows` consecutive channel errors across different FEC codewords.

/// A rows×cols block interleaver. Bits fill the block row-by-row and drain
/// column-by-column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    /// Burst-tolerance dimension.
    pub rows: usize,
    /// Codeword-spread dimension.
    pub cols: usize,
}

impl Interleaver {
    /// Creates an interleaver. Both dimensions must be ≥ 1.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Self { rows, cols }
    }

    /// Block size in bits.
    pub fn block_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Interleaves; input is padded with `false` to a whole block.
    pub fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        let block = self.block_len();
        let padded_len = bits.len().div_ceil(block) * block;
        let mut padded = bits.to_vec();
        padded.resize(padded_len, false);
        let mut out = Vec::with_capacity(padded_len);
        for chunk in padded.chunks(block) {
            for c in 0..self.cols {
                for r in 0..self.rows {
                    out.push(chunk[r * self.cols + c]);
                }
            }
        }
        out
    }

    /// Inverse permutation. Input length must be a whole number of blocks.
    pub fn deinterleave(&self, bits: &[bool]) -> Vec<bool> {
        self.deinterleave_symbols(bits, false)
    }

    /// Inverse permutation over soft metrics (for soft-decision decoding
    /// after the channel). Input length must be a whole number of blocks.
    pub fn deinterleave_soft(&self, metrics: &[f64]) -> Vec<f64> {
        self.deinterleave_symbols(metrics, 0.0)
    }

    fn deinterleave_symbols<T: Copy>(&self, symbols: &[T], zero: T) -> Vec<T> {
        let block = self.block_len();
        assert!(symbols.len().is_multiple_of(block), "deinterleave needs whole blocks");
        let mut out = Vec::with_capacity(symbols.len());
        for chunk in symbols.chunks(block) {
            let mut plain = vec![zero; block];
            let mut i = 0;
            for c in 0..self.cols {
                for r in 0..self.rows {
                    plain[r * self.cols + c] = chunk[i];
                    i += 1;
                }
            }
            out.extend_from_slice(&plain);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::{random_bits, seeded};

    #[test]
    fn roundtrip_exact_block() {
        let il = Interleaver::new(4, 8);
        let bits = random_bits(&mut seeded(51), 32);
        let rt = il.deinterleave(&il.interleave(&bits));
        assert_eq!(rt, bits);
    }

    #[test]
    fn roundtrip_with_padding() {
        let il = Interleaver::new(3, 5);
        let bits = random_bits(&mut seeded(52), 20); // pads to 30
        let rt = il.deinterleave(&il.interleave(&bits));
        assert_eq!(&rt[..20], &bits[..]);
        assert_eq!(rt.len(), 30);
    }

    #[test]
    fn burst_is_dispersed() {
        let il = Interleaver::new(8, 16);
        let bits = vec![false; 128];
        let mut tx = il.interleave(&bits);
        // Channel burst: 8 consecutive flips.
        for b in tx.iter_mut().take(40).skip(32) {
            *b = !*b;
        }
        let rx = il.deinterleave(&tx);
        // After deinterleaving, no 16-bit codeword window should contain
        // more than 1 error.
        for (w, window) in rx.chunks(16).enumerate() {
            let errs = window.iter().filter(|&&b| b).count();
            assert!(errs <= 1, "codeword {w} got {errs} errors");
        }
    }

    #[test]
    fn soft_deinterleave_matches_hard_permutation() {
        let il = Interleaver::new(4, 8);
        let bits = random_bits(&mut seeded(54), 32);
        let tx = il.interleave(&bits);
        let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let rx_soft = il.deinterleave_soft(&soft);
        let rx_hard = il.deinterleave(&tx);
        for (s, h) in rx_soft.iter().zip(&rx_hard) {
            assert_eq!(*s >= 0.0, *h);
        }
    }

    #[test]
    fn identity_when_single_row() {
        let il = Interleaver::new(1, 7);
        let bits = random_bits(&mut seeded(53), 14);
        assert_eq!(il.interleave(&bits), bits);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn ragged_deinterleave_panics() {
        Interleaver::new(2, 4).deinterleave(&[true; 7]);
    }
}
