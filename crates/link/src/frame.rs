//! The VAB link frame.
//!
//! Wire layout (before whitening/FEC/interleaving):
//!
//! ```text
//! ┌──────┬──────┬─────┬─────┬───────────┬────────┐
//! │ dest │ src  │ seq │ len │ payload   │ CRC-16 │
//! │ 1 B  │ 1 B  │ 1 B │ 1 B │ len bytes │ 2 B    │
//! └──────┴──────┴─────┴─────┴───────────┴────────┘
//! ```
//!
//! The whole frame is whitened, FEC-encoded and interleaved according to the
//! [`LinkConfig`]; the PHY preamble is added by `vab-phy`.

use crate::bits::{bits_to_bytes, bytes_to_bits};
use crate::crc::crc16_ccitt;
use crate::fec::Fec;
use crate::interleave::Interleaver;
use crate::whiten::whiten;

/// Broadcast address.
pub const ADDR_BROADCAST: u8 = 0xFF;
/// Maximum payload length in bytes.
pub const MAX_PAYLOAD: usize = 64;

/// Frame header + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination node address (0xFF = broadcast).
    pub dest: u8,
    /// Source address.
    pub src: u8,
    /// Sequence number (ARQ).
    pub seq: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame; panics if the payload exceeds [`MAX_PAYLOAD`].
    pub fn new(dest: u8, src: u8, seq: u8, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= MAX_PAYLOAD, "payload too long");
        Self { dest, src, seq, payload }
    }

    /// Serialized (pre-coding) byte image including the CRC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(6 + self.payload.len());
        bytes.push(self.dest);
        bytes.push(self.src);
        bytes.push(self.seq);
        bytes.push(self.payload.len() as u8);
        bytes.extend_from_slice(&self.payload);
        let crc = crc16_ccitt(&bytes);
        bytes.push((crc >> 8) as u8);
        bytes.push((crc & 0xFF) as u8);
        bytes
    }

    /// Parses and CRC-checks a byte image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < 6 {
            return Err(FrameError::TooShort);
        }
        let len = bytes[3] as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::BadLength);
        }
        let total = 4 + len + 2;
        if bytes.len() < total {
            return Err(FrameError::TooShort);
        }
        let body = &bytes[..4 + len];
        let want = crc16_ccitt(body);
        let got = ((bytes[4 + len] as u16) << 8) | bytes[5 + len] as u16;
        if want != got {
            return Err(FrameError::BadCrc);
        }
        Ok(Frame {
            dest: bytes[0],
            src: bytes[1],
            seq: bytes[2],
            payload: bytes[4..4 + len].to_vec(),
        })
    }
}

/// Framing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes for a complete frame.
    TooShort,
    /// Length field exceeds the maximum.
    BadLength,
    /// CRC mismatch.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame truncated"),
            FrameError::BadLength => write!(f, "length field out of range"),
            FrameError::BadCrc => write!(f, "CRC mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Link-layer channel-coding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// FEC applied after whitening.
    pub fec: Fec,
    /// Interleaver applied after FEC (None disables).
    pub interleaver: Option<Interleaver>,
    /// Whether PN9 whitening is applied.
    pub whitening: bool,
}

impl LinkConfig {
    /// The default VAB uplink: convolutional FEC, 8×16 interleaver,
    /// whitening on.
    pub fn vab_default() -> Self {
        Self { fec: Fec::Conv, interleaver: Some(Interleaver::new(8, 16)), whitening: true }
    }

    /// Uncoded configuration (raw BER experiments).
    pub fn uncoded() -> Self {
        Self { fec: Fec::None, interleaver: None, whitening: false }
    }

    /// Encodes a frame into channel bits ready for the modulator.
    pub fn encode(&self, frame: &Frame) -> Vec<bool> {
        let mut bits = bytes_to_bits(&frame.to_bytes());
        if self.whitening {
            bits = whiten(&bits);
        }
        bits = self.fec.encode(&bits);
        if let Some(il) = &self.interleaver {
            bits = il.interleave(&bits);
        }
        bits
    }

    /// Number of channel bits [`LinkConfig::encode`] produces for a frame
    /// with `payload_len` payload bytes.
    pub fn encoded_len(&self, payload_len: usize) -> usize {
        let raw = (6 + payload_len) * 8;
        let coded = self.fec.encoded_len(raw);
        match &self.interleaver {
            Some(il) => coded.div_ceil(il.block_len()) * il.block_len(),
            None => coded,
        }
    }

    /// Decodes channel bits back into a frame.
    pub fn decode(&self, channel_bits: &[bool]) -> Result<Frame, FrameError> {
        let mut bits = channel_bits.to_vec();
        if let Some(il) = &self.interleaver {
            let block = il.block_len();
            let whole = bits.len() / block * block;
            bits.truncate(whole);
            bits = il.deinterleave(&bits);
        }
        bits = self.fec.decode(&bits);
        if self.whitening {
            bits = whiten(&bits);
        }
        Frame::from_bytes(&bits_to_bytes(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use vab_util::rng::{random_bytes, seeded};

    #[test]
    fn frame_roundtrip_bytes() {
        let f = Frame::new(0x12, 0x01, 7, vec![1, 2, 3, 4]);
        let parsed = Frame::from_bytes(&f.to_bytes()).expect("clean parse");
        assert_eq!(parsed, f);
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let f = Frame::new(0x12, 0x01, 7, vec![9; 10]);
        let mut bytes = f.to_bytes();
        bytes[6] ^= 0x40;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadCrc));
    }

    #[test]
    fn truncated_frame_detected() {
        let f = Frame::new(1, 2, 3, vec![0; 20]);
        let bytes = f.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes[..10]), Err(FrameError::TooShort));
        assert_eq!(Frame::from_bytes(&[]), Err(FrameError::TooShort));
    }

    #[test]
    fn absurd_length_field_rejected() {
        // Handcraft a header claiming 200 payload bytes.
        let bytes = vec![1, 2, 3, 200, 0, 0, 0, 0];
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadLength));
    }

    #[test]
    fn empty_payload_is_valid() {
        let f = Frame::new(5, 6, 0, vec![]);
        assert_eq!(Frame::from_bytes(&f.to_bytes()).expect("parse"), f);
    }

    #[test]
    fn coded_roundtrip_all_configs() {
        let mut rng = seeded(61);
        for cfg in [
            LinkConfig::uncoded(),
            LinkConfig { fec: Fec::Repetition(3), interleaver: None, whitening: true },
            LinkConfig {
                fec: Fec::Hamming74,
                interleaver: Some(Interleaver::new(4, 7)),
                whitening: true,
            },
            LinkConfig::vab_default(),
        ] {
            let f = Frame::new(3, 1, 42, random_bytes(&mut rng, 16));
            let bits = cfg.encode(&f);
            assert_eq!(bits.len(), cfg.encoded_len(16), "{cfg:?} length mismatch");
            let decoded = cfg.decode(&bits).expect("clean channel decode");
            assert_eq!(decoded, f, "{cfg:?}");
        }
    }

    #[test]
    fn vab_config_survives_burst_errors() {
        let mut rng = seeded(62);
        let cfg = LinkConfig::vab_default();
        let f = Frame::new(3, 1, 9, random_bytes(&mut rng, 24));
        let mut bits = cfg.encode(&f);
        // A burst of 6 consecutive channel errors (surface fade).
        let start = rng.random_range(0..bits.len() - 6);
        for b in bits.iter_mut().skip(start).take(6) {
            *b = !*b;
        }
        let decoded = cfg.decode(&bits).expect("interleaver+Viterbi should absorb the burst");
        assert_eq!(decoded, f);
    }

    #[test]
    fn uncoded_config_fails_on_burst() {
        let mut rng = seeded(63);
        let cfg = LinkConfig::uncoded();
        let f = Frame::new(3, 1, 9, random_bytes(&mut rng, 24));
        let mut bits = cfg.encode(&f);
        for b in bits.iter_mut().skip(40).take(6) {
            *b = !*b;
        }
        assert!(cfg.decode(&bits).is_err());
    }

    #[test]
    #[should_panic(expected = "payload too long")]
    fn oversized_payload_rejected() {
        let _ = Frame::new(1, 2, 3, vec![0; MAX_PAYLOAD + 1]);
    }
}
