//! PN9 data whitening.
//!
//! XORs the bit stream with the output of the standard 9-bit LFSR
//! (x⁹ + x⁵ + 1, all-ones seed — the same scrambler 802.15.4/CC11xx radios
//! use). Whitening removes long runs from pathological payloads so the FM0
//! waveform stays balanced and the sync correlator sees no fake preambles.

/// The PN9 keystream generator.
#[derive(Debug, Clone)]
pub struct Pn9 {
    state: u16,
}

impl Default for Pn9 {
    fn default() -> Self {
        Self::new()
    }
}

impl Pn9 {
    /// Standard all-ones initial state.
    pub fn new() -> Self {
        Self { state: 0x1FF }
    }

    /// Next keystream bit.
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 == 1;
        let fb = (self.state & 1) ^ ((self.state >> 5) & 1);
        self.state = (self.state >> 1) | (fb << 8);
        out
    }
}

/// Whitens (or de-whitens — the operation is an involution) a bit stream.
pub fn whiten(bits: &[bool]) -> Vec<bool> {
    let mut pn = Pn9::new();
    bits.iter().map(|&b| b ^ pn.next_bit()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitening_is_involution() {
        let bits: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        assert_eq!(whiten(&whiten(&bits)), bits);
    }

    #[test]
    fn kills_long_runs() {
        let zeros = vec![false; 511];
        let w = whiten(&zeros);
        // Longest run in PN9 output is 9; assert nothing pathological.
        let mut longest = 0;
        let mut run = 0;
        let mut last = !w[0];
        for &b in &w {
            if b == last {
                run += 1;
            } else {
                run = 1;
                last = b;
            }
            longest = longest.max(run);
        }
        assert!(longest <= 9, "run of {longest}");
    }

    #[test]
    fn pn9_period_is_511() {
        let mut pn = Pn9::new();
        let first: Vec<bool> = (0..511).map(|_| pn.next_bit()).collect();
        let second: Vec<bool> = (0..511).map(|_| pn.next_bit()).collect();
        assert_eq!(first, second);
        // And it is not shorter: the two halves of a period differ.
        assert_ne!(&first[..255], &first[256..511]);
    }

    #[test]
    fn balanced_output() {
        let mut pn = Pn9::new();
        let ones = (0..511).filter(|_| pn.next_bit()).count();
        assert_eq!(ones, 256); // maximal-length LFSR property
    }
}
