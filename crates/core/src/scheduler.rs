//! Harvest-aware duty-cycle scheduling.
//!
//! Past the battery-free sustain radius a node cannot listen continuously;
//! it must bank energy while sleeping and spend it in short listen/reply
//! windows. This module computes the sustainable schedule from first
//! principles (energy-neutral operation) and provides a planner the reader
//! uses to know *when* a far node will next be awake.

use vab_harvest::budget::{NodeMode, PowerBudget};
use vab_util::units::{Seconds, Watts};

/// Fraction of the harvested power the planner allows schedules to spend.
///
/// The remaining 10 % absorbs rectifier-efficiency drift, capacitor
/// leakage growth, and harvest estimation error — a schedule that needs
/// every harvested microwatt browns out on the first bad estimate.
pub const ENERGY_MARGIN: f64 = 0.9;

/// Relative tolerance when comparing harvest against average draw, so a
/// schedule planned exactly at the energy-neutral boundary still reports
/// itself sustainable despite floating-point rounding.
pub const SUSTAIN_REL_TOL: f64 = 1e-9;

/// Extra derating applied to the harvest estimate when re-planning after
/// a brownout: the estimate just proved optimistic, so plan the next
/// schedule as if only half the margin-adjusted harvest were available.
pub const BROWNOUT_DERATE: f64 = 0.5;

/// A periodic wake schedule: `period` seconds between wake-ups, each with a
/// listen window and (at most) one reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutySchedule {
    /// Wake-up period.
    pub period: Seconds,
    /// Listen window per wake-up.
    pub listen: Seconds,
    /// Reply (backscatter) window per wake-up.
    pub reply: Seconds,
}

impl DutySchedule {
    /// Fraction of time spent listening.
    pub fn listen_duty(&self) -> f64 {
        self.listen.value() / self.period.value()
    }

    /// Average power drawn under this schedule for a given budget.
    pub fn average_power(&self, budget: &PowerBudget) -> Watts {
        let p = self.period.value();
        budget.duty_cycled(self.listen.value() / p, self.reply.value() / p)
    }

    /// Whether `harvested` sustains this schedule indefinitely
    /// (energy-neutral operation with the [`ENERGY_MARGIN`] headroom).
    pub fn sustainable(&self, budget: &PowerBudget, harvested: Watts) -> bool {
        harvested.value() * ENERGY_MARGIN
            >= self.average_power(budget).value() * (1.0 - SUSTAIN_REL_TOL)
    }
}

/// Plans the most responsive energy-neutral schedule: the shortest wake
/// period such that `harvested` covers the average draw, for a fixed
/// listen window and reply window.
///
/// Returns `None` when even an arbitrarily long period cannot fund the
/// wake-ups (harvest below sleep floor + amortized wake cost → node dies).
pub fn plan_schedule(
    budget: &PowerBudget,
    harvested: Watts,
    listen: Seconds,
    reply: Seconds,
    max_period: Seconds,
) -> Option<DutySchedule> {
    let h = harvested.value() * ENERGY_MARGIN;
    let sleep = budget.total(NodeMode::Sleep).value();
    if h <= sleep {
        return None; // cannot even fund deep sleep
    }
    // Energy per wake-up beyond sleep baseline:
    let e_wake = (budget.total(NodeMode::Listen).value() - sleep) * listen.value()
        + (budget.total(NodeMode::Backscatter).value() - sleep) * reply.value();
    // Energy-neutral: h·T ≥ sleep·T + e_wake  →  T ≥ e_wake/(h − sleep).
    let t_min = e_wake / (h - sleep);
    let period = t_min.max(listen.value() + reply.value());
    if period > max_period.value() {
        return None;
    }
    Some(DutySchedule { period: Seconds(period), listen, reply })
}

/// The responsiveness frontier: wake period vs. harvested power, for
/// reporting (each row of the energy experiments).
pub fn min_period_s(
    budget: &PowerBudget,
    harvested: Watts,
    listen: Seconds,
    reply: Seconds,
) -> Option<f64> {
    plan_schedule(budget, harvested, listen, reply, Seconds(f64::INFINITY))
        .map(|s| s.period.value())
}

/// Re-plans after a brownout: the previous schedule drained the capacitor,
/// which means the harvest estimate it was planned against was optimistic.
/// Derates the estimate by [`BROWNOUT_DERATE`] and plans again with the
/// same windows and cap.
///
/// Returns `None` when even the derated re-plan cannot be funded — the
/// node should fall back to opportunistic (cold-start) operation.
pub fn replan_after_brownout(
    budget: &PowerBudget,
    harvested: Watts,
    previous: &DutySchedule,
    max_period: Seconds,
) -> Option<DutySchedule> {
    let derated = Watts(harvested.value() * BROWNOUT_DERATE);
    let next = plan_schedule(budget, derated, previous.listen, previous.reply, max_period);
    vab_obs::event!(
        "core.scheduler",
        "brownout_replan",
        harvested_uw = harvested.value() * 1e6,
        derated_uw = derated.value() * 1e6,
        prev_period_s = previous.period.value(),
        fundable = next.is_some(),
    );
    vab_obs::metrics::inc("scheduler.brownout_replans", 1);
    let next = next?;
    // Monotonicity guard: the recovery schedule must never be more
    // aggressive than the one that browned out.
    Some(DutySchedule { period: Seconds(next.period.value().max(previous.period.value())), ..next })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    fn budget() -> PowerBudget {
        PowerBudget::vab_node()
    }

    #[test]
    fn abundant_harvest_runs_continuously() {
        // 50 µW harvest ≫ 7 µW listen: the period collapses to the window.
        let s = plan_schedule(
            &budget(),
            Watts::from_uw(50.0),
            Seconds(2.0),
            Seconds(1.0),
            Seconds(3600.0),
        )
        .expect("sustainable");
        assert!(approx_eq(s.period.value(), 3.0, 1e-9), "period {}", s.period);
        assert!(s.sustainable(&budget(), Watts::from_uw(50.0)));
    }

    #[test]
    fn scarce_harvest_stretches_the_period() {
        // 2 µW harvest: below the 6.95 µW listen draw — the node must sleep
        // most of the time.
        let s = plan_schedule(
            &budget(),
            Watts::from_uw(2.0),
            Seconds(2.0),
            Seconds(1.0),
            Seconds(3600.0),
        )
        .expect("sustainable with duty cycling");
        assert!(s.period.value() > 10.0, "period {}", s.period);
        assert!(s.listen_duty() < 0.2);
        assert!(s.sustainable(&budget(), Watts::from_uw(2.0)));
        // And the schedule really is energy-neutral.
        assert!(s.average_power(&budget()).value() <= 2e-6);
    }

    #[test]
    fn deeper_scarcity_means_longer_periods() {
        let period_at = |uw: f64| {
            min_period_s(&budget(), Watts::from_uw(uw), Seconds(2.0), Seconds(1.0)).expect("ok")
        };
        assert!(period_at(1.5) > period_at(3.0));
        assert!(period_at(3.0) > period_at(6.0));
    }

    #[test]
    fn below_sleep_floor_is_hopeless() {
        // Sleep draws 1.0 µW; harvesting 0.5 µW can never be neutral.
        assert!(plan_schedule(
            &budget(),
            Watts::from_uw(0.5),
            Seconds(1.0),
            Seconds(0.5),
            Seconds(1e6)
        )
        .is_none());
    }

    #[test]
    fn max_period_bound_is_respected() {
        // Sustainable only with a long period, but the caller caps it.
        let s =
            plan_schedule(&budget(), Watts::from_uw(1.5), Seconds(2.0), Seconds(1.0), Seconds(5.0));
        assert!(s.is_none(), "should refuse schedules beyond the responsiveness cap");
    }

    #[test]
    fn brownout_replan_is_strictly_more_conservative() {
        let b = budget();
        let first =
            plan_schedule(&b, Watts::from_uw(4.0), Seconds(2.0), Seconds(1.0), Seconds(3600.0))
                .expect("sustainable");
        let replanned = replan_after_brownout(&b, Watts::from_uw(4.0), &first, Seconds(3600.0))
            .expect("derated plan still fundable at 4 µW");
        assert!(
            replanned.period.value() > first.period.value(),
            "recovery period {} must exceed the browned-out period {}",
            replanned.period,
            first.period
        );
        // The derated schedule is sustainable under the *derated* harvest.
        assert!(replanned.sustainable(&b, Watts::from_uw(4.0 * BROWNOUT_DERATE)));
    }

    #[test]
    fn brownout_replan_gives_up_near_the_sleep_floor() {
        // 1.5 µW is fundable, but half of it (0.75 µW) is below the 1 µW
        // sleep floor — the re-plan must refuse rather than promise a
        // schedule that browns out again.
        let b = budget();
        let first =
            plan_schedule(&b, Watts::from_uw(1.5), Seconds(2.0), Seconds(1.0), Seconds(1e6))
                .expect("sustainable");
        assert!(replan_after_brownout(&b, Watts::from_uw(1.5), &first, Seconds(1e6)).is_none());
    }

    #[test]
    fn average_power_matches_budget_duty_cycle() {
        let s = DutySchedule { period: Seconds(100.0), listen: Seconds(5.0), reply: Seconds(2.0) };
        let avg = s.average_power(&budget());
        let manual = budget().duty_cycled(0.05, 0.02);
        assert!(approx_eq(avg.value(), manual.value(), 1e-12));
    }
}
