//! Van Atta array geometry and retrodirective scattering.
//!
//! ## The retrodirective mechanism
//!
//! Elements sit on a line, symmetric about the array centre, and element `i`
//! is wired to its mirror image `N−1−i` through an equal-length transmission
//! line. A plane wave from direction θ deposits phase
//! `φᵢ = k·xᵢ·sin θ` on element `i`; the pair swap re-radiates that signal
//! from `x_{N−1−i} = −xᵢ`, whose radiation toward θ adds phase
//! `−k·xᵢ·sin θ = −φᵢ`. Every pair's round-trip phase is therefore
//! **independent of θ** — the array re-radiates a conjugated (time-reversed)
//! wavefront straight back at the source, with the full `N`-element coherent
//! gain at any incidence angle.
//!
//! A conventional backscatter array (each element terminated individually,
//! no swap) re-radiates with phase `2φᵢ`, which only adds coherently at
//! broadside — that is the baseline VAB's orientation study compares against.

use vab_piezo::reflection::ModulationStates;
use vab_piezo::switch::Switch;
use vab_piezo::transduction::Transducer;
use vab_util::complex::C64;
use vab_util::units::{Degrees, Hertz, Meters};
use vab_util::TAU;

/// A uniform line array, centred on the origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayGeometry {
    /// Total number of elements (must be even for Van Atta pairing).
    pub n_elements: usize,
    /// Inter-element spacing.
    pub spacing: Meters,
}

impl ArrayGeometry {
    /// Creates a geometry; `n_elements` must be even and ≥ 2.
    pub fn new(n_elements: usize, spacing: Meters) -> Self {
        assert!(
            n_elements >= 2 && n_elements.is_multiple_of(2),
            "Van Atta needs an even element count"
        );
        assert!(spacing.value() > 0.0);
        Self { n_elements, spacing }
    }

    /// Half-wavelength spacing at frequency `f` in water of sound speed `c`.
    pub fn half_wavelength(n_elements: usize, f: Hertz, sound_speed: f64) -> Self {
        Self::new(n_elements, Meters(sound_speed / f.value() / 2.0))
    }

    /// Number of Van Atta pairs.
    pub fn n_pairs(&self) -> usize {
        self.n_elements / 2
    }

    /// Position of element `i` along the array axis, centred on zero.
    pub fn element_x(&self, i: usize) -> f64 {
        assert!(i < self.n_elements);
        (i as f64 - (self.n_elements as f64 - 1.0) / 2.0) * self.spacing.value()
    }

    /// The Van Atta partner of element `i`.
    pub fn pair_of(&self, i: usize) -> usize {
        self.n_elements - 1 - i
    }

    /// Physical aperture length.
    pub fn aperture(&self) -> Meters {
        Meters((self.n_elements as f64 - 1.0) * self.spacing.value())
    }
}

/// A complete Van Atta backscatter front end.
#[derive(Debug, Clone)]
pub struct VanAttaArray {
    /// Element layout.
    pub geometry: ArrayGeometry,
    /// The (identical) element transducers.
    pub transducer: Transducer,
    /// Modulation load states (applied to the shared interconnect switch).
    pub states: ModulationStates,
    /// The modulation switch.
    pub switch: Switch,
    /// Per-pair transmission-line amplitude loss (linear, 1.0 = lossless).
    pub line_loss: f64,
    /// Per-pair line-delay mismatch, as a fraction of the carrier period
    /// (0.0 = perfectly equalized lines). Index = pair number.
    pub delay_mismatch: Vec<f64>,
    /// Element failure mask (`true` = dead element; kills its whole pair).
    pub failed: Vec<bool>,
    /// Stuck-switch mask (`true` = modulation switch frozen in the reflect
    /// state): the element still scatters and harvests, but its pair no
    /// longer contributes *modulated* signal.
    pub stuck: Vec<bool>,
    /// Element directivity exponent: amplitude pattern `cos^q θ`
    /// (q ≈ 0.35 for a small potted cylinder near a baffle).
    pub element_pattern_exp: f64,
}

impl VanAttaArray {
    /// The array evaluated in the reproduction: `n_pairs` pairs of the
    /// default VAB transducer at half-wavelength spacing, co-designed
    /// modulation states, typical switch, 0.25 dB line loss.
    pub fn vab_default(n_pairs: usize, f0: Hertz) -> Self {
        let transducer = Transducer::vab_default();
        let c = 1480.0;
        let geometry = ArrayGeometry::half_wavelength(2 * n_pairs, f0, c);
        let states = ModulationStates::vab(&transducer.bvd, f0);
        Self {
            geometry,
            transducer,
            states,
            switch: Switch::typical(),
            line_loss: 10f64.powf(-0.25 / 20.0),
            delay_mismatch: vec![0.0; n_pairs],
            failed: vec![false; 2 * n_pairs],
            stuck: vec![false; 2 * n_pairs],
            element_pattern_exp: 0.35,
        }
    }

    /// Replaces the modulation states (e.g. for ablations).
    pub fn with_states(mut self, states: ModulationStates) -> Self {
        self.states = states;
        self
    }

    /// Sets a uniform line-delay mismatch on every pair (ablation A1).
    pub fn with_uniform_mismatch(mut self, frac_of_period: f64) -> Self {
        for m in self.delay_mismatch.iter_mut() {
            *m = frac_of_period;
        }
        self
    }

    /// Marks an element (and hence its pair) failed.
    pub fn with_failed_element(mut self, i: usize) -> Self {
        assert!(i < self.geometry.n_elements);
        self.failed[i] = true;
        self
    }

    /// Applies a set of typed element faults from a fault plan:
    /// stuck-open switches kill the element outright, stuck-short switches
    /// freeze it in the reflect state (no modulation, harvest intact).
    /// Out-of-range element indices (a plan sampled for a larger array)
    /// are ignored.
    pub fn apply_element_faults(&mut self, faults: &[vab_fault::ElementFault]) {
        for f in faults {
            if f.element >= self.geometry.n_elements {
                continue;
            }
            match f.kind {
                vab_fault::SwitchFault::StuckOpen => self.failed[f.element] = true,
                vab_fault::SwitchFault::StuckShort => self.stuck[f.element] = true,
            }
        }
    }

    /// Element amplitude pattern at angle θ from broadside.
    fn element_pattern(&self, theta: Degrees) -> f64 {
        let c = theta.radians().cos();
        if c <= 0.0 {
            0.0
        } else {
            c.powf(self.element_pattern_exp)
        }
    }

    /// The bistatic Van Atta array factor `AF(θ_in → θ_out)` at frequency
    /// `f`, in amplitude units relative to a single ideal element
    /// (|AF| = N for the ideal retrodirective case θ_out = θ_in).
    pub fn array_factor(&self, theta_in: Degrees, theta_out: Degrees, f: Hertz) -> C64 {
        let c = 1480.0;
        let k = TAU * f.value() / c;
        let (s_in, s_out) = (theta_in.radians().sin(), theta_out.radians().sin());
        let pat = self.element_pattern(theta_in) * self.element_pattern(theta_out);
        let mut af = C64::ZERO;
        let n = self.geometry.n_elements;
        for i in 0..n / 2 {
            let j = self.geometry.pair_of(i);
            if self.failed[i] || self.failed[j] || self.stuck[i] || self.stuck[j] {
                continue;
            }
            let xi = self.geometry.element_x(i);
            let xj = self.geometry.element_x(j);
            // Extra phase from line mismatch of this pair.
            let psi = TAU * self.delay_mismatch[i];
            // Energy in at i, out at j — and the reciprocal route.
            let route_a = C64::cis(k * (xi * s_in + xj * s_out) + psi);
            let route_b = C64::cis(k * (xj * s_in + xi * s_out) + psi);
            af += (route_a + route_b) * self.line_loss;
        }
        af * pat
    }

    /// Monostatic (retro) amplitude gain at incidence θ, relative to a
    /// single ideal element: `|AF(θ → θ)|`.
    pub fn retro_gain(&self, theta: Degrees, f: Hertz) -> f64 {
        self.array_factor(theta, theta, f).abs()
    }

    /// [`VanAttaArray::retro_gain`] in dB (this is a *round-trip received
    /// power* gain at the reader, because it multiplies the backscattered
    /// amplitude).
    pub fn retro_gain_db(&self, theta: Degrees, f: Hertz) -> f64 {
        20.0 * self.retro_gain(theta, f).max(1e-12).log10()
    }

    /// Realized modulation depth |ΔΓ|/2 of the shared switch at `f`.
    pub fn modulation_depth(&self, f: Hertz) -> f64 {
        self.switch.realized_modulation_depth(
            &self.transducer.bvd,
            self.states.reflect,
            self.states.absorb,
            f,
        )
    }

    /// The single complex scalar the link-budget and sample-level simulators
    /// need: backscattered *modulated* amplitude per unit incident amplitude,
    /// at incidence θ — `modulation_depth × AF(θ,θ)`.
    pub fn effective_modulated_amplitude(&self, theta: Degrees, f: Hertz) -> f64 {
        self.modulation_depth(f) * self.retro_gain(theta, f)
    }

    /// Number of live elements (for harvesting aperture: every live element
    /// collects energy regardless of pairing).
    pub fn live_elements(&self) -> usize {
        self.failed.iter().filter(|&&d| !d).count()
    }

    /// Acoustic power available to the harvester: `live_elements ×` the
    /// single-element available power, scaled by the absorb-state harvest
    /// fraction.
    pub fn harvest_power(
        &self,
        f: Hertz,
        incident_level_db_upa: vab_util::units::Db,
    ) -> vab_util::units::Watts {
        let single = self.transducer.available_power(f, incident_level_db_upa);
        let frac = self.states.harvest_fraction(&self.transducer.bvd, f);
        vab_util::units::Watts(single * self.live_elements() as f64 * frac)
    }
}

/// The conventional-array baseline: the same geometry with each element
/// individually terminated (no pair swap). Its backscatter factor is
/// `Σᵢ e^{j·2·k·xᵢ·sinθ}` — coherent only near broadside.
pub fn conventional_backscatter_factor(geometry: &ArrayGeometry, theta: Degrees, f: Hertz) -> C64 {
    let c = 1480.0;
    let k = TAU * f.value() / c;
    let s = theta.radians().sin();
    (0..geometry.n_elements).map(|i| C64::cis(2.0 * k * geometry.element_x(i) * s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    const F0: Hertz = Hertz(18_500.0);

    fn arr(pairs: usize) -> VanAttaArray {
        VanAttaArray::vab_default(pairs, F0)
    }

    #[test]
    fn geometry_is_centred_and_symmetric() {
        let g = ArrayGeometry::new(8, Meters(0.04));
        let sum: f64 = (0..8).map(|i| g.element_x(i)).sum();
        assert!(sum.abs() < 1e-12);
        for i in 0..8 {
            assert!(approx_eq(g.element_x(i), -g.element_x(g.pair_of(i)), 1e-12));
        }
        assert_eq!(g.n_pairs(), 4);
        assert!(approx_eq(g.aperture().value(), 0.28, 1e-12));
    }

    #[test]
    fn ideal_retro_gain_is_n_at_broadside() {
        for pairs in [1usize, 2, 4] {
            let mut a = arr(pairs);
            a.line_loss = 1.0;
            let g = a.retro_gain(Degrees(0.0), F0);
            assert!(approx_eq(g, (2 * pairs) as f64, 1e-9), "pairs={pairs}: {g}");
        }
    }

    #[test]
    fn retro_gain_flat_across_angles() {
        // The headline property: gain stays ≈ N across ±60° (only the mild
        // element pattern erodes it), unlike the conventional array.
        let mut a = arr(4);
        a.line_loss = 1.0;
        let broadside = a.retro_gain(Degrees(0.0), F0);
        for deg in [-60.0, -45.0, -20.0, 20.0, 45.0, 60.0] {
            let g = a.retro_gain(Degrees(deg), F0);
            assert!(g > 0.6 * broadside, "retro gain at {deg}° = {g} vs broadside {broadside}");
        }
    }

    #[test]
    fn conventional_array_collapses_off_broadside() {
        let g = ArrayGeometry::half_wavelength(8, F0, 1480.0);
        let broadside = conventional_backscatter_factor(&g, Degrees(0.0), F0).abs();
        assert!(approx_eq(broadside, 8.0, 1e-9));
        // At the first null of the 2φ pattern the response nearly vanishes;
        // average well off broadside must be far below N.
        let off: f64 = [15.0, 25.0, 40.0, 55.0]
            .iter()
            .map(|&d| conventional_backscatter_factor(&g, Degrees(d), F0).abs())
            .sum::<f64>()
            / 4.0;
        assert!(off < 0.35 * broadside, "conventional off-axis mean {off}");
    }

    #[test]
    fn vanatta_beats_conventional_off_axis_everywhere() {
        let a = arr(4);
        for deg in [-70.0f64, -50.0, -30.0, -10.0, 10.0, 30.0, 50.0, 70.0] {
            let van = a.retro_gain(Degrees(deg), F0);
            let conv = conventional_backscatter_factor(&a.geometry, Degrees(deg), F0).abs()
                * a.element_pattern(Degrees(deg)).powi(2);
            if deg.abs() > 12.0 {
                assert!(van > conv, "at {deg}°: VA {van} vs conventional {conv}");
            }
        }
    }

    #[test]
    fn gain_scales_linearly_with_pairs() {
        let g1 = arr(1).retro_gain(Degrees(30.0), F0);
        let g2 = arr(2).retro_gain(Degrees(30.0), F0);
        let g4 = arr(4).retro_gain(Degrees(30.0), F0);
        assert!(approx_eq(g2 / g1, 2.0, 0.02), "{}", g2 / g1);
        assert!(approx_eq(g4 / g1, 4.0, 0.02), "{}", g4 / g1);
    }

    #[test]
    fn line_mismatch_uniform_phase_does_not_break_retro() {
        // A *uniform* extra delay on all pairs only rotates the global
        // phase; |AF| is unchanged. (Per-pair random mismatch is what
        // hurts — covered in the next test.)
        let a = arr(4).with_uniform_mismatch(0.25);
        let b = arr(4);
        assert!(approx_eq(a.retro_gain(Degrees(33.0), F0), b.retro_gain(Degrees(33.0), F0), 1e-9));
    }

    #[test]
    fn random_per_pair_mismatch_degrades_gain() {
        let mut a = arr(4);
        a.delay_mismatch = vec![0.0, 0.17, 0.34, 0.45]; // scattered phases
        let degraded = a.retro_gain(Degrees(0.0), F0);
        let ideal = arr(4).retro_gain(Degrees(0.0), F0);
        assert!(degraded < 0.8 * ideal, "degraded {degraded} vs ideal {ideal}");
    }

    #[test]
    fn failed_element_kills_its_pair() {
        let a = arr(4).with_failed_element(0);
        assert_eq!(a.live_elements(), 7);
        let g = a.retro_gain(Degrees(0.0), F0);
        let full = arr(4).retro_gain(Degrees(0.0), F0);
        // One of four pairs gone → amplitude drops by ≈ 1/4.
        assert!(approx_eq(g / full, 0.75, 0.02), "{}", g / full);
    }

    #[test]
    fn stuck_short_kills_modulation_but_not_harvest() {
        let mut a = arr(4);
        a.apply_element_faults(&[vab_fault::ElementFault {
            element: 1,
            kind: vab_fault::SwitchFault::StuckShort,
        }]);
        // The pair no longer modulates...
        let g = a.retro_gain(Degrees(0.0), F0);
        let full = arr(4).retro_gain(Degrees(0.0), F0);
        assert!(approx_eq(g / full, 0.75, 0.02), "{}", g / full);
        // ...but the element still harvests.
        assert_eq!(a.live_elements(), 8);
    }

    #[test]
    fn stuck_open_fault_kills_element() {
        let mut a = arr(4);
        a.apply_element_faults(&[vab_fault::ElementFault {
            element: 0,
            kind: vab_fault::SwitchFault::StuckOpen,
        }]);
        assert_eq!(a.live_elements(), 7);
        // Out-of-range faults are ignored.
        a.apply_element_faults(&[vab_fault::ElementFault {
            element: 99,
            kind: vab_fault::SwitchFault::StuckOpen,
        }]);
        assert_eq!(a.live_elements(), 7);
    }

    #[test]
    fn modulation_depth_through_switch_is_high() {
        let a = arr(4);
        let depth = a.modulation_depth(F0);
        assert!(depth > 0.6, "depth {depth}");
        assert!(a.effective_modulated_amplitude(Degrees(0.0), F0) > 4.0);
    }

    #[test]
    fn harvest_power_scales_with_elements() {
        let p1 = arr(1).harvest_power(F0, vab_util::units::Db(150.0)).value();
        let p4 = arr(4).harvest_power(F0, vab_util::units::Db(150.0)).value();
        assert!(approx_eq(p4 / p1, 4.0, 1e-6));
        assert!(p1 > 0.0);
    }

    #[test]
    fn reciprocity_bistatic_symmetry() {
        // AF(θa→θb) = AF(θb→θa) by construction (each pair contains both
        // routes).
        let a = arr(3);
        let fwd = a.array_factor(Degrees(17.0), Degrees(-42.0), F0);
        let rev = a.array_factor(Degrees(-42.0), Degrees(17.0), F0);
        assert!((fwd - rev).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even element count")]
    fn odd_element_count_rejected() {
        let _ = ArrayGeometry::new(5, Meters(0.04));
    }
}
