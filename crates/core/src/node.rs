//! The backscatter node state machine.
//!
//! A node is a [`VanAttaArray`] plus a few gates of control logic and a
//! power subsystem. It spends its life harvesting; when the reader
//! addresses it, it encodes a queued sensor reading into channel bits and
//! schedules them on the modulation switch. All timing is driven by the
//! caller (the simulator or MAC layer) through explicit events — the node
//! itself has no clock.

use crate::array::VanAttaArray;
use crate::commands::{Command, RATE_TABLE_BPS};
use std::collections::VecDeque;
use vab_harvest::budget::NodeMode;
use vab_harvest::pmu::Pmu;
use vab_link::frame::{Frame, LinkConfig, ADDR_BROADCAST};
use vab_util::units::{Db, Hertz, Seconds, Watts};

/// Static node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Link-layer address.
    pub address: u8,
    /// Channel coding configuration (must match the reader's).
    pub link: LinkConfig,
    /// Carrier frequency.
    pub carrier: Hertz,
    /// Initial uplink rate code (index into [`RATE_TABLE_BPS`]).
    pub rate_code: u8,
    /// Maximum queued readings before the oldest is dropped.
    pub queue_limit: usize,
}

impl NodeConfig {
    /// Standard configuration for address `address`.
    pub fn new(address: u8) -> Self {
        Self {
            address,
            link: LinkConfig::vab_default(),
            carrier: Hertz(18_500.0),
            rate_code: 0,
            queue_limit: 16,
        }
    }
}

/// Node operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Unpowered / charging.
    Dead,
    /// Powered, listening for downlink.
    Listening,
    /// Backscattering an uplink frame.
    Replying,
    /// Commanded sleep (remaining seconds).
    Sleeping,
}

/// What a node does in response to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    /// Nothing observable.
    None,
    /// Backscatter these channel bits (already FEC-encoded, preamble added
    /// by the PHY).
    Reply {
        /// Channel bits to feed the modulation switch.
        channel_bits: Vec<bool>,
        /// Uplink bit rate to use.
        bit_rate: f64,
    },
    /// Node accepted a slot assignment.
    SlotAssigned(u8),
}

/// A deployed sensing node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Static configuration.
    pub config: NodeConfig,
    /// The acoustic front end.
    pub array: VanAttaArray,
    /// The power subsystem.
    pub pmu: Pmu,
    state: NodeState,
    readings: VecDeque<Vec<u8>>,
    seq: u8,
    sleep_remaining: f64,
    assigned_slot: Option<u8>,
    /// Frames transmitted (statistics).
    pub tx_frames: u64,
    /// Queries heard and answered.
    pub queries_answered: u64,
    /// Readings dropped to the queue limit.
    pub dropped_readings: u64,
}

impl Node {
    /// Creates a node with the given front end and a default PMU.
    pub fn new(config: NodeConfig, array: VanAttaArray) -> Self {
        Self {
            config,
            array,
            pmu: Pmu::vab_default(),
            state: NodeState::Dead,
            readings: VecDeque::new(),
            seq: 0,
            sleep_remaining: 0.0,
            assigned_slot: None,
            tx_frames: 0,
            queries_answered: 0,
            dropped_readings: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Current uplink bit rate.
    pub fn bit_rate(&self) -> f64 {
        RATE_TABLE_BPS[self.config.rate_code as usize]
    }

    /// Assigned TDMA slot, if any.
    pub fn assigned_slot(&self) -> Option<u8> {
        self.assigned_slot
    }

    /// Queued readings.
    pub fn queue_len(&self) -> usize {
        self.readings.len()
    }

    /// Queues a sensor reading for the next query. Oldest readings drop
    /// when the queue is full (fresh data beats stale data for monitoring).
    pub fn queue_reading(&mut self, bytes: Vec<u8>) {
        if self.readings.len() >= self.config.queue_limit {
            self.readings.pop_front();
            self.dropped_readings += 1;
        }
        self.readings.push_back(bytes);
    }

    /// Advances the energy state by `dt` with incident acoustic level
    /// `incident_db_upa` at the array. Returns whether the node is powered.
    pub fn step_energy(&mut self, incident_db_upa: Db, dt: Seconds) -> bool {
        let p: Watts = self.array.harvest_power(self.config.carrier, incident_db_upa);
        let mode = match self.state {
            NodeState::Dead | NodeState::Sleeping => NodeMode::Sleep,
            NodeState::Listening => NodeMode::Listen,
            NodeState::Replying => NodeMode::Backscatter,
        };
        let powered = self.pmu.step(p, mode, dt);
        match (self.state, powered) {
            (NodeState::Dead, true) => self.state = NodeState::Listening,
            (s, false) if s != NodeState::Dead => self.state = NodeState::Dead,
            _ => {}
        }
        if self.state == NodeState::Sleeping {
            self.sleep_remaining -= dt.value();
            if self.sleep_remaining <= 0.0 {
                self.state = NodeState::Listening;
            }
        }
        powered
    }

    /// Forces the node awake with a charged capacitor (externally-powered
    /// deployments / long-range communication trials).
    pub fn force_powered(&mut self) {
        self.pmu = Pmu::vab_default();
        // Charge by feeding the PMU a strong source until it wakes.
        for _ in 0..10_000 {
            if self.pmu.step(Watts::from_uw(500.0), NodeMode::Sleep, Seconds(0.05)) {
                break;
            }
        }
        self.state = NodeState::Listening;
    }

    /// Handles a correctly-decoded downlink frame.
    pub fn handle_downlink(&mut self, frame: &Frame) -> NodeEvent {
        if self.state != NodeState::Listening {
            return NodeEvent::None;
        }
        if frame.dest != self.config.address && frame.dest != ADDR_BROADCAST {
            return NodeEvent::None;
        }
        let Some(cmd) = Command::from_payload(&frame.payload) else {
            return NodeEvent::None;
        };
        match cmd {
            Command::Query => {
                let payload = self.readings.pop_front().unwrap_or_default();
                let uplink = Frame::new(frame.src, self.config.address, self.seq, payload);
                let bits = self.config.link.encode(&uplink);
                self.state = NodeState::Replying;
                self.tx_frames += 1;
                self.queries_answered += 1;
                NodeEvent::Reply { channel_bits: bits, bit_rate: self.bit_rate() }
            }
            Command::Ack { seq } => {
                if seq == self.seq {
                    self.seq = self.seq.wrapping_add(1);
                }
                NodeEvent::None
            }
            Command::SetRate { rate_code } => {
                self.config.rate_code = rate_code;
                NodeEvent::None
            }
            Command::AssignSlot { slot } => {
                self.assigned_slot = Some(slot);
                NodeEvent::SlotAssigned(slot)
            }
            Command::Sleep { seconds } => {
                self.state = NodeState::Sleeping;
                self.sleep_remaining = seconds as f64;
                NodeEvent::None
            }
        }
    }

    /// Decodes a received downlink *waveform* (complex baseband envelope)
    /// with the node's envelope detector and PIE decoder, then dispatches
    /// the contained frame — the full low-power receive path a real node
    /// runs. Returns [`NodeEvent::None`] when no valid frame is present.
    pub fn handle_downlink_waveform(
        &mut self,
        baseband: &[vab_util::complex::C64],
        pie: &vab_phy::downlink::PieParams,
    ) -> NodeEvent {
        let detector = vab_phy::downlink::EnvelopeDetector::for_params(pie);
        let sliced = detector.slice(baseband);
        let Some(bits) = vab_phy::downlink::pie_decode(&sliced, pie) else {
            return NodeEvent::None;
        };
        let bytes = vab_link::bits::bits_to_bytes(&bits);
        match Frame::from_bytes(&bytes) {
            Ok(frame) => self.handle_downlink(&frame),
            Err(_) => NodeEvent::None,
        }
    }

    /// Marks the uplink transmission finished (the PHY/simulator calls this
    /// after the backscatter window ends).
    pub fn reply_done(&mut self) {
        if self.state == NodeState::Replying {
            self.state = NodeState::Listening;
        }
    }

    /// Current sequence number (next uplink frame).
    pub fn seq(&self) -> u8 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::VanAttaArray;

    fn node(addr: u8) -> Node {
        let mut n = Node::new(NodeConfig::new(addr), VanAttaArray::vab_default(4, Hertz(18_500.0)));
        n.force_powered();
        n
    }

    fn query_frame(dest: u8) -> Frame {
        Frame::new(dest, 0x00, 0, Command::Query.to_payload())
    }

    #[test]
    fn dead_until_powered() {
        let n = Node::new(NodeConfig::new(1), VanAttaArray::vab_default(2, Hertz(18_500.0)));
        assert_eq!(n.state(), NodeState::Dead);
    }

    #[test]
    fn force_powered_wakes() {
        let n = node(1);
        assert_eq!(n.state(), NodeState::Listening);
    }

    #[test]
    fn answers_query_with_queued_reading() {
        let mut n = node(7);
        n.queue_reading(vec![0xAA, 0xBB]);
        let ev = n.handle_downlink(&query_frame(7));
        let NodeEvent::Reply { channel_bits, bit_rate } = ev else {
            panic!("expected reply, got {ev:?}")
        };
        assert_eq!(bit_rate, 100.0);
        assert!(!channel_bits.is_empty());
        assert_eq!(n.state(), NodeState::Replying);
        // The reply decodes back to our reading at the reader.
        let decoded = n.config.link.decode(&channel_bits).expect("decodes");
        assert_eq!(decoded.payload, vec![0xAA, 0xBB]);
        assert_eq!(decoded.src, 7);
        n.reply_done();
        assert_eq!(n.state(), NodeState::Listening);
    }

    #[test]
    fn ignores_other_addresses_but_answers_broadcast() {
        let mut n = node(7);
        n.queue_reading(vec![1]);
        assert_eq!(n.handle_downlink(&query_frame(9)), NodeEvent::None);
        assert!(matches!(n.handle_downlink(&query_frame(ADDR_BROADCAST)), NodeEvent::Reply { .. }));
    }

    #[test]
    fn empty_queue_yields_empty_payload() {
        let mut n = node(3);
        let NodeEvent::Reply { channel_bits, .. } = n.handle_downlink(&query_frame(3)) else {
            panic!()
        };
        let decoded = n.config.link.decode(&channel_bits).expect("decodes");
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn ack_advances_sequence() {
        let mut n = node(5);
        assert_eq!(n.seq(), 0);
        let ack = Frame::new(5, 0, 0, Command::Ack { seq: 0 }.to_payload());
        n.handle_downlink(&ack);
        assert_eq!(n.seq(), 1);
        // Stale ACK does nothing.
        n.handle_downlink(&ack);
        assert_eq!(n.seq(), 1);
    }

    #[test]
    fn set_rate_changes_uplink_rate() {
        let mut n = node(2);
        let cmd = Frame::new(2, 0, 0, Command::SetRate { rate_code: 3 }.to_payload());
        n.handle_downlink(&cmd);
        assert_eq!(n.bit_rate(), 1000.0);
    }

    #[test]
    fn slot_assignment_recorded() {
        let mut n = node(2);
        let cmd = Frame::new(2, 0, 0, Command::AssignSlot { slot: 4 }.to_payload());
        assert_eq!(n.handle_downlink(&cmd), NodeEvent::SlotAssigned(4));
        assert_eq!(n.assigned_slot(), Some(4));
    }

    #[test]
    fn sleep_then_wake_via_energy_steps() {
        let mut n = node(2);
        let cmd = Frame::new(2, 0, 0, Command::Sleep { seconds: 1 }.to_payload());
        n.handle_downlink(&cmd);
        assert_eq!(n.state(), NodeState::Sleeping);
        // Queries ignored while asleep.
        assert_eq!(n.handle_downlink(&query_frame(2)), NodeEvent::None);
        // Strong field keeps it powered; time passes and it wakes.
        for _ in 0..30 {
            n.step_energy(Db(165.0), Seconds(0.05));
        }
        assert_eq!(n.state(), NodeState::Listening);
    }

    #[test]
    fn queue_limit_drops_oldest() {
        let mut n = node(1);
        n.config.queue_limit = 2;
        n.queue_reading(vec![1]);
        n.queue_reading(vec![2]);
        n.queue_reading(vec![3]);
        assert_eq!(n.queue_len(), 2);
        assert_eq!(n.dropped_readings, 1);
        let NodeEvent::Reply { channel_bits, .. } = n.handle_downlink(&query_frame(1)) else {
            panic!()
        };
        let decoded = n.config.link.decode(&channel_bits).expect("decodes");
        assert_eq!(decoded.payload, vec![2], "oldest (1) was dropped");
    }

    #[test]
    fn decodes_downlink_waveform_end_to_end() {
        use vab_link::bits::bytes_to_bits;
        use vab_phy::downlink::{pie_encode, PieParams};
        use vab_util::complex::C64;
        let mut n = node(0x11);
        n.queue_reading(vec![0x42]);
        // Reader side: frame → bits → PIE envelope → (clean) baseband.
        let frame = query_frame(0x11);
        let pie = PieParams::vab_default();
        let env = pie_encode(&bytes_to_bits(&frame.to_bytes()), &pie);
        let bb: Vec<C64> = env.iter().map(|&e| C64::from_polar(3.0 * e, 0.7)).collect();
        let ev = n.handle_downlink_waveform(&bb, &pie);
        assert!(matches!(ev, NodeEvent::Reply { .. }), "got {ev:?}");
    }

    #[test]
    fn garbage_waveform_is_ignored() {
        use vab_phy::downlink::PieParams;
        use vab_util::complex::C64;
        let mut n = node(0x11);
        let noise: Vec<C64> = (0..4000).map(|i| C64::real((i as f64 * 0.37).sin())).collect();
        assert_eq!(n.handle_downlink_waveform(&noise, &PieParams::vab_default()), NodeEvent::None);
    }

    #[test]
    fn corrupted_waveform_fails_crc_not_panics() {
        use vab_link::bits::bytes_to_bits;
        use vab_phy::downlink::{pie_encode, PieParams};
        use vab_util::complex::C64;
        let mut n = node(0x11);
        let frame = query_frame(0x11);
        let pie = PieParams::vab_default();
        let mut bits = bytes_to_bits(&frame.to_bytes());
        bits[13] = !bits[13]; // corrupt one payload bit pre-encoding
        let env = pie_encode(&bits, &pie);
        let bb: Vec<C64> = env.iter().map(|&e| C64::real(2.0 * e)).collect();
        assert_eq!(n.handle_downlink_waveform(&bb, &pie), NodeEvent::None);
    }

    #[test]
    fn starvation_kills_node() {
        let mut n = node(1);
        // No incident field at all: capacitor drains.
        let mut steps = 0;
        while n.state() != NodeState::Dead && steps < 2_000_000 {
            n.step_energy(Db(0.0), Seconds(1.0));
            steps += 1;
        }
        assert_eq!(n.state(), NodeState::Dead);
        assert_eq!(n.handle_downlink(&query_frame(1)), NodeEvent::None);
    }
}
