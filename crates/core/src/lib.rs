//! # vab-core — the Van Atta Acoustic Backscatter node
//!
//! The paper's contribution: a retrodirective backscatter architecture for
//! underwater acoustics. A Van Atta array cross-connects symmetric pairs of
//! transducers so that whatever phase front arrives is re-radiated back
//! toward its source — giving an `N`-element array the full `N×` coherent
//! gain at *every* incidence angle, where a conventional array only achieves
//! it at broadside. A single switch in the interconnect modulates the whole
//! array's reflection for uplink data.
//!
//! * [`mod@array`] — geometry and the retrodirective scattering model (plus the
//!   conventional-array baseline and non-ideality injection);
//! * [`node`] — the node state machine: harvest → listen → decode → reply;
//! * [`commands`] — the downlink command vocabulary;
//! * [`scheduler`] — harvest-aware duty-cycle planning for nodes past the
//!   battery-free sustain radius.

pub mod array;
pub mod commands;
pub mod node;
pub mod scheduler;

pub use array::{conventional_backscatter_factor, ArrayGeometry, VanAttaArray};
pub use commands::Command;
pub use node::{Node, NodeConfig, NodeEvent, NodeState};
pub use scheduler::{plan_schedule, DutySchedule};
