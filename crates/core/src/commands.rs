//! Downlink command vocabulary.
//!
//! Downlink commands ride in [`vab_link::Frame`] payloads from the reader.
//! The encoding is deliberately tiny — a node decodes it with an envelope
//! detector and a few gates.

/// Reader → node commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Ask the addressed node to backscatter its next queued reading.
    Query,
    /// Acknowledge receipt of the uplink frame with this sequence number.
    Ack {
        /// Sequence number being acknowledged.
        seq: u8,
    },
    /// Set the uplink bit rate: `rate_code` indexes {100, 250, 500, 1000} bps.
    SetRate {
        /// Index into the rate table.
        rate_code: u8,
    },
    /// Assign a TDMA slot (slot index within the round).
    AssignSlot {
        /// Slot index.
        slot: u8,
    },
    /// Go to deep sleep for `seconds`.
    Sleep {
        /// Sleep duration, seconds.
        seconds: u8,
    },
}

/// The uplink bit-rate table indexed by `rate_code`.
pub const RATE_TABLE_BPS: [f64; 4] = [100.0, 250.0, 500.0, 1000.0];

impl Command {
    /// Serializes to a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        match *self {
            Command::Query => vec![0x01],
            Command::Ack { seq } => vec![0x02, seq],
            Command::SetRate { rate_code } => vec![0x03, rate_code],
            Command::AssignSlot { slot } => vec![0x04, slot],
            Command::Sleep { seconds } => vec![0x05, seconds],
        }
    }

    /// Parses from a frame payload.
    pub fn from_payload(payload: &[u8]) -> Option<Command> {
        match payload {
            [0x01] => Some(Command::Query),
            [0x02, seq] => Some(Command::Ack { seq: *seq }),
            [0x03, code] if (*code as usize) < RATE_TABLE_BPS.len() => {
                Some(Command::SetRate { rate_code: *code })
            }
            [0x04, slot] => Some(Command::AssignSlot { slot: *slot }),
            [0x05, s] => Some(Command::Sleep { seconds: *s }),
            _ => None,
        }
    }

    /// Bit rate selected by a `SetRate`, if any.
    pub fn rate_bps(&self) -> Option<f64> {
        match self {
            Command::SetRate { rate_code } => RATE_TABLE_BPS.get(*rate_code as usize).copied(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_commands() {
        for cmd in [
            Command::Query,
            Command::Ack { seq: 1 },
            Command::SetRate { rate_code: 2 },
            Command::AssignSlot { slot: 7 },
            Command::Sleep { seconds: 30 },
        ] {
            let p = cmd.to_payload();
            assert_eq!(Command::from_payload(&p), Some(cmd), "{cmd:?}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(Command::from_payload(&[]), None);
        assert_eq!(Command::from_payload(&[0x99]), None);
        assert_eq!(Command::from_payload(&[0x01, 0x02]), None); // trailing junk
        assert_eq!(Command::from_payload(&[0x03, 200]), None); // rate out of range
    }

    #[test]
    fn rate_lookup() {
        assert_eq!(Command::SetRate { rate_code: 0 }.rate_bps(), Some(100.0));
        assert_eq!(Command::SetRate { rate_code: 3 }.rate_bps(), Some(1000.0));
        assert_eq!(Command::Query.rate_bps(), None);
    }
}
