//! Carrier cancellation.
//!
//! The reader's hydrophone hears its own projector 40–80 dB louder than the
//! backscattered sidebands. At complex baseband the un-modulated carrier
//! (direct arrival plus every static reflection) is a DC term; the
//! information lives at ± the chip rate. Cancellation is therefore a DC/
//! slow-drift removal problem at baseband, or a narrow band-stop at the
//! carrier in passband.

use vab_util::complex::C64;
use vab_util::filter::{Band, Fir};
use vab_util::window::Window;

/// Subtracts the complex mean — ideal static-carrier cancellation.
pub fn remove_dc(x: &[C64]) -> Vec<C64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().copied().sum::<C64>() / x.len() as f64;
    x.iter().map(|&v| v - mean).collect()
}

/// Sliding-window DC removal: subtracts a local mean over `window` samples,
/// tracking slow carrier drift (clock offset, platform motion) that a global
/// mean would miss. `window` should span many chips but be shorter than the
/// drift timescale.
pub fn remove_dc_sliding(x: &[C64], window: usize) -> Vec<C64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let w = window.clamp(1, n);
    // Prefix sums for O(n) local means.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(C64::ZERO);
    for &v in x {
        let last = *prefix.last().expect("nonempty");
        prefix.push(last + v);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(w / 2);
            let hi = (i + w / 2 + 1).min(n);
            let mean = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
            x[i] - mean
        })
        .collect()
}

/// A passband carrier notch: band-stop FIR centred on the carrier with the
/// given half-width, at sample rate `fs`.
pub fn carrier_notch(carrier_hz: f64, half_width_hz: f64, fs: f64, taps: usize) -> Fir {
    let lo = ((carrier_hz - half_width_hz) / fs).clamp(1e-4, 0.4999);
    let hi = ((carrier_hz + half_width_hz) / fs).clamp(lo + 1e-4, 0.4999);
    Fir::design(Band::Bandstop { lo, hi }, taps, Window::Hamming)
}

/// Residual carrier rejection in dB achieved by [`remove_dc`] on a given
/// block (for diagnostics): carrier power before vs. after.
pub fn rejection_db(before: &[C64], after: &[C64]) -> f64 {
    let p = |v: &[C64]| {
        if v.is_empty() {
            return 0.0;
        }
        let m = v.iter().copied().sum::<C64>() / v.len() as f64;
        m.norm_sq()
    };
    let b = p(before);
    let a = p(after);
    if a <= 0.0 {
        200.0
    } else {
        10.0 * (b / a).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::{complex_gaussian, seeded};
    use vab_util::TAU;

    #[test]
    fn remove_dc_zeroes_the_mean() {
        let x: Vec<C64> = (0..100).map(|i| C64::new(5.0 + (i as f64 * 0.3).sin(), -2.0)).collect();
        let y = remove_dc(&x);
        let mean = y.iter().copied().sum::<C64>() / y.len() as f64;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn remove_dc_preserves_modulation() {
        // DC + square modulation: after removal the square survives.
        let x: Vec<C64> =
            (0..64).map(|i| C64::real(100.0 + if (i / 8) % 2 == 0 { 1.0 } else { -1.0 })).collect();
        let y = remove_dc(&x);
        let swing = y.iter().map(|c| c.re).fold(f64::MIN, f64::max)
            - y.iter().map(|c| c.re).fold(f64::MAX, f64::min);
        assert!((swing - 2.0).abs() < 1e-9, "swing {swing}");
    }

    #[test]
    fn sliding_dc_tracks_drift() {
        // Carrier drifting linearly in phase; global mean can't cancel it,
        // sliding mean mostly can.
        let n = 2000;
        let x: Vec<C64> = (0..n)
            .map(|i| {
                let drift = C64::from_polar(50.0, 1e-3 * i as f64);
                let signal = C64::real(if (i / 20) % 2 == 0 { 1.0 } else { -1.0 });
                drift + signal
            })
            .collect();
        let global = remove_dc(&x);
        let sliding = remove_dc_sliding(&x, 200);
        let resid = |v: &[C64]| v.iter().map(|c| c.norm_sq()).sum::<f64>() / v.len() as f64;
        // Signal power is 1; global removal leaves large drift residual.
        assert!(
            resid(&sliding) < resid(&global) / 3.0,
            "sliding {} vs global {}",
            resid(&sliding),
            resid(&global)
        );
    }

    #[test]
    fn rejection_reported_in_db() {
        let mut rng = seeded(9);
        let x: Vec<C64> =
            (0..500).map(|_| C64::real(30.0) + complex_gaussian(&mut rng, 1.0)).collect();
        let y = remove_dc(&x);
        assert!(rejection_db(&x, &y) > 40.0);
    }

    #[test]
    fn notch_kills_carrier_keeps_sidebands() {
        let fs = 96000.0;
        let f0 = 18500.0;
        let notch = carrier_notch(f0, 250.0, fs, 2401);
        let n = 8192;
        let carrier: Vec<f64> = (0..n).map(|i| (TAU * f0 * i as f64 / fs).sin()).collect();
        let sideband: Vec<f64> =
            (0..n).map(|i| (TAU * (f0 + 600.0) * i as f64 / fs).sin()).collect();
        let c_out = notch.filter_same(&carrier);
        let s_out = notch.filter_same(&sideband);
        // Evaluate in steady state, away from the filter's edge transients.
        let pow = |v: &[f64]| {
            let inner = &v[1500..v.len() - 1500];
            inner.iter().map(|x| x * x).sum::<f64>() / inner.len() as f64
        };
        assert!(pow(&c_out) < 1e-3 * pow(&carrier), "carrier leaked: {}", pow(&c_out));
        assert!(pow(&s_out) > 0.5 * pow(&sideband), "sideband damaged: {}", pow(&s_out));
    }

    #[test]
    fn empty_input_ok() {
        assert!(remove_dc(&[]).is_empty());
        assert!(remove_dc_sliding(&[], 10).is_empty());
    }
}
