//! FSK backscatter modulation.
//!
//! Instead of holding the switch for a whole FM0 chip (OOK), the node
//! toggles it at one of two *subcarrier* rates, `f₁` or `f₂`, for each bit.
//! The reader then sees energy at carrier ± f₁ or carrier ± f₂ and decides
//! noncoherently by comparing the two tone energies (Goertzel bins).
//!
//! Why a system would choose it: the subcarriers move the uplink away from
//! the carrier's phase-noise skirt and from DC-coupled clutter, at the cost
//! of switch activity (power) and bandwidth. The paper's line of work uses
//! FM0; FSK is provided as the natural alternative and is exercised by the
//! modulation-comparison ablation.

use crate::modulation::ModParams;
use vab_util::complex::C64;
use vab_util::TAU;

/// FSK configuration on top of the base [`ModParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FskParams {
    /// Base PHY parameters (bit rate, oversampling, carrier).
    pub base: ModParams,
    /// Subcarrier for a `0` bit, Hz (as offset from the carrier).
    pub f0_hz: f64,
    /// Subcarrier for a `1` bit, Hz.
    pub f1_hz: f64,
}

impl FskParams {
    /// Orthogonal default: subcarriers at 4× and 8× the bit rate (both an
    /// integer number of cycles per bit → orthogonal over a bit window).
    pub fn vab_default() -> Self {
        let base = ModParams::vab_default();
        Self { base, f0_hz: 4.0 * base.bit_rate, f1_hz: 8.0 * base.bit_rate }
    }

    /// Derives params for a different bit rate, keeping the 4×/8× structure.
    pub fn with_bit_rate(mut self, bps: f64) -> Self {
        self.base = self.base.with_bit_rate(bps);
        self.f0_hz = 4.0 * bps;
        self.f1_hz = 8.0 * bps;
        self
    }

    /// Baseband sample rate (must resolve the faster subcarrier: ≥ 4×f₁).
    pub fn baseband_fs(&self) -> f64 {
        // The base oversampling gives bit_rate × 2 × samples_per_chip;
        // ensure at least 4 samples per fast-subcarrier cycle.
        let base_fs = self.base.baseband_fs();
        let need = 4.0 * self.f1_hz;
        base_fs.max(need)
    }

    /// Samples per bit at [`FskParams::baseband_fs`].
    pub fn samples_per_bit(&self) -> usize {
        (self.baseband_fs() / self.base.bit_rate).round() as usize
    }

    /// Occupied bandwidth: up to the fast subcarrier plus its main lobe.
    pub fn occupied_bandwidth_hz(&self) -> f64 {
        2.0 * (self.f1_hz + 2.0 * self.base.bit_rate)
    }
}

/// FSK modulator: bits → ±1 switch waveform (square subcarriers).
#[derive(Debug, Clone)]
pub struct FskModulator {
    params: FskParams,
}

impl FskModulator {
    /// Creates a modulator; subcarriers must be distinct and positive.
    pub fn new(params: FskParams) -> Self {
        assert!(params.f0_hz > 0.0 && params.f1_hz > 0.0 && params.f0_hz != params.f1_hz);
        Self { params }
    }

    /// Parameters in use.
    pub fn params(&self) -> &FskParams {
        &self.params
    }

    /// The ±1 switch waveform: a square wave at the bit's subcarrier.
    pub fn switch_waveform(&self, bits: &[bool]) -> Vec<f64> {
        let fs = self.params.baseband_fs();
        let spb = self.params.samples_per_bit();
        let mut w = Vec::with_capacity(bits.len() * spb);
        for (i, &b) in bits.iter().enumerate() {
            let f = if b { self.params.f1_hz } else { self.params.f0_hz };
            for k in 0..spb {
                // Square subcarrier, phase-continuous within the bit.
                let t = (i * spb + k) as f64 / fs;
                let phase = (TAU * f * t).sin();
                w.push(if phase >= 0.0 { 1.0 } else { -1.0 });
            }
        }
        w
    }
}

/// Noncoherent FSK demodulator: per bit, compares Goertzel energy at the
/// two subcarrier offsets of the complex baseband signal.
#[derive(Debug, Clone)]
pub struct FskDemodulator {
    params: FskParams,
}

impl FskDemodulator {
    /// Creates a demodulator.
    pub fn new(params: FskParams) -> Self {
        Self { params }
    }

    /// Complex-baseband Goertzel: Σ x[n]·e^{-j2πf n/fs} over a window.
    fn tone_energy(window: &[C64], f_hz: f64, fs: f64) -> f64 {
        let mut acc = C64::ZERO;
        for (n, &x) in window.iter().enumerate() {
            acc += x * C64::cis(-TAU * f_hz * n as f64 / fs);
        }
        acc.norm_sq()
    }

    /// Demodulates `n_bits` starting at `start`. A square subcarrier puts
    /// energy at ±f and odd harmonics; we test both signs of the
    /// fundamental and sum.
    pub fn demodulate(&self, baseband: &[C64], start: usize, n_bits: usize) -> Vec<bool> {
        let fs = self.params.baseband_fs();
        let spb = self.params.samples_per_bit();
        let mut out = Vec::with_capacity(n_bits);
        for i in 0..n_bits {
            let lo = start + i * spb;
            let hi = lo + spb;
            if hi > baseband.len() {
                break;
            }
            let w = &baseband[lo..hi];
            let e0 = Self::tone_energy(w, self.params.f0_hz, fs)
                + Self::tone_energy(w, -self.params.f0_hz, fs);
            let e1 = Self::tone_energy(w, self.params.f1_hz, fs)
                + Self::tone_energy(w, -self.params.f1_hz, fs);
            out.push(e1 >= e0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::{complex_gaussian, random_bits, seeded};

    fn p() -> FskParams {
        FskParams::vab_default()
    }

    #[test]
    fn default_subcarriers_are_orthogonal_multiples() {
        let params = p();
        let per_bit0 = params.f0_hz / params.base.bit_rate;
        let per_bit1 = params.f1_hz / params.base.bit_rate;
        assert_eq!(per_bit0.fract(), 0.0);
        assert_eq!(per_bit1.fract(), 0.0);
        assert!(params.baseband_fs() >= 4.0 * params.f1_hz);
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = seeded(61);
        let bits = random_bits(&mut rng, 48);
        let m = FskModulator::new(p());
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> = wave.iter().map(|&w| C64::from_polar(1.0, 0.9) * w).collect();
        let d = FskDemodulator::new(p());
        let rx = d.demodulate(&bb, 0, bits.len());
        assert_eq!(rx, bits);
    }

    #[test]
    fn roundtrip_with_noise_and_dc_leak() {
        let mut rng = seeded(62);
        let bits = random_bits(&mut rng, 64);
        let m = FskModulator::new(p());
        let wave = m.switch_waveform(&bits);
        // The whole point of FSK: DC clutter does not even need removing,
        // because the decision statistics live at ±f₀/±f₁.
        let bb: Vec<C64> = wave
            .iter()
            .map(|&w| {
                C64::real(50.0) + C64::from_polar(1.0, 0.2) * w + complex_gaussian(&mut rng, 0.8)
            })
            .collect();
        let d = FskDemodulator::new(p());
        let rx = d.demodulate(&bb, 0, bits.len());
        let errors = rx.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "high-SNR FSK packet must be clean");
    }

    #[test]
    fn heavy_noise_degrades_gracefully() {
        let mut rng = seeded(63);
        let bits = random_bits(&mut rng, 200);
        let m = FskModulator::new(p());
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> =
            wave.iter().map(|&w| C64::real(w) + complex_gaussian(&mut rng, 6.0)).collect();
        let d = FskDemodulator::new(p());
        let rx = d.demodulate(&bb, 0, bits.len());
        let errors = rx.iter().zip(&bits).filter(|(a, b)| a != b).count();
        let ber = errors as f64 / bits.len() as f64;
        assert!(ber > 0.0 && ber < 0.5, "BER {ber}");
    }

    #[test]
    fn switch_waveform_is_binary_and_busy() {
        let m = FskModulator::new(p());
        let w = m.switch_waveform(&[true, false]);
        assert!(w.iter().all(|&v| v == 1.0 || v == -1.0));
        // The subcarrier must actually toggle many times per bit.
        let toggles = w.windows(2).filter(|p| p[0] != p[1]).count();
        assert!(toggles > 10, "only {toggles} toggles");
    }

    #[test]
    fn truncated_buffer_returns_fewer_bits() {
        let m = FskModulator::new(p());
        let wave = m.switch_waveform(&[true; 10]);
        let bb: Vec<C64> = wave[..wave.len() / 2].iter().map(|&w| C64::real(w)).collect();
        let d = FskDemodulator::new(p());
        assert!(d.demodulate(&bb, 0, 10).len() < 10);
    }

    #[test]
    fn rate_change_rescales_subcarriers() {
        let params = p().with_bit_rate(500.0);
        assert_eq!(params.f0_hz, 2000.0);
        assert_eq!(params.f1_hz, 4000.0);
    }
}
