//! SNR estimation from received baseband blocks.

use vab_util::complex::C64;

/// Data-aided SNR estimate: given the known transmitted ±1 chip sequence and
/// the received per-chip soft symbols, splits received energy into a
/// coherent (signal) part and a residual (noise) part.
///
/// Returns the linear per-chip SNR estimate, or `None` with fewer than two
/// chips.
pub fn data_aided_snr(chips_rx: &[C64], chips_tx: &[f64]) -> Option<f64> {
    let n = chips_rx.len().min(chips_tx.len());
    if n < 2 {
        return None;
    }
    // Signal amplitude estimate: correlation with the known sequence.
    let corr: C64 =
        chips_rx[..n].iter().zip(&chips_tx[..n]).map(|(&r, &t)| r * t).sum::<C64>() / n as f64;
    let sig_pow = corr.norm_sq();
    // Residual after removing the reconstructed signal.
    let noise_pow: f64 = chips_rx[..n]
        .iter()
        .zip(&chips_tx[..n])
        .map(|(&r, &t)| (r - corr * t).norm_sq())
        .sum::<f64>()
        / n as f64;
    if noise_pow <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(sig_pow / noise_pow)
}

/// Blind SNR estimate via the M2M4 moments method (no reference needed):
/// for a constant-modulus signal in complex Gaussian noise,
/// `S = √(2·M2² − M4)`, `N = M2 − S`.
pub fn m2m4_snr(samples: &[C64]) -> Option<f64> {
    if samples.len() < 8 {
        return None;
    }
    let n = samples.len() as f64;
    let m2: f64 = samples.iter().map(|c| c.norm_sq()).sum::<f64>() / n;
    let m4: f64 = samples.iter().map(|c| c.norm_sq().powi(2)).sum::<f64>() / n;
    let s2 = (2.0 * m2 * m2 - m4).max(0.0).sqrt();
    let noise = (m2 - s2).max(1e-300);
    Some(s2 / noise)
}

/// Converts a linear SNR to dB.
pub fn snr_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use vab_util::approx_eq;
    use vab_util::rng::{complex_gaussian, seeded};

    fn chips_and_rx(snr_lin: f64, n: usize, seed: u64) -> (Vec<f64>, Vec<C64>) {
        let mut rng = seeded(seed);
        let tx: Vec<f64> = (0..n).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect();
        let amp = snr_lin.sqrt();
        let rx: Vec<C64> = tx
            .iter()
            .map(|&t| C64::from_polar(amp, 0.8) * t + complex_gaussian(&mut rng, 1.0))
            .collect();
        (tx, rx)
    }

    #[test]
    fn data_aided_estimates_known_snr() {
        for snr_db_true in [0.0, 6.0, 12.0] {
            let lin = 10f64.powf(snr_db_true / 10.0);
            let (tx, rx) = chips_and_rx(lin, 20_000, 31);
            let est = data_aided_snr(&rx, &tx).expect("enough chips");
            assert!(
                (snr_db(est) - snr_db_true).abs() < 0.5,
                "est {} dB vs true {snr_db_true} dB",
                snr_db(est)
            );
        }
    }

    #[test]
    fn m2m4_estimates_known_snr() {
        for snr_db_true in [3.0, 10.0] {
            let lin = 10f64.powf(snr_db_true / 10.0);
            let (_, rx) = chips_and_rx(lin, 50_000, 32);
            let est = m2m4_snr(&rx).expect("enough samples");
            assert!(
                (snr_db(est) - snr_db_true).abs() < 1.0,
                "est {} dB vs true {snr_db_true} dB",
                snr_db(est)
            );
        }
    }

    #[test]
    fn noiseless_is_infinite() {
        let tx = vec![1.0, -1.0, 1.0, 1.0];
        let rx: Vec<C64> = tx.iter().map(|&t| C64::real(t)).collect();
        assert_eq!(data_aided_snr(&rx, &tx), Some(f64::INFINITY));
    }

    #[test]
    fn too_short_inputs_rejected() {
        assert!(data_aided_snr(&[C64::ONE], &[1.0]).is_none());
        assert!(m2m4_snr(&[C64::ONE; 4]).is_none());
    }

    #[test]
    fn snr_db_conversion() {
        assert!(approx_eq(snr_db(10.0), 10.0, 1e-12));
        assert!(approx_eq(snr_db(1.0), 0.0, 1e-12));
    }
}
