//! # vab-phy — physical layer: waveforms, modulation, demodulation
//!
//! The backscatter PHY of the reproduction:
//!
//! * the reader transmits a continuous-wave carrier (plus OOK-keyed downlink
//!   commands);
//! * the node piggybacks uplink data by toggling its reflection state,
//!   FM0-line-coded at 100–1000 bps;
//! * the reader receive chain strips the (enormous) un-modulated carrier,
//!   matched-filters the chips and decodes FM0 noncoherently.
//!
//! Everything here operates on either real passband waveforms or complex
//! baseband envelopes ([`vab_util::complex::C64`] sequences) around the
//! carrier; the channel crate accepts both.

pub mod ber;
pub mod carrier;
pub mod demod;
pub mod downlink;
pub mod fm0;
pub mod fsk;
pub mod modulation;
pub mod snr;
pub mod sync;
pub mod waveform;

pub use ber::{
    ber_coherent_bpsk, ber_noncoherent_orthogonal, ber_ook_noncoherent, required_ebn0_db,
};
pub use demod::Demodulator;
pub use downlink::{pie_decode, pie_encode, EnvelopeDetector, PieParams};
pub use fm0::{fm0_decode_hard, fm0_encode};
pub use fsk::{FskDemodulator, FskModulator, FskParams};
pub use modulation::{BackscatterModulator, ModParams};
pub use sync::Preamble;
