//! Backscatter modulation: bits → switch states → reflection stream.

use crate::fm0::fm0_encode;
use vab_util::complex::C64;
use vab_util::units::Hertz;

/// Modulation parameters shared by modulator and demodulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModParams {
    /// Uplink bit rate, bits/s.
    pub bit_rate: f64,
    /// Baseband samples per FM0 chip (two chips per bit).
    pub samples_per_chip: usize,
    /// Acoustic carrier.
    pub carrier: Hertz,
}

impl ModParams {
    /// The default VAB operating point: 18.5 kHz carrier, 100 bps, 8 samples
    /// per chip.
    pub fn vab_default() -> Self {
        Self { bit_rate: 100.0, samples_per_chip: 8, carrier: Hertz(18_500.0) }
    }

    /// With a different bit rate.
    pub fn with_bit_rate(mut self, bps: f64) -> Self {
        assert!(bps > 0.0);
        self.bit_rate = bps;
        self
    }

    /// Chip rate (2× bit rate for FM0).
    pub fn chip_rate(&self) -> f64 {
        2.0 * self.bit_rate
    }

    /// Baseband envelope sample rate.
    pub fn baseband_fs(&self) -> f64 {
        self.chip_rate() * self.samples_per_chip as f64
    }

    /// Occupied (main-lobe) bandwidth of the backscatter sidebands, ≈ 2×
    /// chip rate around the carrier.
    pub fn occupied_bandwidth(&self) -> Hertz {
        Hertz(2.0 * self.chip_rate())
    }

    /// Samples in a whole bit.
    pub fn samples_per_bit(&self) -> usize {
        2 * self.samples_per_chip
    }
}

/// Turns payload bits into the node's switch-control waveform.
#[derive(Debug, Clone)]
pub struct BackscatterModulator {
    params: ModParams,
}

impl BackscatterModulator {
    /// Creates a modulator.
    pub fn new(params: ModParams) -> Self {
        assert!(params.samples_per_chip >= 1);
        Self { params }
    }

    /// Parameters in use.
    pub fn params(&self) -> &ModParams {
        &self.params
    }

    /// FM0 switch waveform: one `±1.0` entry per baseband sample.
    /// `+1` = reflect state, `−1` = absorb state.
    pub fn switch_waveform(&self, bits: &[bool]) -> Vec<f64> {
        let chips = fm0_encode(bits);
        let spc = self.params.samples_per_chip;
        let mut w = Vec::with_capacity(chips.len() * spc);
        for c in chips {
            for _ in 0..spc {
                w.push(c);
            }
        }
        w
    }

    /// The reflection-coefficient stream seen by the incident wave, given
    /// the two state coefficients: `Γ(t) ∈ {γ_reflect, γ_absorb}`.
    pub fn gamma_stream(&self, bits: &[bool], g_reflect: C64, g_absorb: C64) -> Vec<C64> {
        self.switch_waveform(bits)
            .into_iter()
            .map(|s| if s > 0.0 { g_reflect } else { g_absorb })
            .collect()
    }

    /// Modulates an incident baseband envelope: element-wise product with
    /// the Γ stream (zero-padded with the absorb state past the data).
    pub fn backscatter(
        &self,
        incident: &[C64],
        bits: &[bool],
        g_reflect: C64,
        g_absorb: C64,
    ) -> Vec<C64> {
        let stream = self.gamma_stream(bits, g_reflect, g_absorb);
        incident.iter().enumerate().map(|(i, &x)| x * *stream.get(i).unwrap_or(&g_absorb)).collect()
    }

    /// Duration of `n_bits` of payload, seconds.
    pub fn duration(&self, n_bits: usize) -> f64 {
        n_bits as f64 / self.params.bit_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    fn p() -> ModParams {
        ModParams::vab_default()
    }

    #[test]
    fn rates_are_consistent() {
        let params = p();
        assert_eq!(params.chip_rate(), 200.0);
        assert_eq!(params.baseband_fs(), 1600.0);
        assert_eq!(params.samples_per_bit(), 16);
        assert_eq!(params.occupied_bandwidth().value(), 400.0);
    }

    #[test]
    fn switch_waveform_length_and_levels() {
        let m = BackscatterModulator::new(p());
        let bits = vec![true, false, true];
        let w = m.switch_waveform(&bits);
        assert_eq!(w.len(), bits.len() * p().samples_per_bit());
        assert!(w.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn waveform_is_piecewise_constant_per_chip() {
        let m = BackscatterModulator::new(p());
        let w = m.switch_waveform(&[true, false]);
        let spc = p().samples_per_chip;
        for chip in w.chunks(spc) {
            assert!(chip.iter().all(|&v| v == chip[0]));
        }
    }

    #[test]
    fn gamma_stream_selects_states() {
        let m = BackscatterModulator::new(p());
        let gr = C64::new(0.9, 0.1);
        let ga = C64::new(0.1, -0.2);
        let stream = m.gamma_stream(&[true], gr, ga);
        assert!(stream.iter().all(|&g| g == gr || g == ga));
        // A "1" bit holds one level for the whole bit.
        assert!(stream.iter().all(|&g| g == stream[0]));
    }

    #[test]
    fn backscatter_scales_incident() {
        let m = BackscatterModulator::new(p());
        let incident = vec![C64::real(2.0); 64];
        let out = m.backscatter(&incident, &[true, false], C64::ONE, C64::ZERO);
        // Reflect samples keep amplitude 2, absorb samples are 0.
        assert!(out.iter().all(|c| approx_eq(c.abs(), 2.0, 1e-12) || c.abs() < 1e-12));
        assert!(out.iter().any(|c| c.abs() > 1.0));
        assert!(out.iter().any(|c| c.abs() < 1.0));
    }

    #[test]
    fn backscatter_pads_with_absorb_state() {
        let m = BackscatterModulator::new(p());
        let incident = vec![C64::ONE; 100]; // longer than 2 bits × 16 samples
        let out = m.backscatter(&incident, &[true, true], C64::ONE, C64::ZERO);
        assert!(out[32..].iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn duration_is_bits_over_rate() {
        let m = BackscatterModulator::new(p().with_bit_rate(500.0));
        assert!(approx_eq(m.duration(100), 0.2, 1e-12));
    }
}
