//! Packet synchronization: preamble design and noncoherent acquisition.

use crate::fm0::fm0_encode;
use crate::modulation::ModParams;
use vab_util::complex::C64;

/// A known bit pattern prepended to every uplink frame.
///
/// Default is the 13-chip Barker code expressed as bits (optimal aperiodic
/// autocorrelation: sidelobes ≤ 1/13 of the peak).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Preamble {
    bits: Vec<bool>,
}

impl Preamble {
    /// Barker-13-based default preamble.
    pub fn barker13() -> Self {
        // +++++--++-+-+ → true×5, false×2, true×2, false, true, false, true
        let pattern =
            [true, true, true, true, true, false, false, true, true, false, true, false, true];
        Self { bits: pattern.to_vec() }
    }

    /// A custom preamble.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        assert!(bits.len() >= 4, "preamble too short to acquire");
        Self { bits }
    }

    /// Preamble bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Never empty (constructor enforces ≥ 4 bits).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ±1 reference waveform at `samples_per_chip` oversampling.
    pub fn reference(&self, params: &ModParams) -> Vec<f64> {
        let chips = fm0_encode(&self.bits);
        let mut w = Vec::with_capacity(chips.len() * params.samples_per_chip);
        for c in chips {
            for _ in 0..params.samples_per_chip {
                w.push(c);
            }
        }
        w
    }

    /// Noncoherent acquisition: slides the ±1 reference over the DC-removed
    /// baseband signal and returns the offset with the largest |correlation|,
    /// provided it clears `threshold` × the average correlation magnitude.
    ///
    /// Returns `(start_of_payload_sample, peak_metric)`.
    pub fn locate(
        &self,
        baseband: &[C64],
        params: &ModParams,
        threshold: f64,
    ) -> Option<(usize, f64)> {
        let reference = self.reference(params);
        let m = reference.len();
        if baseband.len() < m {
            return None;
        }
        let mut best = (0usize, 0.0f64);
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for off in 0..=(baseband.len() - m) {
            let corr: C64 = reference.iter().enumerate().map(|(i, &r)| baseband[off + i] * r).sum();
            let mag = corr.abs();
            sum += mag;
            count += 1;
            if mag > best.1 {
                best = (off, mag);
            }
        }
        let mean = sum / count.max(1) as f64;
        if best.1 > threshold * mean.max(1e-300) {
            Some((best.0 + m, best.1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::remove_dc;
    use crate::modulation::BackscatterModulator;
    use vab_util::rng::{complex_gaussian, seeded};

    fn params() -> ModParams {
        ModParams::vab_default()
    }

    #[test]
    fn barker13_has_13_bits() {
        assert_eq!(Preamble::barker13().len(), 13);
    }

    #[test]
    fn locates_preamble_in_clean_signal() {
        let p = Preamble::barker13();
        let m = BackscatterModulator::new(params());
        let delay = 37;
        // signal: silence, preamble, payload
        let mut bits = p.bits().to_vec();
        bits.extend([true, false, true, true]);
        let wave = m.switch_waveform(&bits);
        let mut sig = vec![C64::ZERO; delay];
        sig.extend(wave.iter().map(|&w| C64::from_polar(1.0, 0.7) * w));
        sig.extend(vec![C64::ZERO; 50]);
        let (start, _) = p.locate(&sig, &params(), 3.0).expect("should acquire");
        let expected = delay + p.len() * params().samples_per_bit();
        assert_eq!(start, expected);
    }

    #[test]
    fn locates_preamble_under_noise_and_phase() {
        let mut rng = seeded(11);
        let p = Preamble::barker13();
        let m = BackscatterModulator::new(params());
        let delay = 120;
        let mut bits = p.bits().to_vec();
        bits.extend([false, true, false, false, true, true]);
        let wave = m.switch_waveform(&bits);
        let mut sig = vec![C64::ZERO; delay];
        sig.extend(wave.iter().map(|&w| C64::from_polar(1.0, 2.1) * w));
        sig.extend(vec![C64::ZERO; 80]);
        // Carrier leak + noise.
        let noisy: Vec<C64> =
            sig.iter().map(|&s| s + C64::real(25.0) + complex_gaussian(&mut rng, 0.3)).collect();
        let clean = remove_dc(&noisy);
        let (start, _) = p.locate(&clean, &params(), 3.0).expect("acquire under noise");
        let expected = delay + p.len() * params().samples_per_bit();
        assert!((start as i64 - expected as i64).abs() <= 2, "start {start} vs {expected}");
    }

    #[test]
    fn no_false_acquisition_on_noise() {
        let mut rng = seeded(12);
        let p = Preamble::barker13();
        let noise: Vec<C64> = (0..2000).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
        assert!(p.locate(&noise, &params(), 5.0).is_none());
    }

    #[test]
    fn too_short_buffer_returns_none() {
        let p = Preamble::barker13();
        let sig = vec![C64::ONE; 10];
        assert!(p.locate(&sig, &params(), 3.0).is_none());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_custom_preamble_rejected() {
        let _ = Preamble::from_bits(vec![true, false]);
    }
}
