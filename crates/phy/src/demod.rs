//! The reader's uplink demodulator.
//!
//! Chain: complex baseband in → carrier (DC) removal → per-chip integration
//! (matched filter for the rectangular chip) → noncoherent FM0 decision.

use crate::carrier::remove_dc_sliding;
use crate::fm0::fm0_decode_soft;
use crate::modulation::ModParams;
use vab_util::complex::C64;

/// Uplink demodulator.
#[derive(Debug, Clone)]
pub struct Demodulator {
    params: ModParams,
    /// Sliding DC-removal window in samples (0 disables removal — for
    /// pre-cleaned input).
    dc_window: usize,
}

impl Demodulator {
    /// Creates a demodulator with a DC-tracking window of ~32 bits.
    pub fn new(params: ModParams) -> Self {
        let dc_window = params.samples_per_bit() * 32;
        Self { params, dc_window }
    }

    /// Disables internal carrier removal (input already cleaned).
    pub fn without_dc_removal(mut self) -> Self {
        self.dc_window = 0;
        self
    }

    /// Parameters in use.
    pub fn params(&self) -> &ModParams {
        &self.params
    }

    /// Integrates the baseband into per-chip soft symbols starting at
    /// `start` (sample index of the first payload chip).
    pub fn chip_integrate(&self, baseband: &[C64], start: usize, n_bits: usize) -> Vec<C64> {
        let spc = self.params.samples_per_chip;
        let n_chips = n_bits * 2;
        let mut out = Vec::with_capacity(n_chips);
        for c in 0..n_chips {
            let lo = start + c * spc;
            let hi = lo + spc;
            if hi > baseband.len() {
                break;
            }
            let sum: C64 = baseband[lo..hi].iter().copied().sum();
            out.push(sum / spc as f64);
        }
        out
    }

    /// Demodulates `n_bits` starting at sample `start`. Returns fewer bits
    /// if the buffer runs out.
    pub fn demodulate(&self, baseband: &[C64], start: usize, n_bits: usize) -> Vec<bool> {
        let cleaned;
        let view: &[C64] = if self.dc_window > 0 {
            cleaned = remove_dc_sliding(baseband, self.dc_window);
            &cleaned
        } else {
            baseband
        };
        let chips = self.chip_integrate(view, start, n_bits);
        let usable = chips.len() - chips.len() % 2;
        fm0_decode_soft(&chips[..usable]).unwrap_or_default()
    }

    /// Per-bit soft decision statistic `|c₀+c₁|² − |c₀−c₁|²` (positive ⇒ 1).
    /// Exposed for soft-input FEC decoders.
    pub fn soft_bits(&self, baseband: &[C64], start: usize, n_bits: usize) -> Vec<f64> {
        let cleaned;
        let view: &[C64] = if self.dc_window > 0 {
            cleaned = remove_dc_sliding(baseband, self.dc_window);
            &cleaned
        } else {
            baseband
        };
        let chips = self.chip_integrate(view, start, n_bits);
        chips.chunks_exact(2).map(|p| (p[0] + p[1]).norm_sq() - (p[0] - p[1]).norm_sq()).collect()
    }
}

/// Counts bit errors between transmitted and received bit vectors (compares
/// the overlapping prefix; missing bits count as errors).
pub fn count_bit_errors(tx: &[bool], rx: &[bool]) -> usize {
    let overlap = tx.len().min(rx.len());
    let mismatches = tx[..overlap].iter().zip(&rx[..overlap]).filter(|(a, b)| a != b).count();
    mismatches + (tx.len() - overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::BackscatterModulator;
    use vab_util::rng::{complex_gaussian, random_bits, seeded};

    fn params() -> ModParams {
        ModParams::vab_default()
    }

    #[test]
    fn clean_roundtrip_zero_errors() {
        let mut rng = seeded(21);
        let bits = random_bits(&mut rng, 64);
        let m = BackscatterModulator::new(params());
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> = wave.iter().map(|&w| C64::from_polar(0.3, 1.9) * w).collect();
        let d = Demodulator::new(params()).without_dc_removal();
        let rx = d.demodulate(&bb, 0, bits.len());
        assert_eq!(count_bit_errors(&bits, &rx), 0);
    }

    #[test]
    fn roundtrip_with_carrier_leak_and_noise() {
        let mut rng = seeded(22);
        let bits = random_bits(&mut rng, 128);
        let m = BackscatterModulator::new(params());
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> = wave
            .iter()
            .map(|&w| {
                C64::real(40.0) + C64::from_polar(1.0, 0.4) * w + complex_gaussian(&mut rng, 0.5)
            })
            .collect();
        let d = Demodulator::new(params());
        let rx = d.demodulate(&bb, 0, bits.len());
        assert_eq!(count_bit_errors(&bits, &rx), 0, "high-SNR packet must be clean");
    }

    #[test]
    fn heavy_noise_produces_errors_but_not_collapse() {
        let mut rng = seeded(23);
        let bits = random_bits(&mut rng, 400);
        let m = BackscatterModulator::new(params());
        let wave = m.switch_waveform(&bits);
        // Chip SNR ≈ −6 dB before integration.
        let bb: Vec<C64> =
            wave.iter().map(|&w| C64::real(w) + complex_gaussian(&mut rng, 2.0)).collect();
        let d = Demodulator::new(params()).without_dc_removal();
        let rx = d.demodulate(&bb, 0, bits.len());
        let errors = count_bit_errors(&bits, &rx);
        let ber = errors as f64 / bits.len() as f64;
        assert!(ber > 0.0, "this SNR should produce some errors");
        assert!(ber < 0.5, "demod should still beat coin-flipping, BER = {ber}");
    }

    #[test]
    fn soft_bits_sign_matches_hard_decisions() {
        let mut rng = seeded(24);
        let bits = random_bits(&mut rng, 32);
        let m = BackscatterModulator::new(params());
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> = wave.iter().map(|&w| C64::from_polar(1.0, 0.2) * w).collect();
        let d = Demodulator::new(params()).without_dc_removal();
        let soft = d.soft_bits(&bb, 0, bits.len());
        let hard = d.demodulate(&bb, 0, bits.len());
        for (s, h) in soft.iter().zip(&hard) {
            assert_eq!(*s >= 0.0, *h);
        }
    }

    #[test]
    fn truncated_buffer_returns_fewer_bits() {
        let m = BackscatterModulator::new(params());
        let bits = vec![true; 10];
        let wave = m.switch_waveform(&bits);
        let bb: Vec<C64> = wave[..wave.len() / 2].iter().map(|&w| C64::real(w)).collect();
        let d = Demodulator::new(params()).without_dc_removal();
        let rx = d.demodulate(&bb, 0, 10);
        assert!(rx.len() < 10);
    }

    #[test]
    fn count_bit_errors_handles_length_mismatch() {
        let tx = vec![true, true, false, false];
        let rx = vec![true, false];
        // one mismatch in overlap + two missing
        assert_eq!(count_bit_errors(&tx, &rx), 3);
        assert_eq!(count_bit_errors(&tx, &tx), 0);
    }
}
