//! Waveform synthesis: tones, pulses and chirps for the reader transmitter.

use vab_util::complex::C64;
use vab_util::TAU;

/// A real sinusoid `amp·sin(2πft + φ)` of `n` samples at rate `fs`.
pub fn tone(freq_hz: f64, fs: f64, n: usize, amp: f64, phase: f64) -> Vec<f64> {
    (0..n).map(|i| amp * (TAU * freq_hz * i as f64 / fs + phase).sin()).collect()
}

/// A gated tone burst: `cycles` full cycles of `freq_hz`, zero-padded to `n`.
pub fn tone_burst(freq_hz: f64, fs: f64, cycles: usize, n: usize, amp: f64) -> Vec<f64> {
    let burst_len = ((cycles as f64 / freq_hz) * fs).round() as usize;
    let mut v = tone(freq_hz, fs, burst_len.min(n), amp, 0.0);
    v.resize(n, 0.0);
    v
}

/// A linear FM chirp sweeping `f0 → f1` over `n` samples (real passband).
/// Chirps make excellent sync preambles: their autocorrelation is a sharp
/// spike with processing gain ≈ time–bandwidth product.
pub fn chirp(f0: f64, f1: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
    let t_total = n as f64 / fs;
    let k = (f1 - f0) / t_total;
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            amp * (TAU * (f0 * t + 0.5 * k * t * t)).sin()
        })
        .collect()
}

/// A raised-cosine amplitude ramp applied in place over the first and last
/// `ramp` samples — projectors cannot step pressure instantaneously.
pub fn apply_ramps(x: &mut [f64], ramp: usize) {
    let n = x.len();
    let r = ramp.min(n / 2);
    for i in 0..r {
        let w = 0.5 - 0.5 * (std::f64::consts::PI * i as f64 / r as f64).cos();
        x[i] *= w;
        x[n - 1 - i] *= w;
    }
}

/// Complex-baseband constant envelope (a CW carrier at baseband is DC).
pub fn cw_baseband(n: usize, amp: f64) -> Vec<C64> {
    vec![C64::real(amp); n]
}

/// RMS of a real signal.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;
    use vab_util::fft::goertzel_power;

    #[test]
    fn tone_frequency_is_right() {
        let fs = 48000.0;
        let x = tone(18500.0, fs, 4800, 1.0, 0.0);
        let on = goertzel_power(&x, 18500.0, fs);
        let off = goertzel_power(&x, 12000.0, fs);
        assert!(on > 1e4 * off);
    }

    #[test]
    fn tone_rms_is_amp_over_sqrt2() {
        let x = tone(1000.0, 48000.0, 48000, 2.0, 0.0);
        assert!(approx_eq(rms(&x), 2.0 / std::f64::consts::SQRT_2, 1e-3));
    }

    #[test]
    fn burst_is_zero_after_gate() {
        let x = tone_burst(1000.0, 48000.0, 10, 1000, 1.0);
        assert_eq!(x.len(), 1000);
        // 10 cycles at 1 kHz / 48 kHz = 480 samples.
        assert!(x[481..].iter().all(|&v| v == 0.0));
        assert!(rms(&x[..480]) > 0.5);
    }

    #[test]
    fn chirp_sweeps_band() {
        let fs = 48000.0;
        let x = chirp(15000.0, 22000.0, fs, 9600, 1.0);
        // Early part near f0, late part near f1.
        let early = &x[..1200];
        let late = &x[8400..];
        assert!(goertzel_power(early, 15400.0, fs) > goertzel_power(early, 21000.0, fs));
        assert!(goertzel_power(late, 21500.0, fs) > goertzel_power(late, 15400.0, fs));
    }

    #[test]
    fn chirp_autocorrelation_is_sharp() {
        let fs = 48000.0;
        let n = 4800;
        let x = chirp(15000.0, 22000.0, fs, n, 1.0);
        let corr = |lag: usize| -> f64 {
            x[..n - lag].iter().zip(&x[lag..]).map(|(a, b)| a * b).sum::<f64>().abs()
        };
        let peak = corr(0);
        assert!(corr(100) < 0.1 * peak);
        assert!(corr(500) < 0.1 * peak);
    }

    #[test]
    fn ramps_taper_edges() {
        let mut x = vec![1.0; 100];
        apply_ramps(&mut x, 10);
        assert_eq!(x[0], 0.0);
        assert_eq!(x[99], 0.0);
        assert!(x[5] > 0.0 && x[5] < 1.0);
        assert_eq!(x[50], 1.0);
    }

    #[test]
    fn cw_baseband_is_dc() {
        let x = cw_baseband(16, 3.0);
        assert!(x.iter().all(|c| *c == C64::real(3.0)));
    }
}
