//! FM0 (bi-phase space) line coding.
//!
//! The standard backscatter line code (also used by EPC Gen2 RFID): the
//! level always inverts at a bit boundary; a **0** additionally inverts in
//! the middle of the bit, a **1** holds. Properties that matter underwater:
//! DC balance (survives the reader's carrier-leak high-pass) and a
//! transition at every bit edge (self-clocking).
//!
//! Chips are represented as `±1.0`; two chips per bit.

/// Encodes bits into FM0 chips (two per bit). The encoder starts from level
/// `+1` before the first bit and returns the chip sequence.
pub fn fm0_encode(bits: &[bool]) -> Vec<f64> {
    let mut chips = Vec::with_capacity(bits.len() * 2);
    let mut level = 1.0;
    for &b in bits {
        // Invert at the bit boundary.
        level = -level;
        if b {
            // 1: hold for the whole bit.
            chips.push(level);
            chips.push(level);
        } else {
            // 0: mid-bit inversion.
            chips.push(level);
            level = -level;
            chips.push(level);
        }
    }
    chips
}

/// Hard-decision FM0 decode from (possibly noisy) chip samples.
///
/// Decoding is differential and does not need the absolute polarity: a bit
/// is **1** when its two half-chips agree in sign and **0** when they
/// differ. Returns `None` when the chip count is odd.
pub fn fm0_decode_hard(chips: &[f64]) -> Option<Vec<bool>> {
    if !chips.len().is_multiple_of(2) {
        return None;
    }
    Some(chips.chunks_exact(2).map(|pair| (pair[0] >= 0.0) == (pair[1] >= 0.0)).collect())
}

/// Soft FM0 decode with complex chip observations (noncoherent): compares
/// the energy of the "hold" hypothesis `|c0 + c1|²` against the "invert"
/// hypothesis `|c0 − c1|²` per bit. Works for any unknown channel phase.
pub fn fm0_decode_soft(chips: &[vab_util::complex::C64]) -> Option<Vec<bool>> {
    if !chips.len().is_multiple_of(2) {
        return None;
    }
    Some(
        chips.chunks_exact(2).map(|p| (p[0] + p[1]).norm_sq() >= (p[0] - p[1]).norm_sq()).collect(),
    )
}

/// Verifies the FM0 invariant on a clean chip stream: the level must invert
/// across every bit boundary. Returns the index of the first violation.
pub fn fm0_check_boundaries(chips: &[f64]) -> Option<usize> {
    (2..chips.len()).step_by(2).find(|&i| (chips[i - 1] >= 0.0) == (chips[i] >= 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::complex::C64;

    #[test]
    fn encode_decode_roundtrip() {
        let bits = vec![true, false, false, true, true, true, false];
        let chips = fm0_encode(&bits);
        assert_eq!(chips.len(), bits.len() * 2);
        assert_eq!(fm0_decode_hard(&chips).expect("even"), bits);
    }

    #[test]
    fn all_patterns_roundtrip() {
        for pattern in 0u8..=255 {
            let bits: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
            let chips = fm0_encode(&bits);
            assert_eq!(fm0_decode_hard(&chips).expect("even"), bits, "pattern {pattern:08b}");
        }
    }

    #[test]
    fn boundary_invariant_holds() {
        let bits = vec![true, true, false, true, false, false, true];
        let chips = fm0_encode(&bits);
        assert_eq!(fm0_check_boundaries(&chips), None);
    }

    #[test]
    fn dc_balance_of_alternating_data() {
        // FM0 is DC-balanced for any data over long runs (each 0 is balanced
        // within itself; 1s alternate polarity thanks to boundary flips).
        let bits: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let chips = fm0_encode(&bits);
        let sum: f64 = chips.iter().sum();
        assert!(sum.abs() <= 2.0, "DC offset {sum}");
    }

    #[test]
    fn decode_survives_global_polarity_flip() {
        let bits = vec![true, false, true, true, false];
        let mut chips = fm0_encode(&bits);
        for c in chips.iter_mut() {
            *c = -*c;
        }
        assert_eq!(fm0_decode_hard(&chips).expect("even"), bits);
    }

    #[test]
    fn soft_decode_survives_channel_phase() {
        let bits = vec![true, false, false, true, true];
        let chips = fm0_encode(&bits);
        // Rotate every chip by an arbitrary channel phase.
        let rotated: Vec<C64> =
            chips.iter().map(|&c| C64::from_polar(c.abs(), 1.234) * c.signum()).collect();
        assert_eq!(fm0_decode_soft(&rotated).expect("even"), bits);
    }

    #[test]
    fn odd_chip_count_rejected() {
        assert!(fm0_decode_hard(&[1.0, -1.0, 1.0]).is_none());
        assert!(fm0_decode_soft(&[C64::ONE]).is_none());
    }

    #[test]
    fn violation_detected() {
        // Handcraft chips violating the boundary rule.
        let chips = [1.0, 1.0, 1.0, 1.0]; // no inversion at boundary index 2
        assert_eq!(fm0_check_boundaries(&chips), Some(2));
    }
}
