//! The downlink: reader → node commands on an OOK-keyed carrier.
//!
//! A backscatter node cannot afford a real receiver; it decodes the
//! downlink with an **envelope detector** (rectifier + RC low-pass +
//! comparator) burning ~2 µW. That front end dictates the line code:
//! **pulse-interval encoding (PIE)**, the same choice EPC Gen2 RFID makes —
//! every symbol is a full-power interval followed by a short power-off
//! "pause"; the *length* of the full-power interval encodes the bit. PIE
//! keeps average power high (the node keeps harvesting during the
//! downlink!) and needs only a threshold and a counter to decode.
//!
//! Symbols (in units of the `tari` reference interval):
//! * `0` → high for 1·tari, low for 0.5·tari
//! * `1` → high for 2·tari, low for 0.5·tari
//! * frame delimiter → low for 2·tari (cannot appear inside data)

use vab_util::complex::C64;

/// PIE timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PieParams {
    /// Reference interval, seconds (Gen2-style: 25–100 µs in RF; acoustic
    /// links use milliseconds).
    pub tari_s: f64,
    /// Baseband sample rate used for waveform generation/detection.
    pub fs: f64,
}

impl PieParams {
    /// Acoustic default: 5 ms tari at 4 kHz envelope rate → ~130 bps
    /// average downlink (ample for commands).
    pub fn vab_default() -> Self {
        Self { tari_s: 5e-3, fs: 4000.0 }
    }

    fn tari_samples(&self) -> usize {
        (self.tari_s * self.fs).round() as usize
    }

    /// Mean downlink bit rate for balanced data, bits/s.
    pub fn mean_bit_rate(&self) -> f64 {
        // 0 → 1.5 tari, 1 → 2.5 tari, average 2 tari per bit.
        1.0 / (2.0 * self.tari_s)
    }

    /// Fraction of downlink time at full carrier power (harvest duty).
    pub fn power_duty(&self) -> f64 {
        // average high time 1.5 tari of average 2.0 tari
        0.75
    }
}

/// Encodes bits into the carrier's on/off envelope (1.0 = full power).
/// A frame delimiter precedes the data.
pub fn pie_encode(bits: &[bool], p: &PieParams) -> Vec<f64> {
    let tari = p.tari_samples();
    let half = tari / 2;
    let mut env = Vec::with_capacity((bits.len() * 3 + 4) * tari);
    // Leading carrier so the node's detector can settle + charge.
    env.extend(std::iter::repeat_n(1.0, 2 * tari));
    // Delimiter: a long off period.
    env.extend(std::iter::repeat_n(0.0, 2 * tari));
    for &b in bits {
        let high = if b { 2 * tari } else { tari };
        env.extend(std::iter::repeat_n(1.0, high));
        env.extend(std::iter::repeat_n(0.0, half));
    }
    // Trailing carrier (back to harvesting).
    env.extend(std::iter::repeat_n(1.0, 2 * tari));
    env
}

/// The node's envelope detector: rectifier → single-pole RC low-pass →
/// hysteretic comparator. Operates on the *magnitude* of the complex
/// baseband (a real node rectifies the passband; at baseband that is the
/// envelope).
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    /// Low-pass coefficient per sample (α = dt/RC).
    alpha: f64,
    /// Comparator thresholds relative to the tracked peak (hysteresis).
    hi_frac: f64,
    lo_frac: f64,
}

impl EnvelopeDetector {
    /// Detector matched to the PIE timing: RC ≈ tari/10 keeps edges sharp
    /// relative to the symbol scale.
    ///
    /// The comparator thresholds sit *low* relative to the tracked peak
    /// (12 % / 6 %): a PIE "off" is true silence from the projector, so the
    /// decision is on/off rather than strong/weak — and a slow narrowband
    /// fade of up to ~8× then passes straight through the slicer instead
    /// of blanking the frame.
    pub fn for_params(p: &PieParams) -> Self {
        // Fast RC (tari/20) so the envelope clears the low OFF threshold
        // well inside the half-tari symbol pause.
        let rc = p.tari_s / 20.0;
        let alpha = (1.0 / p.fs) / rc;
        Self { alpha: alpha.min(1.0), hi_frac: 0.12, lo_frac: 0.06 }
    }

    /// Converts a received complex baseband into a binary on/off stream.
    pub fn slice(&self, baseband: &[C64]) -> Vec<bool> {
        let mut lp = 0.0f64;
        let mut peak = 1e-12f64;
        let mut state = false;
        let mut out = Vec::with_capacity(baseband.len());
        for &x in baseband {
            let mag = x.abs();
            lp += self.alpha * (mag - lp);
            peak = peak.max(lp);
            // Slow peak decay tracks level changes over many symbols.
            peak *= 1.0 - self.alpha * 1e-2;
            if state {
                if lp < self.lo_frac * peak {
                    state = false;
                }
            } else if lp > self.hi_frac * peak {
                state = true;
            }
            out.push(state);
        }
        out
    }
}

/// Decodes a sliced on/off stream back into bits: debounces glitches
/// (multipath edge wiggle), finds the delimiter, then classifies each high
/// interval by length. Returns `None` when no delimiter is found.
pub fn pie_decode(sliced: &[bool], p: &PieParams) -> Option<Vec<bool>> {
    let tari = p.tari_samples() as f64;
    // Run-length encode.
    let mut runs: Vec<(bool, usize)> = Vec::new();
    for &s in sliced {
        match runs.last_mut() {
            Some((level, len)) if *level == s => *len += 1,
            _ => runs.push((s, 1)),
        }
    }
    // Debounce: multipath smearing can split a symbol with sub-tari/4
    // wiggles. Fold any run shorter than tari/4 into its predecessor and
    // re-merge until stable (the first run is kept — it is the pre-frame
    // idle level).
    let min_run = (tari / 4.0) as usize;
    loop {
        let mut merged: Vec<(bool, usize)> = Vec::with_capacity(runs.len());
        let mut changed = false;
        for &(level, len) in &runs {
            match merged.last_mut() {
                Some((prev_level, prev_len)) if *prev_level == level => {
                    *prev_len += len;
                    changed = true;
                }
                Some((prev_level, prev_len)) if len < min_run => {
                    // Absorb the glitch into the previous level.
                    let _ = prev_level;
                    *prev_len += len;
                    changed = true;
                }
                _ => merged.push((level, len)),
            }
        }
        runs = merged;
        if !changed {
            break;
        }
    }
    // Find the delimiter: an off-run of ≥ 1.5 tari.
    let delim = runs.iter().position(|&(level, len)| !level && len as f64 >= 1.5 * tari)?;
    // The final high run is the trailing carrier (the encoder always
    // appends one), not a data symbol.
    let last_high = runs.iter().rposition(|&(level, _)| level);
    let mut bits = Vec::new();
    let mut i = delim + 1;
    while i < runs.len() {
        let (level, len) = runs[i];
        if !level {
            // An off-run much longer than the symbol pause ends the frame.
            if len as f64 > 1.5 * tari && !bits.is_empty() {
                break;
            }
            i += 1;
            continue;
        }
        let high_tari = len as f64 / tari;
        if high_tari >= 2.6 {
            break; // fused trailing carrier, not a symbol
        }
        if Some(i) == last_high && high_tari >= 1.5 {
            break; // the trailing carrier itself
        }
        // Classify: ~1 tari → 0, ~2 tari → 1.
        bits.push(high_tari >= 1.5);
        i += 1;
    }
    Some(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::{complex_gaussian, random_bits, seeded};

    fn p() -> PieParams {
        PieParams::vab_default()
    }

    fn to_baseband(env: &[f64], amp: f64, phase: f64) -> Vec<C64> {
        env.iter().map(|&e| C64::from_polar(amp * e, phase)).collect()
    }

    #[test]
    fn clean_roundtrip() {
        let bits = vec![true, false, false, true, true, false, true, false];
        let env = pie_encode(&bits, &p());
        let bb = to_baseband(&env, 1.0, 0.3);
        let det = EnvelopeDetector::for_params(&p());
        let sliced = det.slice(&bb);
        let decoded = pie_decode(&sliced, &p()).expect("delimiter found");
        assert_eq!(decoded, bits);
    }

    #[test]
    fn roundtrip_with_noise() {
        let mut rng = seeded(71);
        let bits = random_bits(&mut rng, 24);
        let env = pie_encode(&bits, &p());
        // 26 dB envelope SNR — generous, but the downlink rides the *full*
        // carrier (the same signal the node harvests µW from), so its SNR
        // at the node is enormous compared to the uplink's.
        let bb: Vec<C64> =
            env.iter().map(|&e| C64::real(20.0 * e) + complex_gaussian(&mut rng, 1.0)).collect();
        let det = EnvelopeDetector::for_params(&p());
        let decoded = pie_decode(&det.slice(&bb), &p()).expect("delimiter");
        assert_eq!(decoded, bits);
    }

    #[test]
    fn no_delimiter_no_decode() {
        let sliced = vec![true; 10_000];
        assert!(pie_decode(&sliced, &p()).is_none());
    }

    #[test]
    fn amplitude_scale_invariance() {
        // The comparator tracks its own peak: 20 dB level changes are fine.
        let bits = vec![false, true, true, false];
        let env = pie_encode(&bits, &p());
        for amp in [0.01, 1.0, 100.0] {
            let bb = to_baseband(&env, amp, 1.0);
            let det = EnvelopeDetector::for_params(&p());
            let decoded = pie_decode(&det.slice(&bb), &p()).expect("delimiter");
            assert_eq!(decoded, bits, "failed at amplitude {amp}");
        }
    }

    #[test]
    fn harvest_duty_is_high() {
        // PIE's raison d'être: the node keeps charging during commands.
        let bits = random_bits(&mut seeded(72), 64);
        let env = pie_encode(&bits, &p());
        let duty = env.iter().sum::<f64>() / env.len() as f64;
        assert!(duty > 0.65, "downlink power duty {duty}");
        assert!((p().power_duty() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn mean_bit_rate_matches_timing() {
        // 5 ms tari, avg 2 tari/bit → 100 bps.
        assert!((p().mean_bit_rate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let env = pie_encode(&[], &p());
        let det = EnvelopeDetector::for_params(&p());
        let decoded =
            pie_decode(&det.slice(&to_baseband(&env, 1.0, 0.0)), &p()).expect("delimiter");
        assert!(decoded.is_empty());
    }
}
