//! Bit-error-rate theory and measurement.
//!
//! The uplink's noncoherent FM0 decision (`|c₀+c₁|²` vs `|c₀−c₁|²`) is
//! exactly noncoherent binary orthogonal signaling, so its AWGN BER is
//! `½·exp(−Eb/2N₀)`. The closed forms here calibrate the link-budget Monte
//! Carlo and validate the sample-level demodulator.

use vab_util::special::{marcum_q1, q_func};

/// Noncoherent binary **orthogonal** signaling (our FM0 demod, noncoherent
/// FSK): `Pb = ½·e^{−Eb/2N0}`.
pub fn ber_noncoherent_orthogonal(ebn0_lin: f64) -> f64 {
    (0.5 * (-ebn0_lin.max(0.0) / 2.0).exp()).min(0.5)
}

/// Coherent BPSK reference: `Pb = Q(√(2·Eb/N0))`.
pub fn ber_coherent_bpsk(ebn0_lin: f64) -> f64 {
    q_func((2.0 * ebn0_lin.max(0.0)).sqrt()).min(0.5)
}

/// Noncoherent OOK with an optimal fixed threshold:
/// `Pb = ½[Q₁(√(2Eb/N0), λ) + 1 − Q₁(0, λ)]` evaluated at the midpoint
/// threshold `λ = √(Eb/2N0)`… in practice well approximated by
/// `½·e^{−Eb/4N0}` at high SNR; we compute the Marcum-Q exact form.
pub fn ber_ook_noncoherent(ebn0_lin: f64) -> f64 {
    let e = ebn0_lin.max(0.0);
    if e == 0.0 {
        return 0.5;
    }
    let a = (2.0 * e).sqrt();
    let lambda = a / 2.0 + 1.0 / a.max(1e-9); // near-optimal threshold
    let p_miss = 1.0 - marcum_q1(a, lambda);
    let p_false = (-lambda * lambda / 2.0).exp(); // Rayleigh tail Q1(0, λ)
    (0.5 * (p_miss + p_false)).min(0.5)
}

/// Eb/N0 (dB) required for a target BER under noncoherent orthogonal
/// signaling — inverts the closed form.
pub fn required_ebn0_db(target_ber: f64) -> f64 {
    assert!(target_ber > 0.0 && target_ber < 0.5, "target BER in (0, 0.5)");
    let lin = -2.0 * (2.0 * target_ber).ln();
    10.0 * lin.log10()
}

/// An empirical BER accumulator with exact binomial bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct BerCounter {
    errors: u64,
    bits: u64,
}

impl BerCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch.
    pub fn record(&mut self, errors: usize, bits: usize) {
        assert!(errors <= bits, "more errors than bits");
        self.errors += errors as u64;
        self.bits += bits as u64;
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &BerCounter) {
        self.errors += other.errors;
        self.bits += other.bits;
    }

    /// Total bits observed.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total errors observed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Point estimate (0.0 when no bits observed).
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Upper bound of the ~95 % Clopper-Pearson-ish interval using the
    /// rule-of-three for zero observed errors, normal approx otherwise.
    pub fn ber_upper95(&self) -> f64 {
        if self.bits == 0 {
            return 1.0;
        }
        if self.errors == 0 {
            return 3.0 / self.bits as f64;
        }
        let p = self.ber();
        let se = (p * (1.0 - p) / self.bits as f64).sqrt();
        (p + 1.96 * se).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;
    use vab_util::db::db_to_lin_pow;

    #[test]
    fn orthogonal_known_points() {
        // Eb/N0 = 0 → 0.5·e^0 → 0.5 cap; 10 dB → 0.5·e^−5 ≈ 3.37e−3.
        assert!(approx_eq(ber_noncoherent_orthogonal(db_to_lin_pow(10.0)), 3.369e-3, 1e-3));
        assert_eq!(ber_noncoherent_orthogonal(0.0), 0.5);
    }

    #[test]
    fn bpsk_beats_noncoherent_orthogonal() {
        for db in [4.0, 8.0, 12.0] {
            let e = db_to_lin_pow(db);
            assert!(ber_coherent_bpsk(e) < ber_noncoherent_orthogonal(e));
        }
    }

    #[test]
    fn ook_between_half_and_zero_and_monotone() {
        let mut prev = 0.51;
        for db in [0.0, 4.0, 8.0, 12.0, 16.0] {
            let b = ber_ook_noncoherent(db_to_lin_pow(db));
            assert!(b < prev, "BER must fall with SNR: {b} at {db} dB");
            assert!(b <= 0.5);
            prev = b;
        }
    }

    #[test]
    fn required_ebn0_inverts_formula() {
        for ber in [1e-2, 1e-3, 1e-5] {
            let db = required_ebn0_db(ber);
            let back = ber_noncoherent_orthogonal(db_to_lin_pow(db));
            assert!(approx_eq(back, ber, 1e-6), "{back} vs {ber}");
        }
    }

    #[test]
    fn ber_1e3_needs_about_11_db() {
        // Rule of thumb for noncoherent orthogonal: BER 1e−3 ↔ ~10.9 dB.
        let db = required_ebn0_db(1e-3);
        assert!(db > 10.0 && db < 12.0, "got {db}");
    }

    #[test]
    fn counter_accumulates_and_merges() {
        let mut a = BerCounter::new();
        a.record(3, 1000);
        let mut b = BerCounter::new();
        b.record(1, 1000);
        a.merge(&b);
        assert_eq!(a.errors(), 4);
        assert_eq!(a.bits(), 2000);
        assert!(approx_eq(a.ber(), 2e-3, 1e-12));
    }

    #[test]
    fn rule_of_three_for_zero_errors() {
        let mut c = BerCounter::new();
        c.record(0, 30_000);
        assert!(approx_eq(c.ber_upper95(), 1e-4, 1e-9));
        assert_eq!(c.ber(), 0.0);
    }

    #[test]
    #[should_panic(expected = "more errors than bits")]
    fn counter_rejects_impossible_batch() {
        BerCounter::new().record(5, 3);
    }
}
