//! Loading `trace.jsonl` event streams and `metrics.json` snapshots.
//!
//! The JSONL sink shards its buffers per thread, so on-disk line order is
//! *not* sequence order: [`Trace::load`] re-sorts by `seq` after parsing.
//! A campaign killed mid-write leaves a truncated final line; the loader
//! skips it (and any isolated corrupt line) with a warning instead of
//! failing the whole analysis.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::Json;

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global monotone sequence number — monotone *per emitting process*;
    /// two processes' traces reuse overlapping ranges.
    pub seq: u64,
    /// Microseconds since the observability epoch — the *emitter's*
    /// epoch; clocks of merged traces are mutually skewed.
    pub t_us: u64,
    /// Emitting subsystem (`"link.arq"`, `"sim.campaign"`, …).
    pub target: String,
    /// Event name (`"retransmit"`, `"deployment_done"`, …).
    pub name: String,
    /// Typed payload (always a JSON object for well-formed traces).
    pub fields: Json,
    /// Which trace this event came from (empty for a single-file load;
    /// [`Trace::merge`] stamps the per-input label).
    pub source: String,
}

impl TraceEvent {
    /// `target.name`, the event-family key used across the analyzer.
    pub fn family(&self) -> String {
        format!("{}.{}", self.target, self.name)
    }

    /// Compact single-line rendering for context windows.
    pub fn to_display_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "#{:<8} {:>10.3} ms  {}.{}",
            self.seq,
            self.t_us as f64 / 1000.0,
            self.target,
            self.name
        );
        if let Some(fields) = self.fields.as_obj() {
            for (k, v) in fields {
                match v {
                    Json::Num(n) => {
                        let _ = write!(out, " {k}={n}");
                    }
                    Json::Str(s) => {
                        let _ = write!(out, " {k}={s}");
                    }
                    Json::Bool(b) => {
                        let _ = write!(out, " {k}={b}");
                    }
                    other => {
                        let _ = write!(out, " {k}={other:?}");
                    }
                }
            }
        }
        out
    }
}

/// A parsed trace plus bookkeeping about what had to be skipped.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events sorted by sequence number.
    pub events: Vec<TraceEvent>,
    /// Malformed non-final lines that were skipped (line numbers, 1-based).
    pub skipped_lines: Vec<usize>,
    /// True when the final line was truncated mid-record (killed writer).
    pub truncated_tail: bool,
}

impl Trace {
    /// Parses a JSONL trace from a string. Malformed lines are skipped and
    /// recorded; an unparseable *final* line is flagged as a truncated
    /// tail, which callers should surface as a warning, not an error.
    pub fn parse(text: &str) -> Trace {
        let lines: Vec<&str> = text.lines().collect();
        let last_idx = lines.len().saturating_sub(1);
        let mut trace = Trace::default();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line).ok().and_then(|v| event_from_json(&v)) {
                Some(e) => trace.events.push(e),
                None if i == last_idx => trace.truncated_tail = true,
                None => trace.skipped_lines.push(i + 1),
            }
        }
        trace.events.sort_by_key(|e| e.seq);
        trace
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> std::io::Result<Trace> {
        Ok(Trace::parse(&std::fs::read_to_string(path)?))
    }

    /// Wall-clock span covered by the events, in seconds.
    pub fn span_s(&self) -> f64 {
        match (self.events.first(), self.events.iter().map(|e| e.t_us).max()) {
            (Some(first), Some(t_max)) => {
                let t_min = self.events.iter().map(|e| e.t_us).min().unwrap_or(first.t_us);
                (t_max - t_min) as f64 / 1e6
            }
            _ => 0.0,
        }
    }

    /// Event counts per `target.name` family, sorted by name.
    pub fn family_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.family()).or_insert(0) += 1;
        }
        counts
    }

    /// Merges traces from several processes (e.g. a daemon's JSONL and a
    /// client's) into one, stamping each event's `source` with the given
    /// label. Because `seq` is only monotone per process and the clocks
    /// are mutually skewed, neither `seq` nor `t_us` totally orders a
    /// merged stream — events sort by `(seq, source, t_us)`, which is
    /// deterministic whatever order the inputs are supplied in (labels
    /// must be distinct; equal-seq events from different processes tie-
    /// break lexicographically by label, never by input position).
    pub fn merge<'a>(parts: impl IntoIterator<Item = (&'a str, Trace)>) -> Trace {
        let mut merged = Trace::default();
        for (label, mut part) in parts {
            for e in &mut part.events {
                e.source = label.to_string();
            }
            merged.events.append(&mut part.events);
            merged.skipped_lines.extend(part.skipped_lines);
            merged.truncated_tail |= part.truncated_tail;
        }
        merged.events.sort_by(|a, b| (a.seq, &a.source, a.t_us).cmp(&(b.seq, &b.source, b.t_us)));
        merged.skipped_lines.sort_unstable();
        merged
    }

    /// Indices of the events in `family`, in sequence order.
    pub fn family_indices(&self, target: &str, name: &str) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.target == target && e.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

fn event_from_json(v: &Json) -> Option<TraceEvent> {
    Some(TraceEvent {
        seq: v.u64_field("seq")?,
        t_us: v.u64_field("t_us")?,
        target: v.str_field("target")?.to_string(),
        name: v.str_field("event")?.to_string(),
        fields: v.get("fields").cloned().unwrap_or(Json::Obj(Vec::new())),
        source: String::new(),
    })
}

/// One histogram from a `metrics.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDoc {
    /// Instrument name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: f64,
    /// `(upper_bound, cumulative-style bucket count)`; the overflow bucket
    /// carries `f64::INFINITY` as its bound.
    pub buckets: Vec<(f64, u64)>,
    /// Derived quantiles, when the snapshot carries them.
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

impl HistDoc {
    /// Mean seconds (or whatever unit the histogram records) per call.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile: the snapshot's embedded value when present (p50 /
    /// p95 / p99), else re-derived from the buckets with the same
    /// log-interpolation rule `vab-obs` uses — so old snapshots without
    /// embedded quantiles still report percentiles.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        match q {
            _ if self.count == 0 || !(q > 0.0 && q <= 1.0) => return None,
            _ if (q - 0.50).abs() < 1e-12 && self.p50.is_some() => return self.p50,
            _ if (q - 0.95).abs() < 1e-12 && self.p95.is_some() => return self.p95,
            _ if (q - 0.99).abs() < 1e-12 && self.p99.is_some() => return self.p99,
            _ => {}
        }
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        let mut last_finite = None;
        for (i, &(bound, n)) in self.buckets.iter().enumerate() {
            if bound.is_finite() {
                last_finite = Some(bound);
            }
            if n == 0 {
                continue;
            }
            let below = seen as f64;
            seen += n;
            if (seen as f64) < rank {
                continue;
            }
            if !bound.is_finite() {
                return last_finite.or(Some(f64::INFINITY));
            }
            let lo = if i > 0 { self.buckets[i - 1].0 } else { bound / 10.0 };
            let frac = ((rank - below) / n as f64).clamp(0.0, 1.0);
            return Some(if lo > 0.0 && bound > lo {
                lo * (bound / lo).powf(frac)
            } else {
                lo + (bound - lo) * frac
            });
        }
        last_finite.or(Some(f64::INFINITY))
    }
}

/// Process-wide allocator totals from a snapshot's `alloc` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotalsDoc {
    /// Allocation calls counted.
    pub allocs: u64,
    /// Deallocation calls counted.
    pub frees: u64,
    /// Bytes requested across counted allocations.
    pub bytes_allocated: u64,
    /// Bytes released across counted frees.
    pub bytes_freed: u64,
    /// Live bytes at snapshot time.
    pub live_bytes: u64,
    /// High-water mark of live bytes (peak-RSS proxy).
    pub peak_live_bytes: u64,
}

/// One stage's allocation counters from a snapshot's `alloc` section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocStageDoc {
    /// Stage name (shared with the latency histogram).
    pub name: String,
    /// Stage invocations recorded.
    pub calls: u64,
    /// Allocations attributed to the stage alone.
    pub self_allocs: u64,
    /// Bytes attributed to the stage alone.
    pub self_bytes: u64,
    /// Allocations inside the stage, children included.
    pub cum_allocs: u64,
    /// Bytes inside the stage, children included.
    pub cum_bytes: u64,
}

/// A parsed `metrics.json` snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// General histograms.
    pub histograms: Vec<HistDoc>,
    /// Per-stage wall-clock histograms (seconds).
    pub stages: Vec<HistDoc>,
    /// Allocator totals (`None` when the run had no allocation profile).
    pub alloc_totals: Option<AllocTotalsDoc>,
    /// Per-stage allocation counters (empty without a profile).
    pub alloc_stages: Vec<AllocStageDoc>,
}

impl MetricsDoc {
    /// Parses the JSON text of a snapshot.
    pub fn parse(text: &str) -> Result<MetricsDoc, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let mut doc = MetricsDoc::default();
        if let Some(counters) = v.get("counters").and_then(Json::as_obj) {
            for (name, val) in counters {
                doc.counters.push((name.clone(), val.as_u64().unwrap_or(0)));
            }
        }
        if let Some(gauges) = v.get("gauges").and_then(Json::as_obj) {
            for (name, val) in gauges {
                doc.gauges.push((name.clone(), val.as_f64().unwrap_or(f64::NAN)));
            }
        }
        for (key, dst) in [("histograms", 0usize), ("stages", 1)] {
            if let Some(hists) = v.get(key).and_then(Json::as_arr) {
                for h in hists {
                    let parsed = hist_from_json(h)
                        .ok_or_else(|| format!("malformed histogram entry in {key:?}"))?;
                    if dst == 0 {
                        doc.histograms.push(parsed);
                    } else {
                        doc.stages.push(parsed);
                    }
                }
            }
        }
        if let Some(alloc) = v.get("alloc") {
            doc.alloc_totals = Some(AllocTotalsDoc {
                allocs: alloc.u64_field("allocs").unwrap_or(0),
                frees: alloc.u64_field("frees").unwrap_or(0),
                bytes_allocated: alloc.u64_field("bytes_allocated").unwrap_or(0),
                bytes_freed: alloc.u64_field("bytes_freed").unwrap_or(0),
                live_bytes: alloc.u64_field("live_bytes").unwrap_or(0),
                peak_live_bytes: alloc.u64_field("peak_live_bytes").unwrap_or(0),
            });
            for s in alloc.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
                doc.alloc_stages.push(AllocStageDoc {
                    name: s.str_field("name").ok_or("alloc stage without name")?.to_string(),
                    calls: s.u64_field("calls").unwrap_or(0),
                    self_allocs: s.u64_field("self_allocs").unwrap_or(0),
                    self_bytes: s.u64_field("self_bytes").unwrap_or(0),
                    cum_allocs: s.u64_field("cum_allocs").unwrap_or(0),
                    cum_bytes: s.u64_field("cum_bytes").unwrap_or(0),
                });
            }
        }
        Ok(doc)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<MetricsDoc, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        MetricsDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Counter lookup.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Stage-histogram lookup.
    pub fn stage(&self, name: &str) -> Option<&HistDoc> {
        self.stages.iter().find(|h| h.name == name)
    }
}

fn hist_from_json(v: &Json) -> Option<HistDoc> {
    let mut buckets = Vec::new();
    for b in v.get("buckets").and_then(Json::as_arr)? {
        let le = match b.get("le") {
            Some(Json::Num(x)) => *x,
            Some(Json::Str(s)) if s == "+inf" => f64::INFINITY,
            _ => return None,
        };
        buckets.push((le, b.u64_field("count")?));
    }
    Some(HistDoc {
        name: v.str_field("name")?.to_string(),
        count: v.u64_field("count")?,
        sum: v.f64_field("sum").unwrap_or(f64::NAN),
        buckets,
        p50: v.f64_field("p50"),
        p95: v.f64_field("p95"),
        p99: v.f64_field("p99"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, target: &str, name: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"t_us\":{},\"target\":\"{target}\",\"event\":\"{name}\",\"fields\":{{\"trial\":{seq}}}}}",
            seq * 100
        )
    }

    #[test]
    fn parses_and_resorts_sharded_order() {
        let text = format!(
            "{}\n{}\n{}\n",
            line(5, "link.arq", "retransmit"),
            line(1, "sim.campaign", "campaign_start"),
            line(3, "harvest.pmu", "brownout")
        );
        let t = Trace::parse(&text);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events[0].seq, 1);
        assert_eq!(t.events[2].seq, 5);
        assert!(!t.truncated_tail);
        assert!(t.skipped_lines.is_empty());
        assert_eq!(t.family_counts().get("link.arq.retransmit"), Some(&1));
        assert_eq!(t.family_indices("harvest.pmu", "brownout"), vec![1]);
        assert!((t.span_s() - 400e-6).abs() < 1e-12, "span: {}", t.span_s());
    }

    #[test]
    fn truncated_tail_is_flagged_not_fatal() {
        let mut text = format!("{}\n{}\n", line(1, "a", "b"), line(2, "a", "b"));
        text.push_str("{\"seq\":3,\"t_us\":99,\"targ"); // killed mid-write
        let t = Trace::parse(&text);
        assert_eq!(t.events.len(), 2);
        assert!(t.truncated_tail);
        assert!(t.skipped_lines.is_empty());
    }

    #[test]
    fn interior_corruption_is_skipped_with_line_numbers() {
        let text = format!("{}\nnot json at all\n{}\n", line(1, "a", "b"), line(2, "a", "b"));
        let t = Trace::parse(&text);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.skipped_lines, vec![2]);
        assert!(!t.truncated_tail);
    }

    #[test]
    fn merge_is_deterministic_under_skew_and_duplicate_seq_ranges() {
        // Daemon and client both number events from 1 (duplicate seq
        // ranges) and their t_us clocks are skewed by ~1 hour: neither
        // field alone can order the merged stream.
        let daemon = format!(
            "{}\n{}\n{}\n",
            line(1, "svc.server", "listening"),
            line(2, "svc.pool", "job_done"),
            line(3, "svc.server", "stopped")
        );
        let client = {
            // Same seqs, wildly different (earlier) clock.
            let l = |seq: u64, name: &str| {
                format!(
                    "{{\"seq\":{seq},\"t_us\":7,\"target\":\"svc.client\",\"event\":\"{name}\"}}"
                )
            };
            format!("{}\n{}\n", l(1, "span_begin"), l(2, "span_end"))
        };
        let ab =
            Trace::merge([("client", Trace::parse(&client)), ("daemon", Trace::parse(&daemon))]);
        let ba =
            Trace::merge([("daemon", Trace::parse(&daemon)), ("client", Trace::parse(&client))]);
        let key = |t: &Trace| -> Vec<(u64, String, String)> {
            t.events.iter().map(|e| (e.seq, e.source.clone(), e.name.clone())).collect()
        };
        assert_eq!(key(&ab), key(&ba), "merge order must not depend on input order");
        assert_eq!(ab.events.len(), 5);
        // Equal seqs tie-break by label, lexicographically.
        assert_eq!(ab.events[0].source, "client");
        assert_eq!(ab.events[1].source, "daemon");
        // Source survives family queries untouched.
        assert_eq!(ab.family_indices("svc.client", "span_end").len(), 1);
    }

    #[test]
    fn metrics_doc_parses_the_snapshot_shape() {
        let text = r#"{
  "counters": {"arq.retransmits": 12, "mc.trials": 150},
  "gauges": {"x": 1.5},
  "histograms": [],
  "stages": [
    {"name":"sim.linkbudget_trial","count":4,"sum":0.02,"p50":0.004,"p95":0.009,"p99":0.0099,"buckets":[{"le":0.001,"count":0},{"le":0.01,"count":3},{"le":"+inf","count":1}]}
  ]
}"#;
        let doc = MetricsDoc::parse(text).expect("parse");
        assert_eq!(doc.counter("arq.retransmits"), Some(12));
        let st = doc.stage("sim.linkbudget_trial").expect("stage");
        assert_eq!(st.count, 4);
        assert_eq!(st.p95, Some(0.009));
        assert_eq!(st.buckets.last().map(|b| b.0), Some(f64::INFINITY));
        assert!((st.mean() - 0.005).abs() < 1e-12);
    }
}
