//! The `baseline` subcommand: gate a `BENCH_<sha>.json` perf snapshot
//! against the committed reference (`crates/bench/baseline.json`).
//!
//! CI runners and developer laptops differ wildly in absolute speed, so
//! the default gate is **share-based**: each figure's share of total
//! wall time, and each stage's share of total stage time, must not grow
//! past the baseline's tolerance. Structure ("channel realization is
//! ~60% of the run") travels across machines; absolute milliseconds do
//! not. An `--absolute` mode gates raw seconds for same-machine A/B
//! comparisons.
//!
//! The baseline also records absolute references (`wall_s`, `mean_us`)
//! so `--write` snapshots are self-documenting and absolute mode has
//! numbers to gate on.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::Json;

/// Baseline schema identifier.
pub const BASELINE_SCHEMA: &str = "vab-bench-baseline/1";

/// A parsed `BENCH_<sha>.json` snapshot.
#[derive(Debug, Clone, Default)]
pub struct BenchDoc {
    /// Git revision tag of the run.
    pub sha: String,
    /// `quick` or `full`.
    pub mode: String,
    /// Sum of per-figure wall times.
    pub total_wall_s: f64,
    /// Per-figure records.
    pub figures: Vec<FigDoc>,
}

/// One figure's record inside a bench snapshot.
#[derive(Debug, Clone)]
pub struct FigDoc {
    /// Figure name.
    pub name: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Per-stage `(name, count, sum_s)` deltas.
    pub stages: Vec<(String, u64, f64)>,
    /// Per-stage allocation footprints (`alloc_count > 0` entries only;
    /// empty when the run had no allocation profile).
    pub alloc: Vec<FigAllocDoc>,
}

/// One stage's allocation footprint inside a figure record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigAllocDoc {
    /// Stage name.
    pub name: String,
    /// Stage invocations during the figure.
    pub calls: u64,
    /// Self-attributed allocation count.
    pub alloc_count: u64,
    /// Self-attributed bytes.
    pub alloc_bytes: u64,
}

impl BenchDoc {
    /// Parses the JSON text of a `BENCH_<sha>.json` file.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v.str_field("schema").unwrap_or("");
        if schema != crate::PERF_SCHEMA {
            return Err(format!(
                "unsupported perf snapshot schema {schema:?} (expected {:?})",
                crate::PERF_SCHEMA
            ));
        }
        let mut doc = BenchDoc {
            sha: v.str_field("sha").unwrap_or("unknown").to_string(),
            mode: v.str_field("mode").unwrap_or("unknown").to_string(),
            total_wall_s: v.f64_field("total_wall_s").unwrap_or(0.0),
            figures: Vec::new(),
        };
        for f in v.get("figures").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = f.str_field("name").ok_or("figure without name")?.to_string();
            let mut stages = Vec::new();
            let mut alloc = Vec::new();
            for s in f.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
                let sname = s.str_field("name").ok_or("stage without name")?.to_string();
                let count = s.u64_field("count").unwrap_or(0);
                stages.push((sname.clone(), count, s.f64_field("sum_s").unwrap_or(0.0)));
                let alloc_count = s.u64_field("alloc_count").unwrap_or(0);
                if alloc_count > 0 {
                    alloc.push(FigAllocDoc {
                        name: sname,
                        calls: count,
                        alloc_count,
                        alloc_bytes: s.u64_field("alloc_bytes").unwrap_or(0),
                    });
                }
            }
            doc.figures.push(FigDoc {
                name,
                wall_s: f.f64_field("wall_s").unwrap_or(0.0),
                stages,
                alloc,
            });
        }
        Ok(doc)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<BenchDoc, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Aggregated per-stage `(count, sum_s)` across all figures.
    pub fn stage_totals(&self) -> Vec<(String, u64, f64)> {
        let mut map: std::collections::BTreeMap<&str, (u64, f64)> = Default::default();
        for f in &self.figures {
            for (name, count, sum) in &f.stages {
                let e = map.entry(name).or_insert((0, 0.0));
                e.0 += count;
                e.1 += sum;
            }
        }
        map.into_iter().map(|(n, (c, s))| (n.to_string(), c, s)).collect()
    }
}

/// One reference entry in the baseline (figure or stage).
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Figure or stage name.
    pub name: String,
    /// Share of the run (figure: of total wall; stage: of stage time).
    pub share: f64,
    /// Absolute reference (figure: wall seconds; stage: mean µs/call).
    pub abs: f64,
}

/// The committed perf reference.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Mode the baseline was captured in (`quick` expected in CI).
    pub mode: String,
    /// Allowed relative growth (0.5 = +50%) before a share regresses.
    pub tolerance: f64,
    /// Entries below this share never gate (noise floor).
    pub min_share: f64,
    /// Total wall seconds of the reference run (informational).
    pub total_wall_s: f64,
    /// Per-figure references.
    pub figures: Vec<BaselineEntry>,
    /// Per-stage references.
    pub stages: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the committed baseline JSON.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v.str_field("schema").unwrap_or("");
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "unsupported baseline schema {schema:?} (expected {BASELINE_SCHEMA:?})"
            ));
        }
        let entries = |key: &str, abs_key: &str| -> Vec<BaselineEntry> {
            v.get(key)
                .and_then(Json::as_obj)
                .map(|fields| {
                    fields
                        .iter()
                        .map(|(name, e)| BaselineEntry {
                            name: name.clone(),
                            share: e.f64_field("share").unwrap_or(0.0),
                            abs: e.f64_field(abs_key).unwrap_or(0.0),
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(Baseline {
            mode: v.str_field("mode").unwrap_or("quick").to_string(),
            tolerance: v.f64_field("tolerance").unwrap_or(0.5),
            min_share: v.f64_field("min_share").unwrap_or(0.02),
            total_wall_s: v.f64_field("total_wall_s").unwrap_or(0.0),
            figures: entries("figures", "wall_s"),
            stages: entries("stages", "mean_us"),
        })
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Builds a fresh baseline from a bench snapshot (the `--write` path).
    pub fn from_bench(doc: &BenchDoc, tolerance: f64, min_share: f64) -> Baseline {
        let total = doc.total_wall_s.max(1e-12);
        let figures = doc
            .figures
            .iter()
            .map(|f| BaselineEntry { name: f.name.clone(), share: f.wall_s / total, abs: f.wall_s })
            .collect();
        let stage_totals = doc.stage_totals();
        let stage_sum: f64 = stage_totals.iter().map(|(_, _, s)| s).sum::<f64>().max(1e-12);
        let stages = stage_totals
            .iter()
            .map(|(name, count, sum)| BaselineEntry {
                name: name.clone(),
                share: sum / stage_sum,
                abs: if *count > 0 { 1e6 * sum / *count as f64 } else { 0.0 },
            })
            .collect();
        Baseline {
            mode: doc.mode.clone(),
            tolerance,
            min_share,
            total_wall_s: doc.total_wall_s,
            figures,
            stages,
        }
    }

    /// Renders the baseline as committed JSON (stable order, pretty).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{BASELINE_SCHEMA}\",\n  \"mode\": \"{}\",\n  \"tolerance\": {:?},\n  \"min_share\": {:?},\n  \"total_wall_s\": {:?},\n  \"figures\": {{",
            self.mode, self.tolerance, self.min_share, self.total_wall_s
        );
        for (i, e) in self.figures.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "\"{}\": {{\"share\": {:.6}, \"wall_s\": {:.6}}}",
                e.name, e.share, e.abs
            );
        }
        out.push_str(if self.figures.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"stages\": {");
        for (i, e) in self.stages.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "\"{}\": {{\"share\": {:.6}, \"mean_us\": {:.3}}}",
                e.name, e.share, e.abs
            );
        }
        out.push_str(if self.stages.is_empty() { "}\n}" } else { "\n  }\n}" });
        out.push('\n');
        out
    }
}

/// One gate check's outcome.
#[derive(Debug, Clone)]
pub struct BaselineLine {
    /// Figure or stage name.
    pub name: String,
    /// `figure` or `stage`.
    pub kind: &'static str,
    /// Baseline value (share, or absolute in absolute mode).
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Whether the entry regressed past tolerance.
    pub regression: bool,
}

/// The whole gate result.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Per-entry outcomes.
    pub lines: Vec<BaselineLine>,
    /// Baseline entries with no counterpart in the snapshot.
    pub missing: Vec<String>,
    /// Whether absolute mode was used.
    pub absolute: bool,
}

impl BaselineReport {
    /// Number of regressed entries.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regression).count()
    }

    /// Renders the gate table plus a verdict.
    pub fn render(&self) -> String {
        let unit = if self.absolute { "abs" } else { "share" };
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "{:<30} {:<8} {:>12} {:>12}",
            "name",
            "kind",
            format!("base {unit}"),
            format!("now {unit}")
        );
        for l in &self.lines {
            let _ = writeln!(
                out,
                "{:<30} {:<8} {:>12.4} {:>12.4}{}",
                l.name,
                l.kind,
                l.base,
                l.current,
                if l.regression { "  REGRESSION" } else { "" }
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "{name:<30} missing from snapshot (not gated)");
        }
        let n = self.regressions();
        if n > 0 {
            let _ = writeln!(out, "\nbaseline gate FAILED: {n} regression(s)");
        } else {
            out.push_str("\nbaseline gate passed\n");
        }
        out
    }
}

/// Checks `doc` against `base`. Share mode (default) gates wall-time
/// *structure*; absolute mode gates raw seconds / µs.
pub fn check(doc: &BenchDoc, base: &Baseline, absolute: bool) -> BaselineReport {
    let mut report = BaselineReport { absolute, ..Default::default() };
    let total = doc.total_wall_s.max(1e-12);
    let fig_of = |name: &str| doc.figures.iter().find(|f| f.name == name);
    for e in &base.figures {
        match fig_of(&e.name) {
            None => report.missing.push(format!("figure {}", e.name)),
            Some(f) => {
                let (base_v, cur_v) =
                    if absolute { (e.abs, f.wall_s) } else { (e.share, f.wall_s / total) };
                let gated = if absolute { e.abs > 0.0 } else { e.share >= base.min_share };
                report.lines.push(BaselineLine {
                    name: e.name.clone(),
                    kind: "figure",
                    base: base_v,
                    current: cur_v,
                    regression: gated && cur_v > base_v * (1.0 + base.tolerance),
                });
            }
        }
    }
    let stage_totals = doc.stage_totals();
    let stage_sum: f64 = stage_totals.iter().map(|(_, _, s)| s).sum::<f64>().max(1e-12);
    for e in &base.stages {
        match stage_totals.iter().find(|(n, _, _)| *n == e.name) {
            None => report.missing.push(format!("stage {}", e.name)),
            Some((_, count, sum)) => {
                let mean_us = if *count > 0 { 1e6 * sum / *count as f64 } else { 0.0 };
                let (base_v, cur_v) =
                    if absolute { (e.abs, mean_us) } else { (e.share, sum / stage_sum) };
                let gated = if absolute { e.abs > 0.0 } else { e.share >= base.min_share };
                report.lines.push(BaselineLine {
                    name: e.name.clone(),
                    kind: "stage",
                    base: base_v,
                    current: cur_v,
                    regression: gated && cur_v > base_v * (1.0 + base.tolerance),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(f7_wall: f64, trial_sum: f64) -> String {
        format!(
            r#"{{"schema": "vab-bench-perf/1", "sha": "abc", "mode": "quick",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": {},
  "figures": [
    {{"name": "f7_ber_vs_range", "wall_s": {f7_wall}, "rows": 10, "stages": [
      {{"name": "sim.linkbudget_trial", "count": 100, "sum_s": {trial_sum}, "p50_s": 0.001, "p95_s": 0.002, "p99_s": 0.003}}]}},
    {{"name": "t2_power_budget", "wall_s": 0.5, "rows": 8, "stages": [
      {{"name": "fec.viterbi", "count": 50, "sum_s": 0.05, "p50_s": 0.001, "p95_s": 0.002, "p99_s": 0.003}}]}}
  ]
}}"#,
            f7_wall + 0.5
        )
    }

    #[test]
    fn round_trips_bench_doc_and_baseline() {
        let doc = BenchDoc::parse(&bench_json(1.5, 1.0)).expect("doc");
        assert_eq!(doc.figures.len(), 2);
        assert_eq!(doc.sha, "abc");
        let base = Baseline::from_bench(&doc, 0.5, 0.02);
        let json = base.to_json();
        let back = Baseline::parse(&json).expect("baseline parse");
        assert_eq!(back.figures.len(), 2);
        assert!((back.tolerance - 0.5).abs() < 1e-12);
        // Same run against its own baseline: clean pass.
        let report = check(&doc, &back, false);
        assert_eq!(report.regressions(), 0, "report: {}", report.render());
    }

    #[test]
    fn share_regression_trips_the_gate() {
        let doc = BenchDoc::parse(&bench_json(1.5, 1.0)).expect("doc");
        let base = Baseline::from_bench(&doc, 0.2, 0.02);
        // f7 takes 4x longer: its wall share and the trial stage's share
        // both blow past +20%.
        let slow = BenchDoc::parse(&bench_json(6.0, 4.0)).expect("slow");
        let report = check(&slow, &base, false);
        assert!(report.regressions() >= 1, "report: {}", report.render());
        assert!(report.render().contains("FAILED"));
    }

    #[test]
    fn absolute_mode_gates_raw_times() {
        let doc = BenchDoc::parse(&bench_json(1.5, 1.0)).expect("doc");
        let base = Baseline::from_bench(&doc, 0.2, 0.02);
        // Uniform 2x slowdown: shares identical (passes), absolute fails.
        let slow = BenchDoc::parse(&bench_json(3.0, 2.0)).expect("slow");
        // Scale the second figure too for uniformity.
        let mut uniform = slow.clone();
        uniform.figures[1].wall_s = 1.0;
        uniform.figures[1].stages[0].2 = 0.1;
        uniform.total_wall_s = 4.0;
        assert_eq!(check(&uniform, &base, false).regressions(), 0);
        assert!(check(&uniform, &base, true).regressions() >= 2);
    }

    #[test]
    fn missing_entries_warn_but_do_not_gate() {
        let doc = BenchDoc::parse(&bench_json(1.5, 1.0)).expect("doc");
        let base = Baseline::from_bench(&doc, 0.5, 0.02);
        // A single-figure run (one fig binary) against the full baseline.
        let single = BenchDoc::parse(
            r#"{"schema": "vab-bench-perf/1", "sha": "abc", "mode": "quick",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": 1.5,
  "figures": [{"name": "f7_ber_vs_range", "wall_s": 1.5, "rows": 10, "stages": []}]}"#,
        )
        .expect("single");
        let report = check(&single, &base, false);
        assert!(!report.missing.is_empty());
        // f7's share is now 100% > baseline's 75% * 1.5 — but that's the
        // single-figure artifact; tolerance choice guards CI, and here we
        // only assert missing entries don't panic or gate by themselves.
        assert!(report.render().contains("missing from snapshot"));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(BenchDoc::parse(r#"{"schema": "nope/9"}"#).is_err());
        assert!(Baseline::parse(r#"{"schema": "nope/9"}"#).is_err());
    }
}
