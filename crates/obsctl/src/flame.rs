//! The `flame` subcommand: collapsed-stack output from a span tree.
//!
//! `span_end` events carry the span's name, its content-derived
//! `id`/`parent` pair (PR 7) and, when allocation profiling was on, the
//! allocations the span observed (`alloc_n`/`alloc_b`). This module
//! folds them into the collapsed-stack format every standard flamegraph
//! tool consumes:
//!
//! ```text
//! svc.handle;svc.job_execute;sim.montecarlo 10452
//! svc.handle;svc.job_execute 311
//! ```
//!
//! One line per unique root-to-leaf path, weighted by the *self* share
//! of the chosen metric (a parent's weight excludes its children, so
//! summing every line reproduces the total). Spans without ids (the
//! plain [`vab_obs::Span`] guard) cannot be placed in a tree; they
//! render as root-level single-frame stacks.
//!
//! Because span identities are content-derived, the collapsed output of
//! a fixed-seed run is bit-identical at any worker count — the same
//! determinism contract the span-set gate relies on.

use std::collections::BTreeMap;

use crate::trace::Trace;

/// What a stack's weight counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Span duration, microseconds (`dur_us`).
    TimeUs,
    /// Bytes allocated inside the span (`alloc_b`).
    AllocBytes,
    /// Allocation count inside the span (`alloc_n`).
    AllocCount,
}

impl Weight {
    /// Parses the `--weight` CLI value.
    pub fn parse(s: &str) -> Result<Weight, String> {
        match s {
            "time" | "us" => Ok(Weight::TimeUs),
            "bytes" | "alloc-bytes" => Ok(Weight::AllocBytes),
            "allocs" | "alloc-count" => Ok(Weight::AllocCount),
            other => Err(format!("unknown weight {other:?} (expected time|bytes|allocs)")),
        }
    }

    fn field(&self) -> &'static str {
        match self {
            Weight::TimeUs => "dur_us",
            Weight::AllocBytes => "alloc_b",
            Weight::AllocCount => "alloc_n",
        }
    }
}

#[derive(Debug, Default)]
struct Node {
    name: String,
    parent: Option<(u64, u64)>,
    weight: u64,
}

/// Builds collapsed stacks from every `span_end` in `trace`, weighted by
/// `weight`. `job` restricts the fold to one trace id. Lines are sorted
/// lexicographically; zero-self-weight paths are omitted (collapsed
/// convention). Returns an error when no span matched.
pub fn collapse(trace: &Trace, weight: Weight, job: Option<u64>) -> Result<Vec<String>, String> {
    // Keyed by (trace_id, span_id): ids are only unique within a trace.
    let mut nodes: BTreeMap<(u64, u64), Node> = BTreeMap::new();
    // Id-less spans: flat, aggregated by name alone.
    let mut flat: BTreeMap<String, u64> = BTreeMap::new();
    let hex = |s: &str| u64::from_str_radix(s, 16).ok();
    for e in trace.events.iter().filter(|e| e.name == "span_end") {
        let name = match e.fields.str_field("span") {
            Some(n) => n.to_string(),
            None => continue,
        };
        let w = e.fields.u64_field(weight.field()).unwrap_or(0);
        let ids =
            e.fields.str_field("trace").and_then(hex).zip(e.fields.str_field("id").and_then(hex));
        match ids {
            Some((trace_id, span_id)) => {
                if job.is_some_and(|j| j != trace_id) {
                    continue;
                }
                let parent = e
                    .fields
                    .str_field("parent")
                    .and_then(hex)
                    .filter(|&p| p != 0)
                    .map(|p| (trace_id, p));
                let node = nodes.entry((trace_id, span_id)).or_default();
                node.name = name;
                node.parent = parent;
                node.weight += w;
            }
            None => {
                if job.is_none() {
                    *flat.entry(name).or_insert(0) += w;
                }
            }
        }
    }
    if nodes.is_empty() && flat.is_empty() {
        return Err(match job {
            Some(j) => format!("no spans found for trace {j:016x}"),
            None => "no span_end events in trace".into(),
        });
    }
    // Self weight: a span minus its direct children (clamped — clock
    // jitter can make children sum past the parent).
    let mut child_sum: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for node in nodes.values() {
        if let Some(p) = node.parent {
            if nodes.contains_key(&p) {
                *child_sum.entry(p).or_insert(0) += node.weight;
            }
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for (key, node) in &nodes {
        let self_w = node.weight.saturating_sub(child_sum.get(key).copied().unwrap_or(0));
        if self_w == 0 {
            continue;
        }
        // Root-to-leaf path by walking parents; orphaned parents (their
        // span_end was truncated away) end the walk gracefully.
        let mut path = vec![node.name.as_str()];
        let mut cursor = node.parent;
        let mut depth = 0;
        while let Some(p) = cursor {
            let Some(parent) = nodes.get(&p) else { break };
            path.push(parent.name.as_str());
            cursor = parent.parent;
            depth += 1;
            if depth > 64 {
                break; // cycle guard: malformed trace, stop the walk
            }
        }
        path.reverse();
        *lines.entry(path.join(";")).or_insert(0) += self_w;
    }
    for (name, w) in flat {
        if w > 0 {
            *lines.entry(name).or_insert(0) += w;
        }
    }
    Ok(lines.into_iter().map(|(path, w)| format!("{path} {w}")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, span: &str, id: &str, parent: &str, dur: u64, alloc_b: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"t_us\":{},\"target\":\"svc.pool\",\"event\":\"span_end\",\
             \"fields\":{{\"span\":\"{span}\",\"trace\":\"00000000000000aa\",\"id\":\"{id}\",\
             \"parent\":\"{parent}\",\"dur_us\":{dur},\"alloc_n\":3,\"alloc_b\":{alloc_b}}}}}",
            seq * 10
        )
    }

    fn tree_trace() -> Trace {
        // root (id 1) -> exec (id 2) -> mc (id 3)
        let text = format!(
            "{}\n{}\n{}\n",
            line(1, "sim.montecarlo", "0000000000000003", "0000000000000002", 700, 4096),
            line(2, "svc.job_execute", "0000000000000002", "0000000000000001", 1000, 5120),
            line(3, "svc.handle", "0000000000000001", "0000000000000000", 1200, 5120),
        );
        Trace::parse(&text)
    }

    #[test]
    fn collapses_tree_into_self_weighted_paths() {
        let lines = collapse(&tree_trace(), Weight::TimeUs, None).expect("collapse");
        assert_eq!(
            lines,
            vec![
                "svc.handle 200".to_string(),
                "svc.handle;svc.job_execute 300".to_string(),
                "svc.handle;svc.job_execute;sim.montecarlo 700".to_string(),
            ]
        );
        // Sum of self weights reproduces the root total.
        let total: u64 =
            lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
        assert_eq!(total, 1200);
    }

    #[test]
    fn byte_weighting_and_zero_self_omission() {
        let lines = collapse(&tree_trace(), Weight::AllocBytes, None).expect("collapse");
        // exec's 5120 bytes are entirely the child's: zero self, omitted.
        assert_eq!(
            lines,
            vec![
                "svc.handle;svc.job_execute;sim.montecarlo 4096".to_string(),
                // handle: 5120 - 5120 = 0 omitted; exec: 5120 - 4096 = 1024
                "svc.handle;svc.job_execute 1024".to_string(),
            ]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn job_filter_and_idless_spans() {
        let mut text =
            format!("{}\n", line(1, "svc.handle", "0000000000000001", "0000000000000000", 500, 0));
        // An id-less span (plain Span guard) plus an event from another trace.
        text.push_str(
            "{\"seq\":4,\"t_us\":50,\"target\":\"sim.campaign\",\"event\":\"span_end\",\
             \"fields\":{\"span\":\"run_campaign\",\"dur_us\":900}}\n",
        );
        text.push_str(
            "{\"seq\":5,\"t_us\":60,\"target\":\"svc.pool\",\"event\":\"span_end\",\
             \"fields\":{\"span\":\"svc.handle\",\"trace\":\"00000000000000bb\",\
             \"id\":\"0000000000000001\",\"parent\":\"0000000000000000\",\"dur_us\":111}}\n",
        );
        let t = Trace::parse(&text);
        let all = collapse(&t, Weight::TimeUs, None).expect("all");
        assert!(all.contains(&"run_campaign 900".to_string()), "{all:?}");
        // Same path from two traces aggregates into one collapsed line.
        assert!(all.contains(&"svc.handle 611".to_string()), "{all:?}");
        let one = collapse(&t, Weight::TimeUs, Some(0xaa)).expect("filtered");
        assert_eq!(one, vec!["svc.handle 500".to_string()]);
        assert!(collapse(&t, Weight::TimeUs, Some(0xdead)).is_err());
    }

    #[test]
    fn weight_parse_accepts_aliases() {
        assert_eq!(Weight::parse("time"), Ok(Weight::TimeUs));
        assert_eq!(Weight::parse("bytes"), Ok(Weight::AllocBytes));
        assert_eq!(Weight::parse("allocs"), Ok(Weight::AllocCount));
        assert!(Weight::parse("flops").is_err());
    }
}
