//! The `diff` subcommand: compare two runs' `metrics.json` snapshots.
//!
//! Stage wall-clock is the gated surface — a stage whose mean time per
//! call grew past the relative threshold is a perf regression and makes
//! the CLI exit non-zero. Counters are compared too, but report-only:
//! a different workload legitimately moves them.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::json::{write_json_number, write_json_string};
use crate::trace::MetricsDoc;

/// Thresholds for the comparison.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative growth in a stage's mean time that counts as a
    /// regression (0.2 = +20%).
    pub rel_tol: f64,
    /// Stages whose run-B total stays below this many seconds are noise
    /// and never gate (timer granularity dominates them).
    pub min_stage_s: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { rel_tol: 0.20, min_stage_s: 1e-3 }
    }
}

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Instrument name.
    pub name: String,
    /// What was compared (`stage mean`, `stage total`, `counter`).
    pub metric: &'static str,
    /// Run-A value.
    pub a: f64,
    /// Run-B value.
    pub b: f64,
    /// Relative change (`(b - a) / a`), infinite when A is zero.
    pub rel: f64,
    /// Whether this line trips the regression gate.
    pub regression: bool,
}

/// The full comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All compared lines, stages first.
    pub lines: Vec<DiffLine>,
    /// Stage names present in only one run (name, present-in-A).
    pub unmatched: Vec<(String, bool)>,
}

impl DiffReport {
    /// Number of regression lines.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regression).count()
    }

    /// Renders the table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "{:<28} {:<12} {:>14} {:>14} {:>9}",
            "name", "metric", "run A", "run B", "change"
        );
        for l in &self.lines {
            let change = if l.rel.is_finite() {
                format!("{:+.1}%", 100.0 * l.rel)
            } else {
                "new".to_string()
            };
            let _ = writeln!(
                out,
                "{:<28} {:<12} {:>14.6} {:>14.6} {:>9}{}",
                l.name,
                l.metric,
                l.a,
                l.b,
                change,
                if l.regression { "  REGRESSION" } else { "" }
            );
        }
        for (name, in_a) in &self.unmatched {
            let _ = writeln!(
                out,
                "{:<28} {:<12} only in run {}",
                name,
                "stage",
                if *in_a { "A" } else { "B" }
            );
        }
        let n = self.regressions();
        if n > 0 {
            let _ = writeln!(out, "\n{n} regression(s) past threshold");
        } else {
            out.push_str("\nno regressions\n");
        }
        out
    }

    /// Renders the comparison as a JSON document for scripts and CI
    /// assertions (stable field order, one object per line entry).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"lines\": [");
        for (i, l) in self.lines.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push('{');
            out.push_str("\"name\": ");
            write_json_string(&mut out, &l.name);
            let _ = write!(out, ", \"metric\": \"{}\", \"a\": ", l.metric);
            write_json_number(&mut out, l.a);
            out.push_str(", \"b\": ");
            write_json_number(&mut out, l.b);
            out.push_str(", \"rel\": ");
            // Infinite change (new instrument) has no JSON number; null.
            if l.rel.is_finite() {
                write_json_number(&mut out, l.rel);
            } else {
                out.push_str("null");
            }
            let _ = write!(out, ", \"regression\": {}}}", l.regression);
        }
        out.push_str(if self.lines.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"unmatched\": [");
        for (i, (name, in_a)) in self.unmatched.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str("{\"name\": ");
            write_json_string(&mut out, name);
            let _ = write!(out, ", \"only_in\": \"{}\"}}", if *in_a { "A" } else { "B" });
        }
        out.push_str(if self.unmatched.is_empty() { "],\n" } else { "\n  ],\n" });
        let _ = writeln!(out, "  \"regressions\": {}\n}}", self.regressions());
        out
    }
}

fn rel_change(a: f64, b: f64) -> f64 {
    if a > 0.0 {
        (b - a) / a
    } else if b > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Compares run A (the reference) against run B (the candidate).
pub fn diff(a: &MetricsDoc, b: &MetricsDoc, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    let names: BTreeSet<&str> =
        a.stages.iter().chain(&b.stages).filter(|h| h.count > 0).map(|h| h.name.as_str()).collect();
    for name in names {
        match (a.stage(name), b.stage(name)) {
            (Some(ha), Some(hb)) if ha.count > 0 && hb.count > 0 => {
                let rel = rel_change(ha.mean(), hb.mean());
                report.lines.push(DiffLine {
                    name: name.to_string(),
                    metric: "stage mean",
                    a: ha.mean(),
                    b: hb.mean(),
                    rel,
                    regression: rel > cfg.rel_tol && hb.sum >= cfg.min_stage_s,
                });
                report.lines.push(DiffLine {
                    name: name.to_string(),
                    metric: "stage total",
                    a: ha.sum,
                    b: hb.sum,
                    rel: rel_change(ha.sum, hb.sum),
                    regression: false,
                });
            }
            (pa, _) => report.unmatched.push((name.to_string(), pa.is_some())),
        }
    }
    // Counters: informational only.
    let counter_names: BTreeSet<&str> = a
        .counters
        .iter()
        .chain(&b.counters)
        .filter(|(_, v)| *v > 0)
        .map(|(n, _)| n.as_str())
        .collect();
    for name in counter_names {
        let va = a.counter(name).unwrap_or(0) as f64;
        let vb = b.counter(name).unwrap_or(0) as f64;
        report.lines.push(DiffLine {
            name: name.to_string(),
            metric: "counter",
            a: va,
            b: vb,
            rel: rel_change(va, vb),
            regression: false,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(mean_scale: f64) -> MetricsDoc {
        let sum = 0.02 * mean_scale;
        MetricsDoc::parse(&format!(
            r#"{{"counters":{{"arq.retransmits":8}},"gauges":{{}},"histograms":[],
                "stages":[{{"name":"sim.linkbudget_trial","count":4,"sum":{sum},
                "buckets":[{{"le":0.01,"count":4}},{{"le":"+inf","count":0}}]}}]}}"#
        ))
        .expect("doc")
    }

    #[test]
    fn identical_runs_have_no_regressions() {
        let r = diff(&doc(1.0), &doc(1.0), &DiffConfig::default());
        assert_eq!(r.regressions(), 0);
        assert!(r.render().contains("no regressions"));
    }

    #[test]
    fn doubled_stage_mean_is_a_regression() {
        let r = diff(&doc(1.0), &doc(2.0), &DiffConfig::default());
        assert_eq!(r.regressions(), 1, "report: {}", r.render());
        assert!(r.render().contains("REGRESSION"));
        // The same diff in the other direction is an improvement, not a
        // regression.
        let r = diff(&doc(2.0), &doc(1.0), &DiffConfig::default());
        assert_eq!(r.regressions(), 0);
    }

    #[test]
    fn threshold_is_configurable() {
        // +50% passes a 60% threshold, fails a 20% one.
        let loose = DiffConfig { rel_tol: 0.60, ..DiffConfig::default() };
        assert_eq!(diff(&doc(1.0), &doc(1.5), &loose).regressions(), 0);
        assert_eq!(diff(&doc(1.0), &doc(1.5), &DiffConfig::default()).regressions(), 1);
    }

    #[test]
    fn tiny_stages_never_gate() {
        // Mean doubled but the total is far below min_stage_s: noise.
        let a = MetricsDoc::parse(
            r#"{"counters":{},"gauges":{},"histograms":[],
               "stages":[{"name":"x","count":2,"sum":0.00001,
               "buckets":[{"le":0.01,"count":2},{"le":"+inf","count":0}]}]}"#,
        )
        .expect("a");
        let b = MetricsDoc::parse(
            r#"{"counters":{},"gauges":{},"histograms":[],
               "stages":[{"name":"x","count":2,"sum":0.00002,
               "buckets":[{"le":0.01,"count":2},{"le":"+inf","count":0}]}]}"#,
        )
        .expect("b");
        assert_eq!(diff(&a, &b, &DiffConfig::default()).regressions(), 0);
    }

    #[test]
    fn json_output_parses_and_carries_the_verdict() {
        let r = diff(&doc(1.0), &doc(2.0), &DiffConfig::default());
        let v = crate::json::Json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(v.u64_field("regressions"), Some(1));
        let lines = v.get("lines").and_then(crate::json::Json::as_arr).expect("lines");
        let mean = lines
            .iter()
            .find(|l| l.str_field("metric") == Some("stage mean"))
            .expect("stage mean line");
        assert_eq!(mean.str_field("name"), Some("sim.linkbudget_trial"));
        assert_eq!(mean.get("regression").and_then(crate::json::Json::as_bool), Some(true));
        // An empty diff still emits valid JSON.
        let empty = DiffReport::default();
        assert!(crate::json::Json::parse(&empty.to_json()).is_ok());
    }

    #[test]
    fn unmatched_stages_are_listed_not_gated() {
        let empty = MetricsDoc::parse(r#"{"counters":{},"gauges":{},"histograms":[],"stages":[]}"#)
            .expect("empty");
        let r = diff(&doc(1.0), &empty, &DiffConfig::default());
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.unmatched.len(), 1);
        assert!(r.render().contains("only in run A"));
    }
}
