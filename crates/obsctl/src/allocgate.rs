//! The `alloc-gate` subcommand: pin per-figure per-stage allocation
//! counts against the committed reference
//! (`crates/bench/alloc_baseline.json`, schema `vab-alloc-baseline/1`).
//!
//! Unlike the timing baseline, which gates *shares* with a tolerance
//! (wall time is machine-dependent), allocation counts under
//! `VAB_PROFILE=1` are **work-derived**: a fixed-seed figure performs the
//! same allocations in the same stages at any worker count, on any
//! machine, so the gate pins `alloc_count` *exactly*. Any drift —
//! including an improvement — fails the gate until `--write` refreshes
//! the baseline, which is the point: an allocation-count change is a
//! behavior change someone must have intended.
//!
//! Byte counts are recorded and reported but not gated: allocator
//! requests can legitimately vary in size (capacity growth policies)
//! between toolchain versions without the *count* moving.
//!
//! A stage that allocates in the snapshot but is absent from the
//! baseline fails too (new hot-path allocations cannot ship silently).
//! Baseline figures missing from the snapshot only warn, so single-figure
//! runs can still be gated against the full reference.

use std::fmt::Write as _;
use std::path::Path;

use crate::baseline::BenchDoc;
use crate::json::{write_json_string, Json};

/// Allocation-baseline schema identifier.
pub const ALLOC_SCHEMA: &str = "vab-alloc-baseline/1";

/// One pinned stage reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocPin {
    /// Stage name.
    pub name: String,
    /// Stage invocations during the figure (informational).
    pub calls: u64,
    /// Self-attributed allocation count — gated exactly.
    pub alloc_count: u64,
    /// Self-attributed bytes — informational.
    pub alloc_bytes: u64,
}

/// One figure's pinned stage set.
#[derive(Debug, Clone, Default)]
pub struct AllocFigure {
    /// Figure name.
    pub name: String,
    /// Pinned stages, sorted by name.
    pub stages: Vec<AllocPin>,
}

/// The committed allocation reference.
#[derive(Debug, Clone, Default)]
pub struct AllocBaseline {
    /// Mode the baseline was captured in (`quick` expected in CI).
    pub mode: String,
    /// Per-figure pins, sorted by figure name.
    pub figures: Vec<AllocFigure>,
}

impl AllocBaseline {
    /// Parses the committed baseline JSON.
    pub fn parse(text: &str) -> Result<AllocBaseline, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v.str_field("schema").unwrap_or("");
        if schema != ALLOC_SCHEMA {
            return Err(format!(
                "unsupported alloc baseline schema {schema:?} (expected {ALLOC_SCHEMA:?})"
            ));
        }
        let mut base = AllocBaseline {
            mode: v.str_field("mode").unwrap_or("quick").to_string(),
            figures: Vec::new(),
        };
        for (fig_name, fig) in v.get("figures").and_then(Json::as_obj).unwrap_or(&[]) {
            let mut stages = Vec::new();
            for (stage_name, s) in fig.get("stages").and_then(Json::as_obj).unwrap_or(&[]) {
                stages.push(AllocPin {
                    name: stage_name.clone(),
                    calls: s.u64_field("calls").unwrap_or(0),
                    alloc_count: s.u64_field("alloc_count").unwrap_or(0),
                    alloc_bytes: s.u64_field("alloc_bytes").unwrap_or(0),
                });
            }
            stages.sort_by(|a, b| a.name.cmp(&b.name));
            base.figures.push(AllocFigure { name: fig_name.clone(), stages });
        }
        base.figures.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(base)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<AllocBaseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        AllocBaseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Builds a fresh baseline from a profiled bench snapshot (the
    /// `--write` path). Errors when the snapshot carries no allocation
    /// data at all — the run was not made with `VAB_PROFILE=1`.
    pub fn from_bench(doc: &BenchDoc) -> Result<AllocBaseline, String> {
        let mut base = AllocBaseline { mode: doc.mode.clone(), figures: Vec::new() };
        for f in &doc.figures {
            if f.alloc.is_empty() {
                continue;
            }
            let mut stages: Vec<AllocPin> = f
                .alloc
                .iter()
                .map(|a| AllocPin {
                    name: a.name.clone(),
                    calls: a.calls,
                    alloc_count: a.alloc_count,
                    alloc_bytes: a.alloc_bytes,
                })
                .collect();
            stages.sort_by(|a, b| a.name.cmp(&b.name));
            base.figures.push(AllocFigure { name: f.name.clone(), stages });
        }
        if base.figures.is_empty() {
            return Err(
                "snapshot has no allocation data; re-run the benchmark with VAB_PROFILE=1".into()
            );
        }
        base.figures.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(base)
    }

    /// Renders the baseline as committed JSON (stable order, pretty).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{ALLOC_SCHEMA}\",\n  \"mode\": \"{}\",\n  \"figures\": {{",
            self.mode
        );
        for (i, f) in self.figures.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_json_string(&mut out, &f.name);
            out.push_str(": {\"stages\": {");
            for (j, s) in f.stages.iter().enumerate() {
                out.push_str(if j > 0 { ",\n      " } else { "\n      " });
                write_json_string(&mut out, &s.name);
                let _ = write!(
                    out,
                    ": {{\"calls\": {}, \"alloc_count\": {}, \"alloc_bytes\": {}}}",
                    s.calls, s.alloc_count, s.alloc_bytes
                );
            }
            out.push_str(if f.stages.is_empty() { "}}" } else { "\n    }}" });
        }
        out.push_str(if self.figures.is_empty() { "}\n}" } else { "\n  }\n}" });
        out.push('\n');
        out
    }
}

/// One gate check's outcome.
#[derive(Debug, Clone)]
pub struct AllocGateLine {
    /// `figure/stage` label.
    pub name: String,
    /// Pinned allocation count (0 when the stage is new).
    pub base_count: u64,
    /// Observed allocation count.
    pub cur_count: u64,
    /// Pinned bytes (informational).
    pub base_bytes: u64,
    /// Observed bytes (informational).
    pub cur_bytes: u64,
    /// `pinned` | `drift` | `new-stage`.
    pub verdict: &'static str,
}

/// The whole gate result.
#[derive(Debug, Clone, Default)]
pub struct AllocGateReport {
    /// Per-stage outcomes, one line per (figure, stage).
    pub lines: Vec<AllocGateLine>,
    /// Baseline figures/stages with no counterpart in the snapshot
    /// (warn-only: single-figure runs against the full reference).
    pub missing: Vec<String>,
}

impl AllocGateReport {
    /// Number of failing lines (count drift or unpinned new stage).
    pub fn failures(&self) -> usize {
        self.lines.iter().filter(|l| l.verdict != "pinned").count()
    }

    /// Renders the gate table plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>12} {:>12}  verdict",
            "figure/stage", "base count", "now count", "base bytes", "now bytes"
        );
        for l in &self.lines {
            let _ = writeln!(
                out,
                "{:<44} {:>12} {:>12} {:>12} {:>12}  {}",
                l.name, l.base_count, l.cur_count, l.base_bytes, l.cur_bytes, l.verdict
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "{name:<44} missing from snapshot (not gated)");
        }
        let n = self.failures();
        if n > 0 {
            let _ = writeln!(
                out,
                "\nalloc gate FAILED: {n} stage(s) drifted; if intended, refresh with \
                 `vab-obsctl alloc-gate <bench.json> --write`"
            );
        } else {
            out.push_str("\nalloc gate passed: all allocation counts pinned\n");
        }
        out
    }
}

/// Checks a profiled `doc` against `base`. Counts must match exactly;
/// any snapshot stage that allocates without a pin fails; baseline
/// entries absent from the snapshot warn only.
pub fn check(doc: &BenchDoc, base: &AllocBaseline) -> AllocGateReport {
    let mut report = AllocGateReport::default();
    for bf in &base.figures {
        let Some(cf) = doc.figures.iter().find(|f| f.name == bf.name) else {
            report.missing.push(format!("{}/*", bf.name));
            continue;
        };
        for pin in &bf.stages {
            let label = format!("{}/{}", bf.name, pin.name);
            match cf.alloc.iter().find(|a| a.name == pin.name) {
                None => report.missing.push(label),
                Some(a) => report.lines.push(AllocGateLine {
                    name: label,
                    base_count: pin.alloc_count,
                    cur_count: a.alloc_count,
                    base_bytes: pin.alloc_bytes,
                    cur_bytes: a.alloc_bytes,
                    verdict: if a.alloc_count == pin.alloc_count { "pinned" } else { "drift" },
                }),
            }
        }
        // Snapshot stages that allocate but were never pinned.
        for a in &cf.alloc {
            if !bf.stages.iter().any(|p| p.name == a.name) {
                report.lines.push(AllocGateLine {
                    name: format!("{}/{}", bf.name, a.name),
                    base_count: 0,
                    cur_count: a.alloc_count,
                    base_bytes: 0,
                    cur_bytes: a.alloc_bytes,
                    verdict: "new-stage",
                });
            }
        }
    }
    // Whole figures that allocate without any pin.
    for cf in &doc.figures {
        if cf.alloc.is_empty() || base.figures.iter().any(|bf| bf.name == cf.name) {
            continue;
        }
        for a in &cf.alloc {
            report.lines.push(AllocGateLine {
                name: format!("{}/{}", cf.name, a.name),
                base_count: 0,
                cur_count: a.alloc_count,
                base_bytes: 0,
                cur_bytes: a.alloc_bytes,
                verdict: "new-stage",
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(trial_allocs: u64) -> String {
        format!(
            r#"{{"schema": "vab-bench-perf/1", "sha": "abc", "mode": "quick",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": 2.0,
  "figures": [
    {{"name": "f7_ber_vs_range", "wall_s": 1.5, "rows": 10, "stages": [
      {{"name": "sim.linkbudget_trial", "count": 100, "sum_s": 1.0, "p50_s": 0.001, "p95_s": 0.002, "p99_s": 0.003, "alloc_count": {trial_allocs}, "alloc_bytes": 4096}},
      {{"name": "fec.viterbi", "count": 50, "sum_s": 0.05, "p50_s": 0.001, "p95_s": 0.002, "p99_s": 0.003, "alloc_count": 200, "alloc_bytes": 1024}}]}}
  ]
}}"#
        )
    }

    #[test]
    fn round_trips_and_passes_against_itself() {
        let doc = BenchDoc::parse(&bench_json(1000)).expect("doc");
        let base = AllocBaseline::from_bench(&doc).expect("baseline");
        let back = AllocBaseline::parse(&base.to_json()).expect("reparse");
        assert_eq!(back.figures.len(), 1);
        assert_eq!(back.figures[0].stages.len(), 2);
        let report = check(&doc, &back);
        assert_eq!(report.failures(), 0, "report: {}", report.render());
        assert!(report.render().contains("alloc gate passed"));
    }

    #[test]
    fn any_count_drift_fails_even_improvements() {
        let doc = BenchDoc::parse(&bench_json(1000)).expect("doc");
        let base = AllocBaseline::from_bench(&doc).expect("baseline");
        for drifted_count in [1100, 900] {
            let drifted = BenchDoc::parse(&bench_json(drifted_count)).expect("drifted");
            let report = check(&drifted, &base);
            assert_eq!(report.failures(), 1, "count {drifted_count}: {}", report.render());
            assert!(report.render().contains("FAILED"));
            assert!(report.render().contains("drift"));
        }
    }

    #[test]
    fn unpinned_allocating_stage_fails() {
        let doc = BenchDoc::parse(&bench_json(1000)).expect("doc");
        let mut base = AllocBaseline::from_bench(&doc).expect("baseline");
        base.figures[0].stages.retain(|s| s.name != "fec.viterbi");
        let report = check(&doc, &base);
        assert_eq!(report.failures(), 1, "report: {}", report.render());
        assert!(report.render().contains("new-stage"));
    }

    #[test]
    fn missing_figures_warn_but_do_not_gate() {
        let doc = BenchDoc::parse(&bench_json(1000)).expect("doc");
        let mut base = AllocBaseline::from_bench(&doc).expect("baseline");
        base.figures.push(AllocFigure {
            name: "t2_power_budget".into(),
            stages: vec![AllocPin {
                name: "fec.viterbi".into(),
                calls: 10,
                alloc_count: 5,
                alloc_bytes: 64,
            }],
        });
        let report = check(&doc, &base);
        assert_eq!(report.failures(), 0, "report: {}", report.render());
        assert!(report.render().contains("missing from snapshot"));
    }

    #[test]
    fn byte_drift_alone_does_not_gate() {
        let doc = BenchDoc::parse(&bench_json(1000)).expect("doc");
        let mut base = AllocBaseline::from_bench(&doc).expect("baseline");
        base.figures[0].stages[0].alloc_bytes *= 2;
        assert_eq!(check(&doc, &base).failures(), 0);
    }

    #[test]
    fn unprofiled_snapshot_cannot_write_a_baseline() {
        let doc = BenchDoc::parse(
            r#"{"schema": "vab-bench-perf/1", "sha": "abc", "mode": "quick",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": 1.0,
  "figures": [{"name": "f7_ber_vs_range", "wall_s": 1.0, "rows": 10, "stages": [
    {"name": "fec.viterbi", "count": 50, "sum_s": 0.05, "p50_s": 0.001, "p95_s": 0.002, "p99_s": 0.003}]}]}"#,
        )
        .expect("doc");
        assert!(AllocBaseline::from_bench(&doc).is_err());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(AllocBaseline::parse(r#"{"schema": "nope/9"}"#).is_err());
    }
}
