//! JSON support, re-exported from its shared home in `vab-util`.
//!
//! The recursive-descent parser began life in this crate (PR 3); once
//! `vab-svc` needed the same machinery for job specs and wire frames it
//! moved to [`vab_util::json`] and grew a canonical serializer. This
//! module keeps the `vab_obsctl::json::Json` path working for the
//! analyzer's readers.

pub use vab_util::json::{write_json_number, write_json_string, Json, JsonError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_parser_handles_trace_lines() {
        let v = Json::parse(r#"{"seq":1,"target":"svc.pool","fields":{"depth":2}}"#).expect("ok");
        assert_eq!(v.u64_field("seq"), Some(1));
        assert_eq!(v.get("fields").and_then(|f| f.u64_field("depth")), Some(2));
        assert!(Json::parse("{broken").is_err());
    }
}
