//! The `profile` subcommand: render a run's allocation profile.
//!
//! Input is a `metrics.json` snapshot whose `alloc` section was produced
//! by `vab_obs::alloc` under `VAB_PROFILE=1`. The table shows, per
//! stage: calls, *self* allocations/bytes (the stage minus its
//! children), *cumulative* allocations/bytes (children included), and
//! allocations per call — the number the hot-path pass drives toward
//! zero. Stages sort by self bytes, worst first, so the top of the table
//! is the offender list.

use std::fmt::Write as _;

use crate::trace::{AllocStageDoc, MetricsDoc};

/// Human-readable byte count (base-1024 units, one decimal).
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Renders the allocation profile of `doc`, listing at most `top`
/// stages (0 = all). Errors when the snapshot carries no `alloc`
/// section — the run was not profiled.
pub fn render(doc: &MetricsDoc, top: usize) -> Result<String, String> {
    let totals = doc
        .alloc_totals
        .as_ref()
        .ok_or("snapshot has no alloc section (run with VAB_PROFILE=1)")?;
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "allocation profile: {} allocs / {} frees, {} allocated, peak live {}",
        totals.allocs,
        totals.frees,
        human_bytes(totals.bytes_allocated),
        human_bytes(totals.peak_live_bytes),
    );
    let mut stages: Vec<&AllocStageDoc> =
        doc.alloc_stages.iter().filter(|s| s.cum_allocs > 0 || s.calls > 0).collect();
    if stages.is_empty() {
        out.push_str("no stage recorded any allocation\n");
        return Ok(out);
    }
    // Worst self-bytes first; ties break by name so output is stable.
    stages.sort_by(|a, b| b.self_bytes.cmp(&a.self_bytes).then_with(|| a.name.cmp(&b.name)));
    let shown = if top > 0 { top.min(stages.len()) } else { stages.len() };
    let _ = writeln!(
        out,
        "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "stage", "calls", "self allocs", "self bytes", "cum allocs", "cum bytes", "allocs/call"
    );
    for s in &stages[..shown] {
        let per_call = if s.calls > 0 { s.self_allocs as f64 / s.calls as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12.2}",
            s.name, s.calls, s.self_allocs, s.self_bytes, s.cum_allocs, s.cum_bytes, per_call
        );
    }
    if shown < stages.len() {
        let _ =
            writeln!(out, "... {} more stage(s); raise --top to see them", stages.len() - shown);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> MetricsDoc {
        MetricsDoc::parse(
            r#"{
  "counters": {}, "gauges": {}, "histograms": [], "stages": [],
  "alloc": {
    "allocs": 1000, "frees": 990, "bytes_allocated": 65536,
    "bytes_freed": 60000, "live_bytes": 5536, "peak_live_bytes": 32768,
    "stages": [
      {"name":"fec.viterbi","calls":10,"self_allocs":600,"self_bytes":40000,"cum_allocs":600,"cum_bytes":40000},
      {"name":"sim.demod","calls":20,"self_allocs":400,"self_bytes":20000,"cum_allocs":1000,"cum_bytes":60000}
    ]
  }
}"#,
        )
        .expect("doc parses")
    }

    #[test]
    fn renders_offenders_worst_self_bytes_first() {
        let text = render(&doc(), 0).expect("render");
        let viterbi = text.find("fec.viterbi").expect("viterbi listed");
        let demod = text.find("sim.demod").expect("demod listed");
        assert!(viterbi < demod, "worst self-bytes stage must lead:\n{text}");
        assert!(text.contains("1000 allocs / 990 frees"), "{text}");
        assert!(text.contains("64.0 KiB"), "{text}");
    }

    #[test]
    fn top_limits_the_table() {
        let text = render(&doc(), 1).expect("render");
        assert!(text.contains("fec.viterbi"));
        assert!(!text.contains("sim.demod"), "{text}");
        assert!(text.contains("1 more stage"), "{text}");
    }

    #[test]
    fn unprofiled_snapshot_is_an_error() {
        let doc = MetricsDoc::parse(r#"{"counters":{},"gauges":{},"histograms":[],"stages":[]}"#)
            .expect("parse");
        assert!(render(&doc, 0).is_err());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
