//! The `bench history` subcommand: list and compare the
//! `results/BENCH_<sha>.json` trajectory.
//!
//! Every `run_all` appends a perf snapshot named after the git revision,
//! so `results/` accumulates a wall-time history of the repo. This
//! module orders those snapshots (by file modification time — shas are
//! not ordered) and renders the trajectory: one line per snapshot with
//! total wall time, figure count, allocation totals when the run was
//! profiled, and the wall-time delta against the previous snapshot of
//! the *same mode* (quick-vs-full deltas are meaningless).
//!
//! EXPERIMENTS.md documents the retention policy this listing supports:
//! keep the newest snapshot per mode plus anything a baseline was
//! written from; prune the rest once the trajectory has been inspected.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use crate::baseline::BenchDoc;

/// One snapshot in the trajectory.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// File path the snapshot was read from.
    pub path: PathBuf,
    /// Modification time (ordering key).
    pub mtime: SystemTime,
    /// The parsed snapshot.
    pub doc: BenchDoc,
}

impl HistoryEntry {
    /// Total self-attributed allocations across all figures, when the
    /// run was profiled (`None` otherwise).
    pub fn total_allocs(&self) -> Option<u64> {
        let total: u64 =
            self.doc.figures.iter().flat_map(|f| f.alloc.iter()).map(|a| a.alloc_count).sum();
        (total > 0).then_some(total)
    }
}

/// Scans `dir` for `BENCH_*.json` snapshots, oldest first. Unparseable
/// files are skipped with their name recorded in the second element.
pub fn scan(dir: &Path) -> Result<(Vec<HistoryEntry>, Vec<String>), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut history = Vec::new();
    let mut skipped = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        match BenchDoc::load(&path) {
            Ok(doc) => {
                let mtime =
                    entry.metadata().and_then(|m| m.modified()).unwrap_or(SystemTime::UNIX_EPOCH);
                history.push(HistoryEntry { path, mtime, doc });
            }
            Err(_) => skipped.push(name),
        }
    }
    // Oldest first; ties (same-second writes) break by filename so the
    // listing is deterministic.
    history.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
    skipped.sort();
    Ok((history, skipped))
}

/// Renders the trajectory table. `mode_filter` restricts to one mode.
pub fn render(history: &[HistoryEntry], skipped: &[String], mode_filter: Option<&str>) -> String {
    let shown: Vec<&HistoryEntry> =
        history.iter().filter(|e| mode_filter.is_none_or(|m| e.doc.mode == m)).collect();
    let mut out = String::with_capacity(1024);
    if shown.is_empty() {
        let _ = writeln!(
            out,
            "no bench snapshots{}",
            mode_filter.map(|m| format!(" with mode {m:?}")).unwrap_or_default()
        );
        return out;
    }
    let _ = writeln!(
        out,
        "{:<14} {:<6} {:>12} {:>8} {:>12} {:>10}",
        "sha", "mode", "total_wall_s", "figures", "allocs", "delta"
    );
    // Wall-time delta vs the previous snapshot of the same mode.
    let mut last_by_mode: std::collections::BTreeMap<&str, &BenchDoc> = Default::default();
    let mut any_partial = false;
    for e in &shown {
        let delta = match last_by_mode.get(e.doc.mode.as_str()) {
            Some(prev) => {
                let (text, partial) = wall_delta(prev, &e.doc);
                any_partial |= partial;
                text
            }
            None => "-".to_string(),
        };
        last_by_mode.insert(e.doc.mode.as_str(), &e.doc);
        let allocs = e.total_allocs().map(|n| n.to_string()).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<14} {:<6} {:>12.3} {:>8} {:>12} {:>10}",
            e.doc.sha,
            e.doc.mode,
            e.doc.total_wall_s,
            e.doc.figures.len(),
            allocs,
            delta
        );
    }
    let _ = writeln!(out, "{} snapshot(s), oldest first", shown.len());
    if any_partial {
        let _ = writeln!(
            out,
            "* figure sets differ between generations; delta covers shared figures only"
        );
    }
    for name in skipped {
        let _ = writeln!(out, "warning: skipped unparseable {name}");
    }
    out
}

/// Same-mode wall delta between consecutive snapshots, restricted to the
/// figures present in *both* generations — a figure appearing (or being
/// retired) mid-trajectory shifts `total_wall_s` without meaning a
/// perf regression, so whole-document totals would lie. Returns the
/// rendered delta and whether the comparison was partial (figure sets
/// differ; marked with `*` in the listing).
fn wall_delta(prev: &BenchDoc, cur: &BenchDoc) -> (String, bool) {
    let prev_names: std::collections::BTreeSet<&str> =
        prev.figures.iter().map(|f| f.name.as_str()).collect();
    let cur_names: std::collections::BTreeSet<&str> =
        cur.figures.iter().map(|f| f.name.as_str()).collect();
    let partial = prev_names != cur_names;
    let prev_sum: f64 =
        prev.figures.iter().filter(|f| cur_names.contains(f.name.as_str())).map(|f| f.wall_s).sum();
    let cur_sum: f64 =
        cur.figures.iter().filter(|f| prev_names.contains(f.name.as_str())).map(|f| f.wall_s).sum();
    if prev_sum <= 0.0 {
        return ("-".to_string(), partial);
    }
    let pct = 100.0 * (cur_sum - prev_sum) / prev_sum;
    (format!("{pct:+.1}%{}", if partial { "*" } else { "" }), partial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(sha: &str, mode: &str, wall: f64, allocs: u64) -> String {
        format!(
            r#"{{"schema": "vab-bench-perf/1", "sha": "{sha}", "mode": "{mode}",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": {wall},
  "figures": [{{"name": "f7_ber_vs_range", "wall_s": {wall}, "rows": 10, "stages": [
    {{"name": "sim.linkbudget_trial", "count": 10, "sum_s": 0.5, "p50_s": 0.01, "p95_s": 0.02, "p99_s": 0.03, "alloc_count": {allocs}, "alloc_bytes": 100}}]}}]}}"#
        )
    }

    fn write_history(dir: &Path) {
        // Write in trajectory order with explicit mtime spacing via
        // sequential writes (same-second ties break by filename).
        std::fs::write(dir.join("BENCH_aaa1.json"), snapshot("aaa1", "quick", 2.0, 500)).unwrap();
        std::fs::write(dir.join("BENCH_bbb2.json"), snapshot("bbb2", "quick", 3.0, 600)).unwrap();
        std::fs::write(dir.join("BENCH_ccc3.json"), snapshot("ccc3", "full", 30.0, 0)).unwrap();
        std::fs::write(dir.join("BENCH_ddd4.json"), "{broken").unwrap();
        std::fs::write(dir.join("metrics.json"), "{}").unwrap(); // ignored: not BENCH_*
    }

    #[test]
    fn scans_and_renders_the_trajectory() {
        let dir = std::env::temp_dir().join(format!("vab_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_history(&dir);
        let (history, skipped) = scan(&dir).expect("scan");
        assert_eq!(history.len(), 3);
        assert_eq!(skipped, vec!["BENCH_ddd4.json".to_string()]);
        let text = render(&history, &skipped, None);
        assert!(text.contains("aaa1"), "{text}");
        assert!(text.contains("ccc3"), "{text}");
        // bbb2 is +50% over aaa1 within the quick mode; ccc3 (full) gets
        // no delta because it has no same-mode predecessor.
        assert!(text.contains("+50.0%"), "{text}");
        assert!(text.contains("skipped unparseable BENCH_ddd4.json"), "{text}");
        let quick_only = render(&history, &[], Some("quick"));
        assert!(!quick_only.contains("ccc3"), "{quick_only}");
        assert!(quick_only.contains("2 snapshot(s)"), "{quick_only}");
        // Profiled runs show alloc totals; unprofiled show "-".
        assert!(text.contains("500"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn two_figure_snapshot(sha: &str, mode: &str, wall_a: f64, wall_b: f64) -> String {
        format!(
            r#"{{"schema": "vab-bench-perf/1", "sha": "{sha}", "mode": "{mode}",
  "trials": 25, "bits": 256, "seed": 2023, "total_wall_s": {},
  "figures": [
    {{"name": "f7_ber_vs_range", "wall_s": {wall_a}, "rows": 10, "stages": []}},
    {{"name": "fr1_replay_validation", "wall_s": {wall_b}, "rows": 8, "stages": []}}]}}"#,
            wall_a + wall_b
        )
    }

    #[test]
    fn a_new_figure_mid_trajectory_does_not_fake_a_regression() {
        let dir = std::env::temp_dir().join(format!("vab_hist_grow_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Generation 1 has one figure at 2 s; generation 2 adds a second
        // figure (10 s) while the shared figure stays at 2 s. The naive
        // whole-document delta would read +500%; the shared-figure delta
        // must read +0.0% and be flagged as partial.
        std::fs::write(dir.join("BENCH_aaa1.json"), snapshot("aaa1", "quick", 2.0, 0)).unwrap();
        std::fs::write(
            dir.join("BENCH_bbb2.json"),
            two_figure_snapshot("bbb2", "quick", 2.0, 10.0),
        )
        .unwrap();
        let (history, skipped) = scan(&dir).expect("scan");
        assert_eq!(history.len(), 2);
        let text = render(&history, &skipped, None);
        assert!(text.contains("+0.0%*"), "{text}");
        assert!(!text.contains("+500"), "{text}");
        assert!(text.contains("shared figures only"), "{text}");
        // The figure retiring again is equally tolerated (reverse order).
        let rev = render(&[history[1].clone(), history[0].clone()], &[], None);
        assert!(rev.contains("+0.0%*"), "{rev}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_renders_gracefully() {
        let dir = std::env::temp_dir().join(format!("vab_hist_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (history, skipped) = scan(&dir).expect("scan");
        assert!(history.is_empty());
        let text = render(&history, &skipped, Some("quick"));
        assert!(text.contains("no bench snapshots"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
