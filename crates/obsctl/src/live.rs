//! The live side of `vab-obsctl`: talking to a running `vab-svcd` over
//! its NDJSON wire (`metrics` / `watch` ops) and checking telemetry
//! samples against a declarative SLO spec.
//!
//! The wire client here is deliberately tiny — one request line out, one
//! response line in over `std::net::TcpStream` — so `vab-obsctl` keeps
//! zero service-crate dependencies and works against anything that
//! speaks the protocol (including `nc`-driven fakes in tests).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;

/// Schema tag a `vab-slo/1` spec must carry.
pub const SLO_SCHEMA: &str = "vab-slo/1";

/// One NDJSON round-trip to `addr`: send `request` (one line), read one
/// response line, parse it. Sockets carry finite timeouts so a hung
/// daemon yields an error, never a wedged CLI.
pub fn query(addr: &str, request: &Json) -> Result<Json, String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("unresolvable address {addr:?}"))?;
    let stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
    let mut line = request.render();
    line.push('\n');
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer.write_all(line.as_bytes()).map_err(|e| format!("write to {addr}: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    if response.trim().is_empty() {
        return Err(format!("{addr} closed the connection without answering"));
    }
    let v = Json::parse(response.trim_end()).map_err(|e| format!("bad response: {e}"))?;
    if v.bool_field("ok") == Some(false) {
        return Err(format!("daemon rejected: {}", v.str_field("error").unwrap_or("unspecified")));
    }
    Ok(v)
}

/// Fetches one telemetry sample (the `metrics` op).
pub fn fetch_sample(addr: &str) -> Result<Json, String> {
    let resp = query(addr, &Json::obj([("op", Json::Str("metrics".into()))]))?;
    resp.get("sample").cloned().ok_or_else(|| "metrics response carried no sample".into())
}

/// Fetches ring samples newer than `since` (the `watch` op). Returns
/// `(latest_tick, samples)`.
pub fn fetch_watch(addr: &str, since: u64) -> Result<(u64, Vec<Json>), String> {
    let resp = query(
        addr,
        &Json::obj([("op", Json::Str("watch".into())), ("since", Json::Num(since as f64))]),
    )?;
    let latest = resp.u64_field("latest").unwrap_or(0);
    let samples = resp
        .get("samples")
        .and_then(Json::as_arr)
        .map(|v| v.to_vec())
        .ok_or_else(|| "watch response carried no samples array".to_string())?;
    Ok((latest, samples))
}

fn stage_field(sample: &Json, stage: &str, field: &str) -> Option<f64> {
    sample.get("stages")?.get(stage)?.f64_field(field)
}

/// Renders one telemetry sample as a single `tail` line. When `prev` is
/// the preceding sample, cumulative counters become rates over the
/// inter-sample wall time.
pub fn render_sample(prev: Option<&Json>, s: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let tick = s.u64_field("tick").unwrap_or(0);
    let t_ms = s.f64_field("t_ms").unwrap_or(0.0);
    let done = s.f64_field("jobs_done").unwrap_or(0.0);
    let failed = s.f64_field("jobs_failed").unwrap_or(0.0);
    let _ = write!(
        out,
        "tick {tick:>5}  t {:>8.1}s  queue {:>3}  done {done:>6}  failed {failed:>4}",
        t_ms / 1e3,
        s.u64_field("queue_depth").unwrap_or(0),
    );
    if let Some(p) = prev {
        let dt_s = (t_ms - p.f64_field("t_ms").unwrap_or(t_ms)) / 1e3;
        // A daemon restart resets both the clock and the counters, so a
        // later sample can sit *behind* the previous one. Clamp the
        // delta (and a non-positive dt) to zero: `tail --follow` across
        // a restart shows 0.0/s, never a negative rate.
        if dt_s > 0.0 {
            let rate = (done - p.f64_field("jobs_done").unwrap_or(done)).max(0.0) / dt_s;
            let _ = write!(out, "  ({rate:.1}/s)");
        } else {
            let _ = write!(out, "  (0.0/s)");
        }
    }
    if let Some(cache) = s.get("cache") {
        let _ = write!(
            out,
            "  cache {:>5.1}% ({} hit / {} miss)",
            cache.f64_field("hit_rate").unwrap_or(0.0) * 100.0,
            cache.u64_field("hits").unwrap_or(0),
            cache.u64_field("misses").unwrap_or(0),
        );
    }
    if let Some(p50) = stage_field(s, "svc.job_execute", "p50_ms") {
        let _ = write!(
            out,
            "  exec p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
            p50,
            stage_field(s, "svc.job_execute", "p95_ms").unwrap_or(f64::NAN),
            stage_field(s, "svc.job_execute", "p99_ms").unwrap_or(f64::NAN),
        );
    }
    // Allocation telemetry appears only when the daemon runs under
    // VAB_PROFILE=1. Same restart-clamp as the job rate.
    if let Some(alloc) = s.get("alloc") {
        let live = alloc.u64_field("live_bytes").unwrap_or(0);
        let _ = write!(out, "  live {}", crate::profile::human_bytes(live));
        if let Some(p) = prev {
            let dt_s = (t_ms - p.f64_field("t_ms").unwrap_or(t_ms)) / 1e3;
            let allocs = alloc.f64_field("allocs").unwrap_or(0.0);
            let prev_allocs = p.get("alloc").and_then(|a| a.f64_field("allocs")).unwrap_or(allocs);
            let rate = if dt_s > 0.0 { (allocs - prev_allocs).max(0.0) / dt_s } else { 0.0 };
            let _ = write!(out, "  ({rate:.0} alloc/s)");
        }
    }
    out
}

/// A declarative service-level objective spec (`crates/bench/slo.json`).
#[derive(Debug, Clone, Default)]
pub struct SloSpec {
    /// Per-stage p99 upper bounds, milliseconds.
    pub stage_p99_ms: Vec<(String, f64)>,
    /// Queue-wait p99 budget, milliseconds (checked against the
    /// `svc.queue_wait` stage).
    pub queue_wait_p99_ms: Option<f64>,
    /// Minimum acceptable cache hit rate (0..1).
    pub cache_hit_floor: Option<f64>,
}

impl SloSpec {
    /// Parses a `vab-slo/1` document.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        if v.str_field("schema") != Some(SLO_SCHEMA) {
            return Err(format!(
                "unsupported SLO schema {:?} (want {SLO_SCHEMA:?})",
                v.str_field("schema").unwrap_or("<missing>")
            ));
        }
        let mut spec = SloSpec::default();
        if let Some(bounds) = v.get("stage_p99_ms").and_then(Json::as_obj) {
            for (stage, bound) in bounds {
                let bound = bound
                    .as_f64()
                    .ok_or_else(|| format!("stage_p99_ms.{stage} must be a number"))?;
                spec.stage_p99_ms.push((stage.clone(), bound));
            }
        }
        spec.queue_wait_p99_ms = v.f64_field("queue_wait_p99_ms");
        spec.cache_hit_floor = v.f64_field("cache_hit_floor");
        Ok(spec)
    }

    /// Loads and parses `path`.
    pub fn load(path: &std::path::Path) -> Result<SloSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        SloSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// What was checked (e.g. `p99(svc.job_execute)`).
    pub objective: String,
    /// Measured value, if the sample carried data for it.
    pub measured: Option<f64>,
    /// The bound from the spec.
    pub bound: f64,
    /// True when the bound holds (or no data existed to breach it).
    pub pass: bool,
}

/// Evaluates `spec` against one telemetry sample. A stage absent from
/// the sample passes with `measured: None` — no traffic is not a breach
/// — but is reported so a silent instrumentation regression stays
/// visible.
pub fn check(spec: &SloSpec, sample: &Json) -> Vec<SloCheck> {
    let mut out = Vec::new();
    let mut p99_bounds: Vec<(String, f64)> = spec.stage_p99_ms.clone();
    if let Some(budget) = spec.queue_wait_p99_ms {
        p99_bounds.push(("svc.queue_wait".into(), budget));
    }
    for (stage, bound) in p99_bounds {
        let measured = stage_field(sample, &stage, "p99_ms");
        out.push(SloCheck {
            objective: format!("p99({stage}) ms"),
            measured,
            bound,
            pass: measured.map(|m| m <= bound).unwrap_or(true),
        });
    }
    if let Some(floor) = spec.cache_hit_floor {
        let measured = sample.get("cache").and_then(|c| c.f64_field("hit_rate"));
        out.push(SloCheck {
            objective: "cache hit rate".into(),
            measured,
            bound: floor,
            pass: measured.map(|m| m >= floor).unwrap_or(true),
        });
    }
    out
}

/// Renders check results; returns `(text, breaches)`.
pub fn render_checks(checks: &[SloCheck]) -> (String, usize) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut breaches = 0;
    for c in checks {
        let verdict = if c.pass { "ok  " } else { "FAIL" };
        if !c.pass {
            breaches += 1;
        }
        let measured = match c.measured {
            Some(m) => format!("{m:.3}"),
            None => "no data".into(),
        };
        let _ = writeln!(
            out,
            "{verdict}  {:<28} measured {measured:>12}  bound {:.3}",
            c.objective, c.bound
        );
    }
    let _ = writeln!(out, "slo: {} objective(s), {breaches} breach(es)", checks.len());
    (out, breaches)
}

/// Renders check results as a JSON document for scripts and CI
/// assertions; returns `(json, breaches)`.
pub fn render_checks_json(checks: &[SloCheck]) -> (String, usize) {
    use crate::json::{write_json_number, write_json_string};
    use std::fmt::Write as _;
    let breaches = checks.iter().filter(|c| !c.pass).count();
    let mut out = String::with_capacity(512);
    out.push_str("{\n  \"checks\": [");
    for (i, c) in checks.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str("{\"objective\": ");
        write_json_string(&mut out, &c.objective);
        out.push_str(", \"measured\": ");
        match c.measured {
            Some(m) => write_json_number(&mut out, m),
            None => out.push_str("null"),
        }
        out.push_str(", \"bound\": ");
        write_json_number(&mut out, c.bound);
        let _ = write!(out, ", \"pass\": {}}}", c.pass);
    }
    out.push_str(if checks.is_empty() { "],\n" } else { "\n  ],\n" });
    let _ = writeln!(out, "  \"objectives\": {},\n  \"breaches\": {breaches}\n}}", checks.len());
    (out, breaches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(exec_p99: f64, queue_p99: Option<f64>, hit_rate: f64) -> Json {
        let mut stages = vec![(
            "svc.job_execute".to_string(),
            Json::obj([
                ("count", Json::Num(4.0)),
                ("p50_ms", Json::Num(exec_p99 / 2.0)),
                ("p95_ms", Json::Num(exec_p99 * 0.9)),
                ("p99_ms", Json::Num(exec_p99)),
            ]),
        )];
        if let Some(q) = queue_p99 {
            stages.push((
                "svc.queue_wait".to_string(),
                Json::obj([("count", Json::Num(4.0)), ("p99_ms", Json::Num(q))]),
            ));
        }
        Json::obj([
            ("tick", Json::Num(3.0)),
            ("t_ms", Json::Num(1500.0)),
            ("queue_depth", Json::Num(1.0)),
            ("jobs_done", Json::Num(7.0)),
            ("jobs_failed", Json::Num(0.0)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(3.0)),
                    ("misses", Json::Num(1.0)),
                    ("hit_rate", Json::Num(hit_rate)),
                ]),
            ),
            ("stages", Json::Obj(stages)),
        ])
    }

    fn spec() -> SloSpec {
        SloSpec::parse(
            r#"{"schema":"vab-slo/1",
                "stage_p99_ms":{"svc.job_execute":1000.0},
                "queue_wait_p99_ms":50.0,
                "cache_hit_floor":0.25}"#,
        )
        .expect("spec parses")
    }

    #[test]
    fn slo_passes_within_bounds_and_fails_on_breach() {
        let checks = check(&spec(), &sample(900.0, Some(40.0), 0.75));
        let (text, breaches) = render_checks(&checks);
        assert_eq!(breaches, 0, "{text}");
        assert_eq!(checks.len(), 3);

        let checks = check(&spec(), &sample(1500.0, Some(80.0), 0.1));
        let (text, breaches) = render_checks(&checks);
        assert_eq!(breaches, 3, "{text}");
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn missing_stage_data_passes_but_is_reported() {
        // No queue_wait stage at all (e.g. every job was a cache hit).
        let checks = check(&spec(), &sample(900.0, None, 0.9));
        let queue = checks.iter().find(|c| c.objective.contains("queue_wait")).expect("reported");
        assert!(queue.pass && queue.measured.is_none());
        let (text, breaches) = render_checks(&checks);
        assert_eq!(breaches, 0);
        assert!(text.contains("no data"), "{text}");
    }

    #[test]
    fn spec_rejects_unknown_schema_and_bad_bounds() {
        assert!(SloSpec::parse(r#"{"schema":"vab-slo/9"}"#).is_err());
        assert!(SloSpec::parse(r#"{"schema":"vab-slo/1","stage_p99_ms":{"x":"fast"}}"#).is_err());
    }

    #[test]
    fn tail_lines_carry_rates_and_latency_trio() {
        let prev = sample(900.0, Some(40.0), 0.5);
        let mut next = sample(900.0, Some(40.0), 0.5);
        // Advance the clock and the done counter: 4 jobs in 500 ms.
        if let Json::Obj(fields) = &mut next {
            for (k, v) in fields.iter_mut() {
                if k == "t_ms" {
                    *v = Json::Num(2000.0);
                }
                if k == "jobs_done" {
                    *v = Json::Num(11.0);
                }
            }
        }
        let line = render_sample(Some(&prev), &next);
        assert!(line.contains("(8.0/s)"), "line: {line}");
        assert!(line.contains("exec p50/p95/p99"), "line: {line}");
        assert!(line.contains("cache  50.0%"), "line: {line}");
    }

    /// Two-sample synthetic ring where the second generation restarted
    /// from zero: the delta-derived rate must clamp at 0.0, never print
    /// negative.
    #[test]
    fn restarted_daemon_clamps_rates_at_zero() {
        let set = |json: &mut Json, key: &str, val: f64| {
            if let Json::Obj(fields) = json {
                for (k, v) in fields.iter_mut() {
                    if k == key {
                        *v = Json::Num(val);
                    }
                }
            }
        };
        // Generation 1: tick 3, t=1500ms, 7 jobs done.
        let prev = sample(900.0, None, 0.5);
        // Generation 2 (restart): clock AND counter behind the previous
        // sample, but time still advancing.
        let mut next = sample(900.0, None, 0.5);
        set(&mut next, "tick", 1.0);
        set(&mut next, "t_ms", 1600.0);
        set(&mut next, "jobs_done", 2.0);
        let line = render_sample(Some(&prev), &next);
        assert!(line.contains("(0.0/s)"), "counter reset must clamp: {line}");
        assert!(!line.contains('-'), "no negative rate anywhere: {line}");
        // Restart where even the clock went backwards: dt <= 0.
        let mut rewound = sample(900.0, None, 0.5);
        set(&mut rewound, "t_ms", 500.0);
        set(&mut rewound, "jobs_done", 0.0);
        let line = render_sample(Some(&prev), &rewound);
        assert!(line.contains("(0.0/s)"), "clock rewind must clamp: {line}");
    }

    #[test]
    fn alloc_telemetry_renders_live_bytes_and_clamped_rate() {
        let with_alloc = |allocs: f64, t_ms: f64| {
            let mut s = sample(900.0, None, 0.5);
            if let Json::Obj(fields) = &mut s {
                for (k, v) in fields.iter_mut() {
                    if k == "t_ms" {
                        *v = Json::Num(t_ms);
                    }
                }
                fields.push((
                    "alloc".to_string(),
                    Json::obj([
                        ("allocs", Json::Num(allocs)),
                        ("frees", Json::Num(allocs - 10.0)),
                        ("live_bytes", Json::Num(2048.0)),
                        ("peak_live_bytes", Json::Num(4096.0)),
                    ]),
                ));
            }
            s
        };
        let line = render_sample(Some(&with_alloc(100.0, 1000.0)), &with_alloc(300.0, 2000.0));
        assert!(line.contains("live 2.0 KiB"), "line: {line}");
        assert!(line.contains("(200 alloc/s)"), "line: {line}");
        // Counter reset across restart: clamp, don't go negative.
        let line = render_sample(Some(&with_alloc(300.0, 1000.0)), &with_alloc(50.0, 2000.0));
        assert!(line.contains("(0 alloc/s)"), "line: {line}");
        // Unprofiled samples stay alloc-free.
        let plain = render_sample(None, &sample(900.0, None, 0.5));
        assert!(!plain.contains("live "), "line: {plain}");
    }

    #[test]
    fn slo_json_output_parses_and_counts_breaches() {
        let checks = check(&spec(), &sample(1500.0, Some(80.0), 0.1));
        let (json, breaches) = render_checks_json(&checks);
        assert_eq!(breaches, 3);
        let v = Json::parse(&json).expect("valid JSON");
        assert_eq!(v.u64_field("breaches"), Some(3));
        assert_eq!(v.u64_field("objectives"), Some(3));
        let arr = v.get("checks").and_then(Json::as_arr).expect("checks");
        assert_eq!(arr.len(), 3);
        assert!(arr.iter().all(|c| c.get("pass").and_then(Json::as_bool) == Some(false)));
        // A no-data check serializes measured as null.
        let checks = check(&spec(), &sample(900.0, None, 0.9));
        let (json, _) = render_checks_json(&checks);
        assert!(json.contains("\"measured\": null"), "{json}");
    }
}
