//! Cross-process span-tree reconstruction: the `vab-obsctl trace`
//! waterfall.
//!
//! `vab-obs` spans carry content-derived identity (`trace`, `id`,
//! `parent` — see `vab_obs::span`), so a job's life can be reassembled
//! from *any* set of JSONL traces that observed parts of it: the client
//! process contributes `svc.submit`, the daemon contributes
//! `svc.handle` → `svc.cache_lookup` / `svc.queue_wait` /
//! `svc.job_execute` → `svc.cache_persist`. Merged files have mutually
//! skewed clocks and overlapping `seq` ranges, so everything here is
//! computed from span *durations* only — never from cross-process
//! timestamps: critical-path attribution, percentages and self-times are
//! all skew-immune.

use std::collections::BTreeMap;

use crate::trace::Trace;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (doubles as the stage-histogram instrument name).
    pub name: String,
    /// Emitting subsystem of the first event seen for this id.
    pub target: String,
    /// Content-derived span id.
    pub id: u64,
    /// Parent span id (0 = no parent).
    pub parent: u64,
    /// Duration from the `span_end` event, if one was observed.
    pub dur_us: Option<u64>,
    /// Trace labels (processes) that emitted events for this span,
    /// sorted and deduplicated.
    pub sources: Vec<String>,
    /// How many begin/end events referenced this id (a long-lived daemon
    /// trace can replay an identical content-derived span; we keep the
    /// first duration and count the rest).
    pub occurrences: usize,
}

/// A span tree for one trace id, reconstructed from a (possibly merged)
/// event stream.
#[derive(Debug, Clone, Default)]
pub struct Waterfall {
    /// The trace id (the job's content digest).
    pub trace_id: u64,
    /// Spans keyed by id (BTreeMap for deterministic iteration).
    pub spans: BTreeMap<u64, Span>,
}

fn hex_field(fields: &crate::json::Json, key: &str) -> Option<u64> {
    u64::from_str_radix(fields.str_field(key)?, 16).ok()
}

impl Waterfall {
    /// Collects every `span_begin`/`span_end` event belonging to
    /// `trace_id` out of `trace` (which may be a [`Trace::merge`] of
    /// several processes' files).
    pub fn from_trace(trace: &Trace, trace_id: u64) -> Waterfall {
        let mut spans: BTreeMap<u64, Span> = BTreeMap::new();
        for e in &trace.events {
            if e.name != "span_begin" && e.name != "span_end" {
                continue;
            }
            let Some(t) = hex_field(&e.fields, "trace") else { continue };
            if t != trace_id {
                continue;
            }
            let (Some(id), Some(parent), Some(name)) = (
                hex_field(&e.fields, "id"),
                hex_field(&e.fields, "parent"),
                e.fields.str_field("span"),
            ) else {
                continue;
            };
            let span = spans.entry(id).or_insert_with(|| Span {
                name: name.to_string(),
                target: e.target.clone(),
                id,
                parent,
                dur_us: None,
                sources: Vec::new(),
                occurrences: 0,
            });
            span.occurrences += 1;
            if !e.source.is_empty() && !span.sources.contains(&e.source) {
                span.sources.push(e.source.clone());
            }
            if e.name == "span_end" && span.dur_us.is_none() {
                span.dur_us = e.fields.u64_field("dur_us");
            }
        }
        for span in spans.values_mut() {
            span.sources.sort_unstable();
        }
        Waterfall { trace_id, spans }
    }

    /// Root span ids: parent 0 or a parent never observed (the job's
    /// anchor context is derived, not emitted, so `svc.submit` spans
    /// root the tree), sorted by `(name, id)`.
    pub fn roots(&self) -> Vec<u64> {
        let mut roots: Vec<u64> = self
            .spans
            .values()
            .filter(|s| s.parent == 0 || !self.spans.contains_key(&s.parent))
            .map(|s| s.id)
            .collect();
        self.sort_sibling_ids(&mut roots);
        roots
    }

    /// Children of `id`, sorted by `(name, id)` — a total, content-only
    /// order, so sibling layout never depends on event arrival order.
    pub fn children_of(&self, id: u64) -> Vec<u64> {
        let mut kids: Vec<u64> =
            self.spans.values().filter(|s| s.parent == id && s.id != id).map(|s| s.id).collect();
        self.sort_sibling_ids(&mut kids);
        kids
    }

    fn sort_sibling_ids(&self, ids: &mut [u64]) {
        ids.sort_by(|a, b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            (sa.name.as_str(), sa.id).cmp(&(sb.name.as_str(), sb.id))
        });
    }

    /// The critical path under `root`: repeatedly descend into the child
    /// with the largest duration (ties break by the sibling order).
    /// Durations only — immune to cross-process clock skew.
    pub fn critical_path(&self, root: u64) -> Vec<u64> {
        let mut path = vec![root];
        let mut at = root;
        loop {
            let next = self
                .children_of(at)
                .into_iter()
                .max_by_key(|id| (self.spans[id].dur_us.unwrap_or(0), std::cmp::Reverse(*id)));
            match next {
                Some(id) if self.spans[&id].dur_us.is_some() => {
                    path.push(id);
                    at = id;
                }
                _ => return path,
            }
        }
    }

    /// `dur - Σ(children dur)`, clamped at zero (clamping absorbs the
    /// small overshoot a cross-thread child measured on another clock can
    /// introduce).
    pub fn self_us(&self, id: u64) -> u64 {
        let own = self.spans[&id].dur_us.unwrap_or(0);
        let kids: u64 =
            self.children_of(id).iter().map(|c| self.spans[c].dur_us.unwrap_or(0)).sum();
        own.saturating_sub(kids)
    }

    /// The canonical span set: one `name trace:id<-parent` line per
    /// span, sorted. Two runs of the same workload produce identical
    /// sets whatever the worker count — this is what the determinism
    /// gate compares.
    pub fn canonical_set(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .spans
            .values()
            .map(|s| format!("{} {:016x}:{:016x}<-{:016x}", s.name, self.trace_id, s.id, s.parent))
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Indented waterfall with duration, share of the enclosing root,
    /// self-time and source processes; `*` marks the critical path.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let roots = self.roots();
        let _ = writeln!(
            out,
            "trace {:016x}: {} span(s), {} root(s)",
            self.trace_id,
            self.spans.len(),
            roots.len()
        );
        for root in roots {
            let total = self.spans[&root].dur_us.unwrap_or(0).max(1);
            let critical: Vec<u64> = self.critical_path(root);
            let mut stack = vec![(root, 0usize)];
            while let Some((id, depth)) = stack.pop() {
                let s = &self.spans[&id];
                let mark = if critical.contains(&id) { "*" } else { " " };
                let dur = match s.dur_us {
                    Some(us) => format!("{:>10.3} ms", us as f64 / 1e3),
                    None => format!("{:>13}", "(no end)"),
                };
                let pct = s.dur_us.map(|us| 100.0 * us as f64 / total as f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "{mark} {:indent$}{:<24} {dur}  {pct:5.1}%  self {:>8.3} ms  [{}]{}",
                    "",
                    s.name,
                    self.self_us(id) as f64 / 1e3,
                    s.sources.join("+"),
                    if s.occurrences > 2 {
                        format!("  x{}", s.occurrences / 2)
                    } else {
                        String::new()
                    },
                    indent = depth * 2,
                );
                // Push in reverse so children render in sibling order.
                for child in self.children_of(id).into_iter().rev() {
                    stack.push((child, depth + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built span events mimicking the service tree:
    /// submit(id 10) <- handle(20) <- {lookup(30), queue(40), exec(50)};
    /// persist(60) under exec. Client and daemon number seqs
    /// independently and disagree on clocks.
    #[allow(clippy::too_many_arguments)]
    fn span_line(
        seq: u64,
        t_us: u64,
        target: &str,
        kind: &str,
        name: &str,
        id: u64,
        parent: u64,
        dur: Option<u64>,
    ) -> String {
        let dur_field = dur.map(|d| format!(",\"dur_us\":{d}")).unwrap_or_default();
        format!(
            "{{\"seq\":{seq},\"t_us\":{t_us},\"target\":\"{target}\",\"event\":\"{kind}\",\"fields\":{{\"span\":\"{name}\",\"trace\":\"00000000000000aa\",\"id\":\"{id:016x}\",\"parent\":\"{parent:016x}\"{dur_field}}}}}"
        )
    }

    fn merged() -> Trace {
        let client = [
            span_line(1, 5, "svc.client", "span_begin", "svc.submit", 0x10, 0x1, None),
            span_line(2, 9000, "svc.client", "span_end", "svc.submit", 0x10, 0x1, Some(9000)),
        ]
        .join("\n");
        let daemon = [
            span_line(1, 7_000_000, "svc.server", "span_begin", "svc.handle", 0x20, 0x10, None),
            span_line(
                2,
                7_000_001,
                "svc.cache",
                "span_begin",
                "svc.cache_lookup",
                0x30,
                0x20,
                None,
            ),
            span_line(
                3,
                7_000_050,
                "svc.cache",
                "span_end",
                "svc.cache_lookup",
                0x30,
                0x20,
                Some(50),
            ),
            span_line(4, 7_000_060, "svc.pool", "span_begin", "svc.queue_wait", 0x40, 0x20, None),
            span_line(5, 7_000_100, "svc.server", "span_end", "svc.handle", 0x20, 0x10, Some(200)),
            span_line(
                6,
                7_000_460,
                "svc.pool",
                "span_end",
                "svc.queue_wait",
                0x40,
                0x20,
                Some(400),
            ),
            span_line(7, 7_000_470, "svc.pool", "span_begin", "svc.job_execute", 0x50, 0x20, None),
            span_line(
                8,
                7_008_000,
                "svc.cache",
                "span_begin",
                "svc.cache_persist",
                0x60,
                0x50,
                None,
            ),
            span_line(
                9,
                7_008_100,
                "svc.cache",
                "span_end",
                "svc.cache_persist",
                0x60,
                0x50,
                Some(100),
            ),
            span_line(
                10,
                7_008_150,
                "svc.pool",
                "span_end",
                "svc.job_execute",
                0x50,
                0x20,
                Some(7600),
            ),
        ]
        .join("\n");
        Trace::merge([("client", Trace::parse(&client)), ("daemon", Trace::parse(&daemon))])
    }

    #[test]
    fn rebuilds_the_cross_process_tree_and_critical_path() {
        let w = Waterfall::from_trace(&merged(), 0xaa);
        assert_eq!(w.spans.len(), 6);
        assert_eq!(w.roots(), vec![0x10], "submit roots the tree (its parent is the anchor)");
        assert_eq!(w.children_of(0x10), vec![0x20]);
        // Siblings sort by (name, id): cache_lookup < job_execute < queue_wait.
        assert_eq!(w.children_of(0x20), vec![0x30, 0x50, 0x40]);
        assert_eq!(w.critical_path(0x10), vec![0x10, 0x20, 0x50, 0x60]);
        // Self time clamps: handle (200 µs) measured less than its
        // cross-thread children — skew-immune attribution never goes
        // negative.
        assert_eq!(w.self_us(0x20), 0);
        assert_eq!(w.self_us(0x50), 7500);
        let rendered = w.render();
        assert!(rendered.contains("svc.job_execute"), "render: {rendered}");
        assert!(rendered.lines().any(|l| l.starts_with('*') && l.contains("svc.cache_persist")));
        assert!(rendered.contains("[client]"), "render: {rendered}");
    }

    #[test]
    fn canonical_set_ignores_event_order_and_duplicates() {
        let w = Waterfall::from_trace(&merged(), 0xaa);
        let set = w.canonical_set();
        assert_eq!(set.len(), 6);
        assert!(set.windows(2).all(|p| p[0] < p[1]), "sorted, unique: {set:?}");
        // A daemon that replays the identical (content-derived) span —
        // e.g. the same job submitted twice — must not grow the set.
        let doubled = {
            let once = merged();
            let mut twice = once.clone();
            twice.events.extend(once.events.clone());
            twice
        };
        assert_eq!(Waterfall::from_trace(&doubled, 0xaa).canonical_set(), set);
        // Other trace ids are invisible.
        assert!(Waterfall::from_trace(&merged(), 0xbb).spans.is_empty());
    }
}
