//! The `anomalies` subcommand: scan a trace for the failure signatures
//! the fault-injection PR taught the stack to survive, and show each one
//! with enough surrounding events to diagnose it.
//!
//! Six detectors:
//! * **BER spikes** — `deployment_done` bit-error outliers (≥ `factor` ×
//!   the run's median, above an absolute floor), plus every
//!   `rate_change` the controller attributed to `ber_spike`.
//! * **ARQ retransmit storms** — bursts of `link.arq`
//!   retransmit/corrupt-ack/drop events.
//! * **Brownout cascades** — bursts of PMU brownouts, scheduler
//!   re-plans and truncated replies.
//! * **Silence / re-inventory bursts** — clusters of `node_silent`
//!   crossings and re-inventory rounds.
//! * **Service retry storms** — bursts of `svc.retry`
//!   reconnect/backoff/resubmit events (a client fighting a chaotic or
//!   dying daemon).
//! * **Service recovery cascades** — bursts of `svc.recover` and
//!   `svc.fault` events: faults landing and the stack healing, many at
//!   once.
//!
//! Burst windows scale with the trace (span / 50, floored at 1 ms) so
//! the same thresholds work for a 100 ms smoke run and an hour-long
//! campaign.

use std::fmt::Write as _;

use crate::trace::{Trace, TraceEvent};

/// What kind of failure signature an anomaly is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Bit-error outlier (or controller-flagged BER fallback).
    BerSpike,
    /// Burst of ARQ retransmissions / corrupt ACKs / drops.
    RetransmitStorm,
    /// Burst of brownouts, brownout re-plans and truncated replies.
    BrownoutCascade,
    /// Cluster of node-silence crossings and re-inventory rounds.
    SilenceBurst,
    /// Burst of service-client reconnects/backoffs/resubmissions.
    SvcRetryStorm,
    /// Burst of service faults and recoveries (chaos landing + healing).
    SvcRecoveryCascade,
}

impl AnomalyKind {
    /// Human label for report lines.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::BerSpike => "BER spike",
            AnomalyKind::RetransmitStorm => "ARQ retransmit storm",
            AnomalyKind::BrownoutCascade => "brownout cascade",
            AnomalyKind::SilenceBurst => "silence/re-inventory burst",
            AnomalyKind::SvcRetryStorm => "service retry storm",
            AnomalyKind::SvcRecoveryCascade => "service recovery cascade",
        }
    }
}

/// One detected anomaly, anchored to event indices in the sorted trace.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Signature class.
    pub kind: AnomalyKind,
    /// Index (into `trace.events`) of the first involved event.
    pub first: usize,
    /// Index of the last involved event.
    pub last: usize,
    /// How many events make up the anomaly.
    pub hits: usize,
    /// One-line diagnosis.
    pub description: String,
}

/// Detector thresholds. The defaults are tuned for the workloads this
/// repo produces (faulted campaigns, the F19 protocol loop).
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Events of context to print on each side of an anomaly.
    pub context: usize,
    /// BER spike: errors ≥ this multiple of the median deployment errors.
    pub ber_spike_factor: f64,
    /// BER spike: absolute error floor (quiet runs have median 0).
    pub min_errors: u64,
    /// Retransmit storm: minimum burst size.
    pub storm_count: usize,
    /// Brownout cascade: minimum burst size.
    pub cascade_count: usize,
    /// Silence burst: minimum burst size.
    pub silence_count: usize,
    /// Service retry storm: minimum burst size.
    pub svc_retry_count: usize,
    /// Service recovery cascade: minimum burst size.
    pub svc_recover_count: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            context: 3,
            ber_spike_factor: 4.0,
            min_errors: 16,
            storm_count: 6,
            cascade_count: 5,
            silence_count: 4,
            svc_retry_count: 6,
            svc_recover_count: 5,
        }
    }
}

/// Runs all detectors over `trace`, returning anomalies in event order.
pub fn scan(trace: &Trace, cfg: &AnomalyConfig) -> Vec<Anomaly> {
    let mut found = Vec::new();
    found.extend(ber_spikes(trace, cfg));
    found.extend(bursts(
        trace,
        AnomalyKind::RetransmitStorm,
        &[("link.arq", "retransmit"), ("link.arq", "corrupt_ack"), ("link.arq", "drop")],
        cfg.storm_count,
    ));
    found.extend(bursts(
        trace,
        AnomalyKind::BrownoutCascade,
        &[
            ("harvest.pmu", "brownout"),
            ("core.scheduler", "brownout_replan"),
            ("sim.montecarlo", "brownout_truncated_reply"),
        ],
        cfg.cascade_count,
    ));
    found.extend(bursts(
        trace,
        AnomalyKind::SilenceBurst,
        &[("mac.inventory", "node_silent"), ("mac.inventory", "reinventory")],
        cfg.silence_count,
    ));
    found.extend(bursts(
        trace,
        AnomalyKind::SvcRetryStorm,
        &[("svc.retry", "reconnect"), ("svc.retry", "backoff"), ("svc.retry", "resubmit")],
        cfg.svc_retry_count,
    ));
    found.extend(bursts(
        trace,
        AnomalyKind::SvcRecoveryCascade,
        &[
            ("svc.recover", "recovered"),
            ("svc.recover", "job_recovered"),
            ("svc.recover", "cache_scan"),
            ("svc.fault", "wire_drop"),
            ("svc.fault", "wire_truncate"),
            ("svc.fault", "wire_corrupt"),
            ("svc.fault", "disk_write_failed"),
            ("svc.fault", "cache_corrupt"),
        ],
        cfg.svc_recover_count,
    ));
    found.sort_by_key(|a| a.first);
    found
}

/// Burst window: wide enough that "several per fiftieth of the run"
/// reads as a storm regardless of the run's absolute duration.
fn burst_window_us(trace: &Trace) -> u64 {
    ((trace.span_s() * 1e6) as u64 / 50).max(1_000)
}

fn ber_spikes(trace: &Trace, cfg: &AnomalyConfig) -> Vec<Anomaly> {
    let mut out = Vec::new();
    // Error outliers among deployments.
    let mut errors: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.name == "deployment_done")
        .filter_map(|e| e.fields.u64_field("errors"))
        .collect();
    if !errors.is_empty() {
        errors.sort_unstable();
        let median = errors[errors.len() / 2];
        let threshold = ((median as f64 * cfg.ber_spike_factor) as u64).max(cfg.min_errors).max(1);
        for (i, e) in trace.events.iter().enumerate() {
            if e.name != "deployment_done" {
                continue;
            }
            let Some(err) = e.fields.u64_field("errors") else { continue };
            if err >= threshold {
                out.push(Anomaly {
                    kind: AnomalyKind::BerSpike,
                    first: i,
                    last: i,
                    hits: 1,
                    description: format!(
                        "trial {} saw {err} bit errors (median {median}, threshold {threshold})",
                        e.fields.u64_field("trial").unwrap_or(0),
                    ),
                });
            }
        }
    }
    // Rate-controller fallbacks explicitly attributed to a BER spike.
    for (i, e) in trace.events.iter().enumerate() {
        if e.target == "mac.rate_adapt"
            && e.name == "rate_change"
            && e.fields.str_field("reason") == Some("ber_spike")
        {
            out.push(Anomaly {
                kind: AnomalyKind::BerSpike,
                first: i,
                last: i,
                hits: 1,
                description: format!(
                    "rate controller fell back to {} bps on addr {} (reason: ber_spike)",
                    e.fields.f64_field("rate_bps").unwrap_or(0.0),
                    e.fields.u64_field("addr").unwrap_or(0),
                ),
            });
        }
    }
    out
}

/// Generic burst detector: maximal clusters of the given families whose
/// consecutive inter-event gaps stay inside the burst window.
fn bursts(
    trace: &Trace,
    kind: AnomalyKind,
    families: &[(&str, &str)],
    min_count: usize,
) -> Vec<Anomaly> {
    let idx: Vec<usize> = trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| families.iter().any(|(t, n)| e.target == *t && e.name == *n))
        .map(|(i, _)| i)
        .collect();
    if idx.len() < min_count {
        return Vec::new();
    }
    let window = burst_window_us(trace);
    let mut out = Vec::new();
    let mut cluster_start = 0usize;
    for k in 1..=idx.len() {
        let gap_over = k == idx.len()
            || trace.events[idx[k]].t_us.saturating_sub(trace.events[idx[k - 1]].t_us) > window;
        if !gap_over {
            continue;
        }
        let cluster = &idx[cluster_start..k];
        if cluster.len() >= min_count {
            let (first, last) = (cluster[0], *cluster.last().expect("nonempty"));
            let dur_ms = (trace.events[last].t_us - trace.events[first].t_us) as f64 / 1000.0;
            out.push(Anomaly {
                kind,
                first,
                last,
                hits: cluster.len(),
                description: format!(
                    "{} {} events within {dur_ms:.1} ms",
                    cluster.len(),
                    kind.label()
                ),
            });
        }
        cluster_start = k;
    }
    out
}

/// Renders the anomaly report with a ±`context`-event window around each
/// finding (the window that makes a storm diagnosable: what the stack was
/// doing right before and after).
pub fn render(trace: &Trace, anomalies: &[Anomaly], context: usize) -> String {
    let mut out = String::with_capacity(2048);
    if anomalies.is_empty() {
        out.push_str("no anomalies detected\n");
        return out;
    }
    let _ = writeln!(out, "{} anomaly(ies) detected:\n", anomalies.len());
    for (n, a) in anomalies.iter().enumerate() {
        let _ = writeln!(out, "[{}] {}: {}", n + 1, a.kind.label(), a.description);
        let lo = a.first.saturating_sub(context);
        let hi = (a.last + context).min(trace.events.len().saturating_sub(1));
        for i in lo..=hi {
            let marker = if i >= a.first && i <= a.last { ">" } else { " " };
            let _ = writeln!(out, "  {marker} {}", event_line(&trace.events[i]));
        }
        out.push('\n');
    }
    out
}

fn event_line(e: &TraceEvent) -> String {
    e.to_display_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, target: &str, name: &str, extra: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"t_us\":{t_us},\"target\":\"{target}\",\"event\":\"{name}\",\"fields\":{{{extra}}}}}"
        )
    }

    #[test]
    fn detects_retransmit_storm_with_context() {
        let mut lines = Vec::new();
        // Quiet background spread over ~10 s so the burst window stays small.
        for i in 0..20u64 {
            lines.push(ev(
                i,
                i * 500_000,
                "sim.campaign",
                "deployment_done",
                "\"trial\":1,\"errors\":0",
            ));
        }
        // A tight storm of 8 retransmits within 2 ms.
        for i in 0..8u64 {
            lines.push(ev(100 + i, 5_000_000 + i * 250, "link.arq", "retransmit", "\"seq\":1"));
        }
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1, "found: {found:?}");
        assert_eq!(found[0].kind, AnomalyKind::RetransmitStorm);
        assert_eq!(found[0].hits, 8);
        let rendered = render(&trace, &found, 2);
        assert!(rendered.contains("ARQ retransmit storm"), "rendered: {rendered}");
        assert!(rendered.contains("> #"), "rendered: {rendered}");
    }

    #[test]
    fn detects_ber_spike_outlier() {
        let mut lines = Vec::new();
        for i in 0..10u64 {
            let errors = if i == 7 { 120 } else { 2 };
            lines.push(ev(
                i,
                i * 1000,
                "sim.campaign",
                "deployment_done",
                &format!("\"trial\":{i},\"errors\":{errors}"),
            ));
        }
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1, "found: {found:?}");
        assert_eq!(found[0].kind, AnomalyKind::BerSpike);
        assert!(found[0].description.contains("trial 7"), "{}", found[0].description);
    }

    #[test]
    fn rate_fallback_counts_as_ber_spike() {
        let lines = [
            ev(
                0,
                0,
                "mac.rate_adapt",
                "rate_change",
                "\"addr\":3,\"rate_bps\":100.0,\"reason\":\"ber_spike\"",
            ),
            ev(
                1,
                10,
                "mac.rate_adapt",
                "rate_change",
                "\"addr\":3,\"rate_bps\":250.0,\"reason\":\"clean_probe\"",
            ),
        ];
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].description.contains("addr 3"));
    }

    #[test]
    fn sparse_events_do_not_trigger_bursts() {
        let mut lines = Vec::new();
        // 8 brownouts but spread evenly over 80 s: no cascade.
        for i in 0..8u64 {
            lines.push(ev(i, i * 10_000_000, "harvest.pmu", "brownout", "\"total\":1"));
        }
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert!(found.is_empty(), "found: {found:?}");
    }

    #[test]
    fn silence_and_reinventory_cluster_together() {
        let mut lines = Vec::new();
        for i in 0..30u64 {
            lines.push(ev(
                i,
                i * 1_000_000,
                "sim.campaign",
                "deployment_done",
                "\"trial\":1,\"errors\":0",
            ));
        }
        for i in 0..3u64 {
            lines.push(ev(
                100 + i,
                15_000_000 + i * 100,
                "mac.inventory",
                "node_silent",
                "\"addr\":2,\"misses\":3",
            ));
        }
        lines.push(ev(103, 15_000_400, "mac.inventory", "reinventory", "\"offered\":1"));
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1, "found: {found:?}");
        assert_eq!(found[0].kind, AnomalyKind::SilenceBurst);
        assert_eq!(found[0].hits, 4);
    }

    #[test]
    fn detects_service_retry_storm() {
        let mut lines = Vec::new();
        // Quiet background spread over ~10 s so the burst window stays small.
        for i in 0..20u64 {
            lines.push(ev(
                i,
                i * 500_000,
                "sim.campaign",
                "deployment_done",
                "\"trial\":1,\"errors\":0",
            ));
        }
        // A client fighting a dying daemon: reconnect/backoff/resubmit
        // triplets in a tight 1.5 ms cluster.
        for i in 0..3u64 {
            let t = 4_000_000 + i * 500;
            lines.push(ev(100 + 3 * i, t, "svc.retry", "reconnect", "\"job\":\"mc:1\""));
            lines.push(ev(
                101 + 3 * i,
                t + 100,
                "svc.retry",
                "backoff",
                "\"job\":\"mc:1\",\"ms\":8",
            ));
            lines.push(ev(102 + 3 * i, t + 200, "svc.retry", "resubmit", "\"job\":\"mc:1\""));
        }
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1, "found: {found:?}");
        assert_eq!(found[0].kind, AnomalyKind::SvcRetryStorm);
        assert_eq!(found[0].hits, 9);
        let rendered = render(&trace, &found, 2);
        assert!(rendered.contains("service retry storm"), "rendered: {rendered}");
    }

    #[test]
    fn detects_service_recovery_cascade() {
        let mut lines = Vec::new();
        for i in 0..20u64 {
            lines.push(ev(
                i,
                i * 500_000,
                "sim.campaign",
                "deployment_done",
                "\"trial\":1,\"errors\":0",
            ));
        }
        // Chaos landing and the stack healing, interleaved in 1 ms.
        let t0 = 6_000_000u64;
        lines.push(ev(100, t0, "svc.fault", "wire_truncate", ""));
        lines.push(ev(
            101,
            t0 + 100,
            "svc.recover",
            "recovered",
            "\"job\":\"mc:1\",\"attempts\":2",
        ));
        lines.push(ev(102, t0 + 200, "svc.fault", "disk_write_failed", "\"digest\":\"abc\""));
        lines.push(ev(103, t0 + 300, "svc.fault", "cache_corrupt", "\"entry\":\"abc.json\""));
        lines.push(ev(
            104,
            t0 + 400,
            "svc.recover",
            "job_recovered",
            "\"id\":\"mc:2\",\"attempt\":1",
        ));
        let trace = Trace::parse(&lines.join("\n"));
        let found = scan(&trace, &AnomalyConfig::default());
        assert_eq!(found.len(), 1, "found: {found:?}");
        assert_eq!(found[0].kind, AnomalyKind::SvcRecoveryCascade);
        assert_eq!(found[0].hits, 5);
    }
}
