//! The `report` subcommand: turn a raw trace + metrics snapshot into a
//! human-readable account of what the run did and where its time went.
//!
//! Three sections:
//! 1. **Trace overview** — event counts and rates per `target.event`
//!    family, plus warnings about skipped/truncated lines.
//! 2. **Timelines** — per-trial reconstruction from the event families
//!    that carry a `trial` field (campaign deployments, fault
//!    activations, brownout truncations …) and a session outcome tally.
//! 3. **Stages** — latency percentiles (p50/p95/p99) for every stage
//!    histogram and an indented stage tree showing where campaign
//!    wall-time goes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{MetricsDoc, Trace};

/// Per-trial reconstruction: everything the trace said about one trial.
#[derive(Debug, Clone, Default)]
pub struct TrialTimeline {
    /// Trial / deployment identifier.
    pub trial: u64,
    /// First event timestamp (µs since epoch).
    pub first_t_us: u64,
    /// Last event timestamp (µs since epoch).
    pub last_t_us: u64,
    /// Event count per family within this trial.
    pub families: BTreeMap<String, usize>,
    /// Bit errors, when a `deployment_done` event reported them.
    pub errors: Option<u64>,
    /// Deployment success flag, when reported.
    pub success: Option<bool>,
    /// Deployment range in metres, when reported.
    pub range_m: Option<f64>,
    /// Whether a fault plan activated during the trial.
    pub faulted: bool,
}

/// Builds per-trial timelines from every event carrying a `trial` field.
pub fn trial_timelines(trace: &Trace) -> Vec<TrialTimeline> {
    let mut map: BTreeMap<u64, TrialTimeline> = BTreeMap::new();
    for e in &trace.events {
        let Some(trial) = e.fields.u64_field("trial") else { continue };
        let t = map.entry(trial).or_insert_with(|| TrialTimeline {
            trial,
            first_t_us: e.t_us,
            last_t_us: e.t_us,
            ..TrialTimeline::default()
        });
        t.first_t_us = t.first_t_us.min(e.t_us);
        t.last_t_us = t.last_t_us.max(e.t_us);
        *t.families.entry(e.family()).or_insert(0) += 1;
        if e.target == "fault.plan" && e.name == "fault_activated" {
            t.faulted = true;
        }
        if e.name == "deployment_done" {
            t.errors = e.fields.u64_field("errors").or(t.errors);
            t.success = e.fields.get("success").and_then(crate::json::Json::as_bool).or(t.success);
            t.range_m = e.fields.f64_field("range_m").or(t.range_m);
        }
    }
    map.into_values().collect()
}

/// Renders the full report.
pub fn render(trace: &Trace, metrics: Option<&MetricsDoc>) -> String {
    let mut out = String::with_capacity(4096);
    render_overview(&mut out, trace);
    render_timelines(&mut out, trace);
    if let Some(m) = metrics {
        render_stage_percentiles(&mut out, m);
        render_stage_tree(&mut out, m);
        render_counters(&mut out, m);
    } else {
        out.push_str("\n(no metrics snapshot given: stage sections skipped — pass metrics.json)\n");
    }
    out
}

fn render_overview(out: &mut String, trace: &Trace) {
    let span = trace.span_s();
    let _ = writeln!(
        out,
        "trace: {} events over {:.3} s ({} event families)",
        trace.events.len(),
        span,
        trace.family_counts().len()
    );
    if trace.truncated_tail {
        out.push_str("warning: final line truncated mid-record (writer killed?); skipped\n");
    }
    if !trace.skipped_lines.is_empty() {
        let _ = writeln!(
            out,
            "warning: {} malformed interior line(s) skipped: {:?}",
            trace.skipped_lines.len(),
            trace.skipped_lines
        );
    }
    out.push_str("\nevent rates:\n");
    let _ = writeln!(out, "  {:<42} {:>9} {:>12}", "family", "count", "events/s");
    for (family, count) in trace.family_counts() {
        let rate = if span > 0.0 { count as f64 / span } else { 0.0 };
        let _ = writeln!(out, "  {family:<42} {count:>9} {rate:>12.1}");
    }
}

fn render_timelines(out: &mut String, trace: &Trace) {
    let trials = trial_timelines(trace);
    if !trials.is_empty() {
        let faulted = trials.iter().filter(|t| t.faulted).count();
        let reported: Vec<&TrialTimeline> = trials.iter().filter(|t| t.success.is_some()).collect();
        let successes = reported.iter().filter(|t| t.success == Some(true)).count();
        let _ = writeln!(
            out,
            "\ntrial timelines: {} trials reconstructed ({} faulted{})",
            trials.len(),
            faulted,
            if reported.is_empty() {
                String::new()
            } else {
                format!(", {}/{} deployments succeeded", successes, reported.len())
            },
        );
        // The trials that most deserve a look: highest error counts first.
        let mut worst: Vec<&TrialTimeline> =
            trials.iter().filter(|t| t.errors.unwrap_or(0) > 0).collect();
        worst.sort_by_key(|t| std::cmp::Reverse(t.errors.unwrap_or(0)));
        if !worst.is_empty() {
            out.push_str("  worst trials by bit errors:\n");
            for t in worst.iter().take(5) {
                let _ = writeln!(
                    out,
                    "    trial {:>5}  errors={:<6} range={:<7} faulted={}  events={}",
                    t.trial,
                    t.errors.unwrap_or(0),
                    t.range_m.map_or_else(|| "-".into(), |r| format!("{r:.0}m")),
                    t.faulted,
                    t.families.values().sum::<usize>(),
                );
            }
        }
    }
    // Session outcomes (reader<->node exchanges), when present.
    let sessions = trace.family_indices("sim.session", "exchange_done");
    if !sessions.is_empty() {
        let up_ok = sessions
            .iter()
            .filter(|&&i| {
                trace.events[i].fields.get("uplink_ok").and_then(crate::json::Json::as_bool)
                    == Some(true)
            })
            .count();
        let _ = writeln!(
            out,
            "session timeline: {} exchanges, {} uplinks decoded ({:.1}%)",
            sessions.len(),
            up_ok,
            100.0 * up_ok as f64 / sessions.len() as f64
        );
    }
}

fn render_stage_percentiles(out: &mut String, m: &MetricsDoc) {
    let active: Vec<_> = m.stages.iter().filter(|h| h.count > 0).collect();
    if active.is_empty() {
        out.push_str("\n(metrics snapshot has no stage observations)\n");
        return;
    }
    out.push_str("\nstage latency percentiles:\n");
    let _ = writeln!(
        out,
        "  {:<26} {:>9} {:>11} {:>11} {:>11} {:>11}",
        "stage", "calls", "p50", "p95", "p99", "total"
    );
    for h in active {
        let us = |q: f64| {
            h.percentile(q).map_or_else(|| "-".to_string(), |v| format!("{:.1} us", v * 1e6))
        };
        let _ = writeln!(
            out,
            "  {:<26} {:>9} {:>11} {:>11} {:>11} {:>9.3} s",
            h.name,
            h.count,
            us(0.50),
            us(0.95),
            us(0.99),
            h.sum
        );
    }
}

/// The indented stage tree: stages grouped by their dotted prefix
/// (`sim`, `fec`, …), each subsystem totalled, children sorted by time.
fn render_stage_tree(out: &mut String, m: &MetricsDoc) {
    let active: Vec<_> = m.stages.iter().filter(|h| h.count > 0).collect();
    if active.is_empty() {
        return;
    }
    let total: f64 = active.iter().map(|h| h.sum).sum();
    let mut groups: BTreeMap<&str, Vec<&crate::trace::HistDoc>> = BTreeMap::new();
    for h in &active {
        let prefix = h.name.split('.').next().unwrap_or(&h.name);
        groups.entry(prefix).or_default().push(h);
    }
    let mut ordered: Vec<(&str, f64, Vec<&crate::trace::HistDoc>)> = groups
        .into_iter()
        .map(|(prefix, hs)| {
            let sum: f64 = hs.iter().map(|h| h.sum).sum();
            (prefix, sum, hs)
        })
        .collect();
    ordered.sort_by(|a, b| b.1.total_cmp(&a.1));
    out.push_str("\nstage tree (where wall-time goes):\n");
    let _ = writeln!(out, "  total {total:>44.3} s  100.0%");
    for (prefix, sum, mut hs) in ordered {
        let share = if total > 0.0 { 100.0 * sum / total } else { 0.0 };
        let _ = writeln!(out, "    {prefix:<40} {sum:>8.3} s  {share:>5.1}%");
        hs.sort_by(|a, b| b.sum.total_cmp(&a.sum));
        for h in hs {
            let leaf = h
                .name
                .strip_prefix(prefix)
                .map_or(h.name.as_str(), |s| s.strip_prefix('.').unwrap_or(s));
            let leaf_share = if total > 0.0 { 100.0 * h.sum / total } else { 0.0 };
            let _ = writeln!(
                out,
                "      {:<38} {:>8.3} s  {:>5.1}%  ({} calls)",
                leaf, h.sum, leaf_share, h.count
            );
        }
    }
}

fn render_counters(out: &mut String, m: &MetricsDoc) {
    let nonzero: Vec<_> = m.counters.iter().filter(|(_, v)| *v > 0).collect();
    if nonzero.is_empty() {
        return;
    }
    out.push_str("\ncounters:\n");
    for (name, v) in nonzero {
        let _ = writeln!(out, "  {name:<42} {v:>9}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_text() -> String {
        let mut s = String::new();
        let mut seq = 0u64;
        let push = |line: String, s: &mut String| {
            s.push_str(&line);
            s.push('\n');
        };
        for trial in 0..4u64 {
            push(format!("{{\"seq\":{seq},\"t_us\":{},\"target\":\"fault.plan\",\"event\":\"fault_activated\",\"fields\":{{\"trial\":{trial},\"events\":2}}}}", trial * 1000), &mut s);
            seq += 1;
            push(format!("{{\"seq\":{seq},\"t_us\":{},\"target\":\"sim.campaign\",\"event\":\"deployment_done\",\"fields\":{{\"trial\":{trial},\"range_m\":{},\"errors\":{},\"success\":{}}}}}", trial * 1000 + 500, 100 + trial * 50, trial * 7, trial < 3), &mut s);
            seq += 1;
        }
        s
    }

    #[test]
    fn reconstructs_trial_timelines() {
        let trace = Trace::parse(&trace_text());
        let trials = trial_timelines(&trace);
        assert_eq!(trials.len(), 4);
        assert!(trials.iter().all(|t| t.faulted));
        assert_eq!(trials[3].errors, Some(21));
        assert_eq!(trials[3].success, Some(false));
        assert_eq!(trials[2].range_m, Some(200.0));
        assert!(trials[1].last_t_us >= trials[1].first_t_us);
    }

    #[test]
    fn report_renders_all_sections() {
        let trace = Trace::parse(&trace_text());
        let metrics = MetricsDoc::parse(
            r#"{"counters":{"arq.retransmits":3},"gauges":{},"histograms":[],
                "stages":[{"name":"sim.linkbudget_trial","count":4,"sum":0.02,
                "buckets":[{"le":0.001,"count":0},{"le":0.01,"count":3},{"le":"+inf","count":1}]},
                {"name":"fec.viterbi","count":8,"sum":0.004,
                "buckets":[{"le":0.001,"count":8},{"le":0.01,"count":0},{"le":"+inf","count":0}]}]}"#,
        )
        .expect("metrics");
        let text = render(&trace, Some(&metrics));
        assert!(text.contains("4 trials reconstructed (4 faulted"), "text: {text}");
        assert!(text.contains("stage latency percentiles"), "text: {text}");
        assert!(text.contains("sim.linkbudget_trial"));
        assert!(text.contains("stage tree"), "text: {text}");
        assert!(text.contains("arq.retransmits"));
        assert!(text.contains("worst trials by bit errors"));
    }

    #[test]
    fn report_without_metrics_degrades_gracefully() {
        let trace = Trace::parse(&trace_text());
        let text = render(&trace, None);
        assert!(text.contains("stage sections skipped"));
    }
}
