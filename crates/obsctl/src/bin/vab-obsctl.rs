//! `vab-obsctl` — trace analytics, anomaly detection and perf-regression
//! gating for VAB telemetry.
//!
//! ```text
//! vab-obsctl report     <trace.jsonl> [metrics.json]
//! vab-obsctl anomalies  <trace.jsonl> [--context N]
//! vab-obsctl diff       <metrics-a.json> <metrics-b.json> [--rel-tol X] [--json]
//! vab-obsctl baseline   <BENCH_<sha>.json> [--baseline <path>] [--absolute]
//!                       [--write] [--tolerance X]
//! vab-obsctl alloc-gate <BENCH_<sha>.json> [--baseline <path>] [--write]
//! vab-obsctl profile    <metrics.json> [--top N]
//! vab-obsctl flame      <trace.jsonl> [--weight time|bytes|allocs] [--job <digest>]
//! vab-obsctl bench      history [<results-dir>] [--mode quick|full]
//! vab-obsctl tail       --addr HOST:PORT [--once] [--json]
//!                       [--interval-ms N] [--count N]
//! vab-obsctl trace      --job <digest> <trace.jsonl> [more.jsonl ...] [--set]
//! vab-obsctl slo        --spec <slo.json> (--addr HOST:PORT | --sample <file>) [--json]
//! ```
//!
//! `tail` follows a live daemon's telemetry ring (`--once` prints a
//! single on-demand sample); `trace` reconstructs one job's
//! cross-process span waterfall from any number of JSONL traces (`--set`
//! prints the canonical span set the determinism gate compares); `slo`
//! checks a live sample — or a saved one — against a `vab-slo/1` spec.
//!
//! The profiling plane: `profile` renders the per-stage allocation table
//! from a `VAB_PROFILE=1` metrics snapshot; `flame` folds the span tree
//! into collapsed stacks for any flamegraph renderer; `alloc-gate` pins
//! per-figure per-stage allocation counts *exactly* against
//! `crates/bench/alloc_baseline.json`; `bench history` lists the
//! `results/BENCH_<sha>.json` trajectory.
//!
//! Exit codes: `0` clean, `1` regression / threshold breach, `2` usage or
//! input error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vab_obsctl::allocgate::{self, AllocBaseline};
use vab_obsctl::anomaly::{self, AnomalyConfig};
use vab_obsctl::baseline::{Baseline, BenchDoc};
use vab_obsctl::diff::{self, DiffConfig};
use vab_obsctl::flame::{self, Weight};
use vab_obsctl::history;
use vab_obsctl::json::Json;
use vab_obsctl::live::{self, SloSpec};
use vab_obsctl::profile;
use vab_obsctl::report;
use vab_obsctl::trace::{MetricsDoc, Trace};
use vab_obsctl::waterfall::Waterfall;

/// Default location of the committed perf baseline, relative to the repo
/// root (where CI and `run_all` execute).
const DEFAULT_BASELINE: &str = "crates/bench/baseline.json";

/// Default location of the committed allocation baseline.
const DEFAULT_ALLOC_BASELINE: &str = "crates/bench/alloc_baseline.json";

/// Default directory `run_all` writes `BENCH_<sha>.json` snapshots into.
const DEFAULT_RESULTS_DIR: &str = "results";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         vab-obsctl report     <trace.jsonl> [metrics.json]\n  \
         vab-obsctl anomalies  <trace.jsonl> [--context N]\n  \
         vab-obsctl diff       <metrics-a.json> <metrics-b.json> [--rel-tol X] [--json]\n  \
         vab-obsctl baseline   <BENCH.json> [--baseline <path>] [--absolute] [--write] [--tolerance X]\n  \
         vab-obsctl alloc-gate <BENCH.json> [--baseline <path>] [--write]\n  \
         vab-obsctl profile    <metrics.json> [--top N]\n  \
         vab-obsctl flame      <trace.jsonl> [--weight time|bytes|allocs] [--job <digest>]\n  \
         vab-obsctl bench      history [<results-dir>] [--mode quick|full]\n  \
         vab-obsctl tail       --addr HOST:PORT [--once] [--json] [--interval-ms N] [--count N]\n  \
         vab-obsctl trace      --job <digest> <trace.jsonl> [more.jsonl ...] [--set]\n  \
         vab-obsctl slo        --spec <slo.json> (--addr HOST:PORT | --sample <file>) [--json]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Extracts `--flag <value>` from `args`, removing both tokens.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                return Err(format!("{flag} needs a value"));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
    }
}

/// Extracts a bare `--flag`, removing it.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let trace = Trace::load(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    if trace.truncated_tail {
        eprintln!("warning: {path}: final line truncated mid-record; skipped");
    }
    if !trace.skipped_lines.is_empty() {
        eprintln!(
            "warning: {path}: skipped {} malformed line(s): {:?}",
            trace.skipped_lines.len(),
            trace.skipped_lines
        );
    }
    if trace.events.is_empty() {
        return Err(format!("{path}: no parseable events"));
    }
    Ok(trace)
}

fn cmd_report(mut args: Vec<String>) -> ExitCode {
    if args.is_empty() || args.len() > 2 {
        return usage();
    }
    let trace = match load_trace(&args.remove(0)) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let metrics = match args.pop() {
        None => None,
        Some(path) => match MetricsDoc::load(Path::new(&path)) {
            Ok(m) => Some(m),
            Err(e) => return fail(&e),
        },
    };
    print!("{}", report::render(&trace, metrics.as_ref()));
    ExitCode::SUCCESS
}

fn cmd_anomalies(mut args: Vec<String>) -> ExitCode {
    let mut cfg = AnomalyConfig::default();
    match take_flag_value(&mut args, "--context") {
        Ok(Some(n)) => match n.parse() {
            Ok(n) => cfg.context = n,
            Err(_) => return fail("--context needs an integer"),
        },
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    if args.len() != 1 {
        return usage();
    }
    let trace = match load_trace(&args[0]) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let found = anomaly::scan(&trace, &cfg);
    print!("{}", anomaly::render(&trace, &found, cfg.context));
    ExitCode::SUCCESS
}

fn cmd_diff(mut args: Vec<String>) -> ExitCode {
    let mut cfg = DiffConfig::default();
    match take_flag_value(&mut args, "--rel-tol") {
        Ok(Some(x)) => match x.parse() {
            Ok(x) => cfg.rel_tol = x,
            Err(_) => return fail("--rel-tol needs a number"),
        },
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    let json = take_flag(&mut args, "--json");
    if args.len() != 2 {
        return usage();
    }
    let a = match MetricsDoc::load(Path::new(&args[0])) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let b = match MetricsDoc::load(Path::new(&args[1])) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let report = diff::diff(&a, &b, &cfg);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_baseline(mut args: Vec<String>) -> ExitCode {
    let baseline_path = match take_flag_value(&mut args, "--baseline") {
        Ok(p) => p.map(PathBuf::from).unwrap_or_else(|| PathBuf::from(DEFAULT_BASELINE)),
        Err(e) => return fail(&e),
    };
    let tolerance = match take_flag_value(&mut args, "--tolerance") {
        Ok(Some(x)) => match x.parse() {
            Ok(x) => Some(x),
            Err(_) => return fail("--tolerance needs a number"),
        },
        Ok(None) => None,
        Err(e) => return fail(&e),
    };
    let absolute = take_flag(&mut args, "--absolute");
    let write = take_flag(&mut args, "--write");
    if args.len() != 1 {
        return usage();
    }
    let doc = match BenchDoc::load(Path::new(&args[0])) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if write {
        // Refresh the committed reference from this snapshot, keeping the
        // existing file's tolerance/min_share unless overridden.
        let (tol, min_share) = match Baseline::load(&baseline_path) {
            Ok(old) => (tolerance.unwrap_or(old.tolerance), old.min_share),
            Err(_) => (tolerance.unwrap_or(0.5), 0.02),
        };
        let fresh = Baseline::from_bench(&doc, tol, min_share);
        if let Err(e) = std::fs::write(&baseline_path, fresh.to_json()) {
            return fail(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!(
            "baseline refreshed from {} run {} -> {}",
            doc.mode,
            doc.sha,
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    if base.mode != doc.mode {
        eprintln!(
            "warning: baseline was captured in {:?} mode but the snapshot is {:?}",
            base.mode, doc.mode
        );
    }
    let report = vab_obsctl::baseline::check(&doc, &base, absolute);
    print!("{}", report.render());
    if report.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_alloc_gate(mut args: Vec<String>) -> ExitCode {
    let baseline_path = match take_flag_value(&mut args, "--baseline") {
        Ok(p) => p.map(PathBuf::from).unwrap_or_else(|| PathBuf::from(DEFAULT_ALLOC_BASELINE)),
        Err(e) => return fail(&e),
    };
    let write = take_flag(&mut args, "--write");
    if args.len() != 1 {
        return usage();
    }
    let doc = match BenchDoc::load(Path::new(&args[0])) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if write {
        let fresh = match AllocBaseline::from_bench(&doc) {
            Ok(b) => b,
            Err(e) => return fail(&e),
        };
        if let Err(e) = std::fs::write(&baseline_path, fresh.to_json()) {
            return fail(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!(
            "alloc baseline refreshed from {} run {} -> {}",
            doc.mode,
            doc.sha,
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let base = match AllocBaseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    if base.mode != doc.mode {
        eprintln!(
            "warning: alloc baseline was captured in {:?} mode but the snapshot is {:?}",
            base.mode, doc.mode
        );
    }
    let report = allocgate::check(&doc, &base);
    print!("{}", report.render());
    if report.failures() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_profile(mut args: Vec<String>) -> ExitCode {
    let top: usize = match take_flag_value(&mut args, "--top") {
        Ok(Some(v)) => match v.parse() {
            Ok(v) => v,
            Err(_) => return fail("--top needs an integer"),
        },
        Ok(None) => 0,
        Err(e) => return fail(&e),
    };
    if args.len() != 1 {
        return usage();
    }
    let doc = match MetricsDoc::load(Path::new(&args[0])) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    match profile::render(&doc, top) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_flame(mut args: Vec<String>) -> ExitCode {
    let weight = match take_flag_value(&mut args, "--weight") {
        Ok(Some(w)) => match Weight::parse(&w) {
            Ok(w) => w,
            Err(e) => return fail(&e),
        },
        Ok(None) => Weight::TimeUs,
        Err(e) => return fail(&e),
    };
    let job = match take_flag_value(&mut args, "--job") {
        Ok(Some(d)) => match u64::from_str_radix(d.trim_start_matches("0x"), 16) {
            Ok(d) => Some(d),
            Err(_) => return fail("--job needs a hex job digest"),
        },
        Ok(None) => None,
        Err(e) => return fail(&e),
    };
    if args.len() != 1 {
        return usage();
    }
    let trace = match load_trace(&args[0]) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    match flame::collapse(&trace, weight, job) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_bench(mut args: Vec<String>) -> ExitCode {
    // Subcommand namespace: today only `bench history`.
    if args.first().map(String::as_str) != Some("history") {
        return usage();
    }
    args.remove(0);
    let mode = match take_flag_value(&mut args, "--mode") {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let dir = match args.len() {
        0 => PathBuf::from(DEFAULT_RESULTS_DIR),
        1 => PathBuf::from(args.remove(0)),
        _ => return usage(),
    };
    match history::scan(&dir) {
        Ok((entries, skipped)) => {
            print!("{}", history::render(&entries, &skipped, mode.as_deref()));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_tail(mut args: Vec<String>) -> ExitCode {
    let addr = match take_flag_value(&mut args, "--addr") {
        Ok(Some(a)) => a,
        Ok(None) => return fail("tail needs --addr HOST:PORT"),
        Err(e) => return fail(&e),
    };
    let once = take_flag(&mut args, "--once");
    let raw = take_flag(&mut args, "--json");
    let interval_ms: u64 = match take_flag_value(&mut args, "--interval-ms") {
        Ok(Some(v)) => match v.parse() {
            Ok(v) => v,
            Err(_) => return fail("--interval-ms needs an integer"),
        },
        Ok(None) => 500,
        Err(e) => return fail(&e),
    };
    let count: Option<u64> = match take_flag_value(&mut args, "--count") {
        Ok(Some(v)) => match v.parse() {
            Ok(v) => Some(v),
            Err(_) => return fail("--count needs an integer"),
        },
        Ok(None) => None,
        Err(e) => return fail(&e),
    };
    if !args.is_empty() {
        return usage();
    }
    if once {
        return match live::fetch_sample(&addr) {
            Ok(sample) => {
                if raw {
                    println!("{}", sample.render());
                } else {
                    println!("{}", live::render_sample(None, &sample));
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        };
    }
    // Follow mode: long-poll the ring. `since` starts at 0 so the
    // watcher first replays the retained backlog, then tracks new ticks.
    let mut since = 0u64;
    let mut prev: Option<Json> = None;
    let mut printed = 0u64;
    loop {
        let (latest, samples) = match live::fetch_watch(&addr, since) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        since = latest.max(since);
        for sample in samples {
            if raw {
                println!("{}", sample.render());
            } else {
                println!("{}", live::render_sample(prev.as_ref(), &sample));
            }
            prev = Some(sample);
            printed += 1;
            if let Some(n) = count {
                if printed >= n {
                    return ExitCode::SUCCESS;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn cmd_trace(mut args: Vec<String>) -> ExitCode {
    let digest = match take_flag_value(&mut args, "--job") {
        Ok(Some(d)) => match u64::from_str_radix(d.trim_start_matches("0x"), 16) {
            Ok(d) => d,
            Err(_) => return fail("--job needs a hex job digest"),
        },
        Ok(None) => return fail("trace needs --job <digest>"),
        Err(e) => return fail(&e),
    };
    let set_only = take_flag(&mut args, "--set");
    if args.is_empty() {
        return fail("trace needs at least one trace.jsonl");
    }
    // Label each input by file name (distinct labels are required for a
    // deterministic merge; fall back to the full path on collision).
    let mut parts: Vec<(String, Trace)> = Vec::new();
    for path in &args {
        let trace = match load_trace(path) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        let base = Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        let label = if parts.iter().any(|(l, _)| *l == base) { path.clone() } else { base };
        parts.push((label, trace));
    }
    let merged = Trace::merge(parts.iter().map(|(l, t)| (l.as_str(), t.clone())));
    let waterfall = Waterfall::from_trace(&merged, digest);
    if waterfall.spans.is_empty() {
        return fail(&format!("no spans found for trace {digest:016x}"));
    }
    if set_only {
        for line in waterfall.canonical_set() {
            println!("{line}");
        }
    } else {
        print!("{}", waterfall.render());
    }
    ExitCode::SUCCESS
}

fn cmd_slo(mut args: Vec<String>) -> ExitCode {
    let spec_path = match take_flag_value(&mut args, "--spec") {
        Ok(Some(p)) => p,
        Ok(None) => return fail("slo needs --spec <slo.json>"),
        Err(e) => return fail(&e),
    };
    let json = take_flag(&mut args, "--json");
    let addr = match take_flag_value(&mut args, "--addr") {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let sample_path = match take_flag_value(&mut args, "--sample") {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if !args.is_empty() || (addr.is_some() == sample_path.is_some()) {
        return fail("slo needs exactly one of --addr or --sample");
    }
    let spec = match SloSpec::load(Path::new(&spec_path)) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let sample = if let Some(addr) = addr {
        match live::fetch_sample(&addr) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        }
    } else {
        let path = sample_path.expect("checked above");
        match std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|t| Json::parse(t.trim()).map_err(|e| format!("{path}: {e}")))
        {
            Ok(s) => s,
            Err(e) => return fail(&e),
        }
    };
    let checks = live::check(&spec, &sample);
    let (text, breaches) =
        if json { live::render_checks_json(&checks) } else { live::render_checks(&checks) };
    print!("{text}");
    if breaches > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    match cmd.as_str() {
        "report" => cmd_report(argv),
        "anomalies" => cmd_anomalies(argv),
        "diff" => cmd_diff(argv),
        "baseline" => cmd_baseline(argv),
        "alloc-gate" => cmd_alloc_gate(argv),
        "profile" => cmd_profile(argv),
        "flame" => cmd_flame(argv),
        "bench" => cmd_bench(argv),
        "tail" => cmd_tail(argv),
        "trace" => cmd_trace(argv),
        "slo" => cmd_slo(argv),
        _ => usage(),
    }
}
