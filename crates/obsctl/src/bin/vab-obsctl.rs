//! `vab-obsctl` — trace analytics, anomaly detection and perf-regression
//! gating for VAB telemetry.
//!
//! ```text
//! vab-obsctl report    <trace.jsonl> [metrics.json]
//! vab-obsctl anomalies <trace.jsonl> [--context N]
//! vab-obsctl diff      <metrics-a.json> <metrics-b.json> [--rel-tol X]
//! vab-obsctl baseline  <BENCH_<sha>.json> [--baseline <path>] [--absolute]
//!                      [--write] [--tolerance X]
//! ```
//!
//! Exit codes: `0` clean, `1` regression / threshold breach, `2` usage or
//! input error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vab_obsctl::anomaly::{self, AnomalyConfig};
use vab_obsctl::baseline::{Baseline, BenchDoc};
use vab_obsctl::diff::{self, DiffConfig};
use vab_obsctl::report;
use vab_obsctl::trace::{MetricsDoc, Trace};

/// Default location of the committed perf baseline, relative to the repo
/// root (where CI and `run_all` execute).
const DEFAULT_BASELINE: &str = "crates/bench/baseline.json";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         vab-obsctl report    <trace.jsonl> [metrics.json]\n  \
         vab-obsctl anomalies <trace.jsonl> [--context N]\n  \
         vab-obsctl diff      <metrics-a.json> <metrics-b.json> [--rel-tol X]\n  \
         vab-obsctl baseline  <BENCH.json> [--baseline <path>] [--absolute] [--write] [--tolerance X]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Extracts `--flag <value>` from `args`, removing both tokens.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                return Err(format!("{flag} needs a value"));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
    }
}

/// Extracts a bare `--flag`, removing it.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let trace = Trace::load(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    if trace.truncated_tail {
        eprintln!("warning: {path}: final line truncated mid-record; skipped");
    }
    if !trace.skipped_lines.is_empty() {
        eprintln!(
            "warning: {path}: skipped {} malformed line(s): {:?}",
            trace.skipped_lines.len(),
            trace.skipped_lines
        );
    }
    if trace.events.is_empty() {
        return Err(format!("{path}: no parseable events"));
    }
    Ok(trace)
}

fn cmd_report(mut args: Vec<String>) -> ExitCode {
    if args.is_empty() || args.len() > 2 {
        return usage();
    }
    let trace = match load_trace(&args.remove(0)) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let metrics = match args.pop() {
        None => None,
        Some(path) => match MetricsDoc::load(Path::new(&path)) {
            Ok(m) => Some(m),
            Err(e) => return fail(&e),
        },
    };
    print!("{}", report::render(&trace, metrics.as_ref()));
    ExitCode::SUCCESS
}

fn cmd_anomalies(mut args: Vec<String>) -> ExitCode {
    let mut cfg = AnomalyConfig::default();
    match take_flag_value(&mut args, "--context") {
        Ok(Some(n)) => match n.parse() {
            Ok(n) => cfg.context = n,
            Err(_) => return fail("--context needs an integer"),
        },
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    if args.len() != 1 {
        return usage();
    }
    let trace = match load_trace(&args[0]) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let found = anomaly::scan(&trace, &cfg);
    print!("{}", anomaly::render(&trace, &found, cfg.context));
    ExitCode::SUCCESS
}

fn cmd_diff(mut args: Vec<String>) -> ExitCode {
    let mut cfg = DiffConfig::default();
    match take_flag_value(&mut args, "--rel-tol") {
        Ok(Some(x)) => match x.parse() {
            Ok(x) => cfg.rel_tol = x,
            Err(_) => return fail("--rel-tol needs a number"),
        },
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    if args.len() != 2 {
        return usage();
    }
    let a = match MetricsDoc::load(Path::new(&args[0])) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let b = match MetricsDoc::load(Path::new(&args[1])) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let report = diff::diff(&a, &b, &cfg);
    print!("{}", report.render());
    if report.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_baseline(mut args: Vec<String>) -> ExitCode {
    let baseline_path = match take_flag_value(&mut args, "--baseline") {
        Ok(p) => p.map(PathBuf::from).unwrap_or_else(|| PathBuf::from(DEFAULT_BASELINE)),
        Err(e) => return fail(&e),
    };
    let tolerance = match take_flag_value(&mut args, "--tolerance") {
        Ok(Some(x)) => match x.parse() {
            Ok(x) => Some(x),
            Err(_) => return fail("--tolerance needs a number"),
        },
        Ok(None) => None,
        Err(e) => return fail(&e),
    };
    let absolute = take_flag(&mut args, "--absolute");
    let write = take_flag(&mut args, "--write");
    if args.len() != 1 {
        return usage();
    }
    let doc = match BenchDoc::load(Path::new(&args[0])) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if write {
        // Refresh the committed reference from this snapshot, keeping the
        // existing file's tolerance/min_share unless overridden.
        let (tol, min_share) = match Baseline::load(&baseline_path) {
            Ok(old) => (tolerance.unwrap_or(old.tolerance), old.min_share),
            Err(_) => (tolerance.unwrap_or(0.5), 0.02),
        };
        let fresh = Baseline::from_bench(&doc, tol, min_share);
        if let Err(e) = std::fs::write(&baseline_path, fresh.to_json()) {
            return fail(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!(
            "baseline refreshed from {} run {} -> {}",
            doc.mode,
            doc.sha,
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    if base.mode != doc.mode {
        eprintln!(
            "warning: baseline was captured in {:?} mode but the snapshot is {:?}",
            base.mode, doc.mode
        );
    }
    let report = vab_obsctl::baseline::check(&doc, &base, absolute);
    print!("{}", report.render());
    if report.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    match cmd.as_str() {
        "report" => cmd_report(argv),
        "anomalies" => cmd_anomalies(argv),
        "diff" => cmd_diff(argv),
        "baseline" => cmd_baseline(argv),
        _ => usage(),
    }
}
