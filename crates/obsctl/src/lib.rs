//! # vab-obsctl — the analysis layer over `vab-obs` telemetry
//!
//! PR 2 (`vab-obs`) made every layer of the VAB stack emit JSONL event
//! traces, metrics snapshots and stage timings; this crate is what
//! *reads* them. It turns raw telemetry into decisions:
//!
//! * [`report`] — per-trial/session timeline reconstruction, event-rate
//!   tables, stage-latency percentiles and an indented stage tree of
//!   where campaign wall-time goes.
//! * [`anomaly`] — BER spikes, ARQ retransmit storms, brownout cascades
//!   and silence/re-inventory bursts, each with a ±N-event context
//!   window.
//! * [`diff`] — two-run metrics/stage comparison with configurable
//!   relative thresholds; regressions drive a non-zero exit.
//! * [`baseline`] — gates `BENCH_<sha>.json` perf snapshots against the
//!   committed `crates/bench/baseline.json` so a slow channel
//!   realization or Viterbi decode cannot ship silently.
//! * [`waterfall`] — reconstructs one job's cross-process span tree
//!   (client submit → wire → queue → execute → cache persist) from
//!   merged daemon+client JSONL traces, with skew-immune critical-path
//!   attribution.
//! * [`live`] — speaks the daemon's `metrics`/`watch` wire ops for
//!   `vab-obsctl tail`, and checks telemetry samples against the
//!   declarative `vab-slo/1` spec (`crates/bench/slo.json`).
//! * [`profile`] — per-stage allocation tables (self/cumulative
//!   allocs and bytes) from `VAB_PROFILE=1` metrics snapshots.
//! * [`flame`] — collapsed-stack flamegraph folding of the span tree,
//!   weighted by time or by allocations.
//! * [`allocgate`] — pins per-figure per-stage allocation counts
//!   *exactly* against `crates/bench/alloc_baseline.json`; counts are
//!   work-derived and deterministic, so any drift is a behavior change.
//! * [`history`] — lists the `results/BENCH_<sha>.json` trajectory with
//!   per-mode wall-time deltas.
//!
//! Everything stays serde-free: the [`json`] module re-exports the shared
//! `vab_util::json` parser/serializer, and the crate analyzes only what
//! the workspace itself emitted.

pub mod allocgate;
pub mod anomaly;
pub mod baseline;
pub mod diff;
pub mod flame;
pub mod history;
pub mod json;
pub mod live;
pub mod profile;
pub mod report;
pub mod trace;
pub mod waterfall;

/// The `BENCH_<sha>.json` schema this analyzer understands (written by
/// `vab_bench::perf`).
pub const PERF_SCHEMA: &str = "vab-bench-perf/1";

pub use trace::{MetricsDoc, Trace, TraceEvent};
