//! The node power budget — the ledger behind the ultra-low-power claim.

use vab_util::units::Watts;

/// Node operating modes with distinct power profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeMode {
    /// Deep sleep: RTC + leakage only.
    Sleep,
    /// Listening for / decoding a downlink command.
    Listen,
    /// Actively backscattering uplink data.
    Backscatter,
}

impl NodeMode {
    /// All modes, for table generation.
    pub fn all() -> [NodeMode; 3] {
        [NodeMode::Sleep, NodeMode::Listen, NodeMode::Backscatter]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            NodeMode::Sleep => "sleep",
            NodeMode::Listen => "listen",
            NodeMode::Backscatter => "backscatter",
        }
    }
}

/// One line item of the budget.
#[derive(Debug, Clone)]
pub struct BudgetItem {
    /// Component name.
    pub component: &'static str,
    /// Draw per mode: (sleep, listen, backscatter), watts.
    pub draw: [Watts; 3],
}

/// The per-component power ledger.
#[derive(Debug, Clone)]
pub struct PowerBudget {
    items: Vec<BudgetItem>,
}

impl PowerBudget {
    /// The VAB node budget. Values are representative of the component
    /// classes a µW backscatter node uses (numbers chosen to land the
    /// published claim: a node that runs on harvested/µW-scale power, with
    /// backscatter well under 1 mW):
    ///
    /// * timing/wake-up comparator — always on, sub-µW;
    /// * envelope detector for downlink — passive + comparator bias;
    /// * control logic (FSM in low-leakage CMOS / sleepy MCU);
    /// * the modulation switch driver;
    /// * PMU quiescent current.
    pub fn vab_node() -> Self {
        let u = Watts::from_uw;
        Self {
            items: vec![
                BudgetItem { component: "wake-up comparator", draw: [u(0.25), u(0.25), u(0.25)] },
                BudgetItem {
                    component: "downlink envelope detector",
                    draw: [u(0.0), u(1.8), u(0.0)],
                },
                BudgetItem { component: "control logic / FSM", draw: [u(0.35), u(4.5), u(6.0)] },
                BudgetItem { component: "switch driver", draw: [u(0.0), u(0.0), u(2.4)] },
                BudgetItem { component: "PMU quiescent", draw: [u(0.4), u(0.4), u(0.4)] },
            ],
        }
    }

    /// Line items.
    pub fn items(&self) -> &[BudgetItem] {
        &self.items
    }

    /// Total draw in a given mode.
    pub fn total(&self, mode: NodeMode) -> Watts {
        let idx = match mode {
            NodeMode::Sleep => 0,
            NodeMode::Listen => 1,
            NodeMode::Backscatter => 2,
        };
        Watts(self.items.iter().map(|i| i.draw[idx].value()).sum())
    }

    /// Average draw for a duty-cycled schedule: fractions of time in each
    /// mode (must sum to ≤ 1; the remainder is sleep).
    pub fn duty_cycled(&self, listen_frac: f64, backscatter_frac: f64) -> Watts {
        assert!(listen_frac >= 0.0 && backscatter_frac >= 0.0);
        assert!(listen_frac + backscatter_frac <= 1.0 + 1e-9, "fractions exceed 1");
        let sleep_frac = 1.0 - listen_frac - backscatter_frac;
        Watts(
            self.total(NodeMode::Sleep).value() * sleep_frac
                + self.total(NodeMode::Listen).value() * listen_frac
                + self.total(NodeMode::Backscatter).value() * backscatter_frac,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_microwatt_scale() {
        let b = PowerBudget::vab_node();
        assert!(b.total(NodeMode::Sleep).uw() < 2.0, "sleep {}", b.total(NodeMode::Sleep));
        assert!(b.total(NodeMode::Listen).uw() < 10.0);
        assert!(b.total(NodeMode::Backscatter).uw() < 15.0);
        // And the headline: orders of magnitude under an active acoustic
        // modem (~100 mW–10 W transmit).
        assert!(b.total(NodeMode::Backscatter).value() < 1e-3 / 50.0);
    }

    #[test]
    fn backscatter_costs_more_than_sleep() {
        let b = PowerBudget::vab_node();
        assert!(b.total(NodeMode::Backscatter).value() > b.total(NodeMode::Listen).value() * 0.5);
        assert!(b.total(NodeMode::Listen).value() > b.total(NodeMode::Sleep).value());
    }

    #[test]
    fn duty_cycling_interpolates() {
        let b = PowerBudget::vab_node();
        let always_sleep = b.duty_cycled(0.0, 0.0).value();
        assert!((always_sleep - b.total(NodeMode::Sleep).value()).abs() < 1e-15);
        let mix = b.duty_cycled(0.1, 0.05).value();
        assert!(mix > always_sleep);
        assert!(mix < b.total(NodeMode::Backscatter).value());
    }

    #[test]
    fn items_cover_all_modes() {
        let b = PowerBudget::vab_node();
        assert!(b.items().len() >= 4);
        for mode in NodeMode::all() {
            assert!(b.total(mode).value() > 0.0, "{mode:?} must draw something");
        }
    }

    #[test]
    #[should_panic(expected = "fractions exceed 1")]
    fn overfull_duty_cycle_panics() {
        PowerBudget::vab_node().duty_cycled(0.7, 0.5);
    }
}
