//! Power-management state machine.
//!
//! Cold start → active → brown-out, with hysteresis: the node wakes only
//! once the capacitor clears `v_on` and keeps running until it sags below
//! `v_off < v_on`. The caller advances time in steps, supplying harvested
//! power; the PMU draws the budget's mode power and reports whether the
//! node logic is running.

use crate::budget::{NodeMode, PowerBudget};
use crate::rectifier::Rectifier;
use crate::storage::StorageCap;
use vab_util::units::{Seconds, Volts, Watts};

/// PMU operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuState {
    /// Accumulating charge; logic unpowered.
    ColdStart,
    /// Logic running.
    Active,
}

/// The node's power subsystem: rectifier → capacitor → budgeted load.
#[derive(Debug, Clone)]
pub struct Pmu {
    rectifier: Rectifier,
    cap: StorageCap,
    budget: PowerBudget,
    state: PmuState,
    v_on: Volts,
    v_off: Volts,
    /// Cumulative time spent powered, s.
    pub uptime: f64,
    /// Cumulative time, s.
    pub elapsed: f64,
    /// Number of brown-out events.
    pub brownouts: u64,
}

impl Pmu {
    /// Standard VAB node PMU: Schottky rectifier, 100 µF cap, wake at 2.4 V,
    /// brown-out at 1.8 V.
    pub fn vab_default() -> Self {
        Self::new(
            Rectifier::schottky_doubler(),
            StorageCap::vab_default(),
            PowerBudget::vab_node(),
            Volts(2.4),
            Volts(1.8),
        )
    }

    /// Creates a PMU; `v_on` must exceed `v_off` (hysteresis).
    pub fn new(
        rectifier: Rectifier,
        cap: StorageCap,
        budget: PowerBudget,
        v_on: Volts,
        v_off: Volts,
    ) -> Self {
        assert!(v_on.value() > v_off.value(), "need wake hysteresis");
        Self {
            rectifier,
            cap,
            budget,
            state: PmuState::ColdStart,
            v_on,
            v_off,
            uptime: 0.0,
            elapsed: 0.0,
            brownouts: 0,
        }
    }

    /// Present state.
    pub fn state(&self) -> PmuState {
        self.state
    }

    /// Capacitor voltage.
    pub fn voltage(&self) -> Volts {
        self.cap.voltage()
    }

    /// True when node logic is powered.
    pub fn is_active(&self) -> bool {
        self.state == PmuState::Active
    }

    /// Advances the PMU by `dt` with acoustic power `p_acoustic` available
    /// at the rectifier input and the node requesting `mode`. Returns
    /// whether the node logic ran during this step.
    pub fn step(&mut self, p_acoustic: Watts, mode: NodeMode, dt: Seconds) -> bool {
        self.elapsed += dt.value();
        let harvested = self.rectifier.dc_output(p_acoustic);
        let load = match self.state {
            PmuState::ColdStart => Watts(0.0),
            PmuState::Active => self.budget.total(mode),
        };
        self.cap.step(harvested, load, dt);
        match self.state {
            PmuState::ColdStart => {
                if self.cap.voltage().value() >= self.v_on.value() {
                    self.state = PmuState::Active;
                    vab_obs::event!(
                        "harvest.pmu",
                        "wake",
                        v = self.cap.voltage().value(),
                        t_s = self.elapsed,
                    );
                    vab_obs::metrics::inc("pmu.wakes", 1);
                }
                false
            }
            PmuState::Active => {
                if self.cap.voltage().value() < self.v_off.value() {
                    self.state = PmuState::ColdStart;
                    self.brownouts += 1;
                    vab_obs::event!(
                        "harvest.pmu",
                        "brownout",
                        v = self.cap.voltage().value(),
                        t_s = self.elapsed,
                        total = self.brownouts,
                    );
                    vab_obs::metrics::inc("pmu.brownouts", 1);
                    false
                } else {
                    self.uptime += dt.value();
                    true
                }
            }
        }
    }

    /// Fraction of elapsed time the node was powered.
    pub fn availability(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.uptime / self.elapsed
        }
    }

    /// Predicted cold-start time from empty at constant acoustic input, or
    /// `None` if the input cannot reach `v_on`.
    pub fn cold_start_time(&self, p_acoustic: Watts) -> Option<Seconds> {
        let harvested = self.rectifier.dc_output(p_acoustic);
        self.cap.charge_time(self.v_on, harvested)
    }

    /// Sets the storage capacitor's parasitic leakage (fault injection:
    /// an aging or damaged cap drawing power continuously).
    pub fn set_leak(&mut self, leak: Watts) {
        self.cap.set_leak(leak);
    }

    /// Forces an immediate brown-out (fault injection: a supply glitch or
    /// latch-up dumping the capacitor mid-operation). The node returns to
    /// cold start with an empty cap; counts as a brown-out only if the
    /// logic was actually running.
    pub fn force_brownout(&mut self) {
        if self.state == PmuState::Active {
            self.brownouts += 1;
            vab_obs::event!(
                "harvest.pmu",
                "brownout",
                forced = true,
                t_s = self.elapsed,
                total = self.brownouts,
            );
            vab_obs::metrics::inc("pmu.brownouts", 1);
        }
        self.state = PmuState::ColdStart;
        self.cap.set_voltage(Volts(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_then_active() {
        let mut pmu = Pmu::vab_default();
        assert_eq!(pmu.state(), PmuState::ColdStart);
        // Plenty of acoustic power: 100 µW in.
        let mut ran = false;
        for _ in 0..100_000 {
            ran = pmu.step(Watts::from_uw(100.0), NodeMode::Listen, Seconds(0.01));
            if ran {
                break;
            }
        }
        assert!(ran, "node should eventually wake");
        assert_eq!(pmu.state(), PmuState::Active);
    }

    #[test]
    fn cold_start_time_matches_prediction() {
        let mut pmu = Pmu::vab_default();
        let p = Watts::from_uw(50.0);
        let predicted = pmu.cold_start_time(p).expect("chargeable").value();
        let mut t = 0.0;
        while !pmu.is_active() && t < 10_000.0 {
            pmu.step(p, NodeMode::Sleep, Seconds(0.05));
            t += 0.05;
        }
        assert!((t - predicted).abs() < 0.05 * predicted + 0.1, "sim {t} vs predicted {predicted}");
    }

    #[test]
    fn brownout_on_starvation_and_recovery() {
        let mut pmu = Pmu::vab_default();
        // Wake it with strong input.
        while !pmu.is_active() {
            pmu.step(Watts::from_uw(200.0), NodeMode::Sleep, Seconds(0.05));
        }
        // Starve it in the most expensive mode.
        while pmu.is_active() {
            pmu.step(Watts(0.0), NodeMode::Backscatter, Seconds(0.05));
        }
        assert_eq!(pmu.brownouts, 1);
        assert_eq!(pmu.state(), PmuState::ColdStart);
        // Recovery after power returns.
        for _ in 0..1_000_000 {
            if pmu.step(Watts::from_uw(200.0), NodeMode::Sleep, Seconds(0.05)) {
                break;
            }
        }
        assert!(pmu.is_active());
    }

    #[test]
    fn sustained_operation_when_harvest_exceeds_load() {
        let mut pmu = Pmu::vab_default();
        // Listen draws ~7 µW; rectified 50 µW input comfortably sustains it.
        for _ in 0..200_000 {
            pmu.step(Watts::from_uw(50.0), NodeMode::Listen, Seconds(0.01));
        }
        assert!(pmu.is_active());
        assert_eq!(pmu.brownouts, 0);
        assert!(pmu.availability() > 0.9, "availability {}", pmu.availability());
    }

    #[test]
    fn insufficient_harvest_never_wakes() {
        let mut pmu = Pmu::vab_default();
        // Below the rectifier dead zone.
        for _ in 0..10_000 {
            assert!(!pmu.step(Watts(20e-9), NodeMode::Sleep, Seconds(0.1)));
        }
        assert_eq!(pmu.state(), PmuState::ColdStart);
        assert!(pmu.cold_start_time(Watts(20e-9)).is_none());
    }

    #[test]
    fn availability_zero_before_any_time() {
        assert_eq!(Pmu::vab_default().availability(), 0.0);
    }

    #[test]
    fn forced_brownout_resets_to_cold_start() {
        let mut pmu = Pmu::vab_default();
        // A forced brown-out during cold start is not counted (nothing ran).
        pmu.force_brownout();
        assert_eq!(pmu.brownouts, 0);
        while !pmu.is_active() {
            pmu.step(Watts::from_uw(200.0), NodeMode::Sleep, Seconds(0.05));
        }
        pmu.force_brownout();
        assert_eq!(pmu.brownouts, 1);
        assert_eq!(pmu.state(), PmuState::ColdStart);
        assert_eq!(pmu.voltage().value(), 0.0, "cap dumped");
    }

    #[test]
    fn leaky_cap_raises_the_sustain_threshold() {
        // 50 µW rectifies to ~32 µW: comfortably above the ~7 µW listen
        // draw, so the nominal node sustains. A 40 µW leak injected after
        // wake-up turns the balance negative and browns the node out.
        let mut pmu = Pmu::vab_default();
        while !pmu.is_active() {
            pmu.step(Watts::from_uw(50.0), NodeMode::Sleep, Seconds(0.05));
        }
        pmu.set_leak(Watts::from_uw(40.0));
        let mut brownouts_seen = false;
        for _ in 0..400_000 {
            pmu.step(Watts::from_uw(50.0), NodeMode::Listen, Seconds(0.01));
            if pmu.brownouts > 0 {
                brownouts_seen = true;
                break;
            }
        }
        assert!(brownouts_seen, "heavy leakage must eventually brown the node out");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let _ = Pmu::new(
            Rectifier::schottky_doubler(),
            StorageCap::vab_default(),
            PowerBudget::vab_node(),
            Volts(1.0),
            Volts(2.0),
        );
    }
}
