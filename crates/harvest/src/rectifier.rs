//! Rectifier model: available AC electrical power → DC power.
//!
//! A multi-stage Schottky voltage doubler has a dead zone (the diodes need
//! forward bias before anything flows) and an efficiency that climbs with
//! input power toward an asymptote. The standard compact model:
//!
//! `P_dc = η_max · (P_in − P_th)₊ · P_in/(P_in + P_knee)`  — zero below
//! threshold, saturating efficiency above.

use vab_util::units::Watts;

/// Rectifier parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectifier {
    /// Dead-zone input power below which output is zero.
    pub threshold: Watts,
    /// Peak conversion efficiency (0..1).
    pub eta_max: f64,
    /// Input power at which efficiency reaches half of `eta_max`.
    pub knee: Watts,
}

impl Rectifier {
    /// A Schottky voltage doubler typical of acoustic harvesters:
    /// 50 nW dead zone, 65 % peak efficiency, 1 µW half-efficiency knee.
    pub fn schottky_doubler() -> Self {
        Self { threshold: Watts(50e-9), eta_max: 0.65, knee: Watts(1e-6) }
    }

    /// DC output power for a given available AC input power.
    pub fn dc_output(&self, p_in: Watts) -> Watts {
        let p = p_in.value();
        let th = self.threshold.value();
        if p <= th {
            return Watts(0.0);
        }
        let eff = self.eta_max * p / (p + self.knee.value());
        Watts((p - th) * eff)
    }

    /// Conversion efficiency at a given input (0 below threshold).
    pub fn efficiency(&self, p_in: Watts) -> f64 {
        let out = self.dc_output(p_in).value();
        let p = p_in.value();
        if p <= 0.0 {
            0.0
        } else {
            out / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    fn r() -> Rectifier {
        Rectifier::schottky_doubler()
    }

    #[test]
    fn below_threshold_outputs_nothing() {
        assert_eq!(r().dc_output(Watts(10e-9)).value(), 0.0);
        assert_eq!(r().dc_output(Watts(0.0)).value(), 0.0);
        assert_eq!(r().efficiency(Watts(10e-9)), 0.0);
    }

    #[test]
    fn output_monotonic_in_input() {
        let rect = r();
        let mut prev = -1.0;
        for uw in [0.05, 0.1, 0.5, 1.0, 5.0, 20.0, 100.0] {
            let out = rect.dc_output(Watts::from_uw(uw)).value();
            assert!(out >= prev, "not monotonic at {uw} µW");
            prev = out;
        }
    }

    #[test]
    fn efficiency_approaches_eta_max() {
        let rect = r();
        let eff = rect.efficiency(Watts::from_uw(1000.0));
        assert!(eff > 0.6 && eff <= rect.eta_max, "eff = {eff}");
    }

    #[test]
    fn efficiency_at_knee_is_about_half() {
        let rect = r();
        // At the knee, the saturation factor is ½ (threshold is negligible
        // at 1 µW).
        let eff = rect.efficiency(Watts(1e-6));
        assert!(approx_eq(eff, rect.eta_max / 2.0, 0.1), "eff = {eff}");
    }

    #[test]
    fn never_exceeds_input() {
        let rect = r();
        for uw in [0.1, 1.0, 10.0, 1e4] {
            let p = Watts::from_uw(uw);
            assert!(rect.dc_output(p).value() <= p.value());
        }
    }
}
