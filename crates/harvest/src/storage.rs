//! Storage capacitor dynamics.

use vab_util::units::{Joules, Seconds, Volts, Watts};

/// A storage capacitor integrated over time by the PMU.
#[derive(Debug, Clone, Copy)]
pub struct StorageCap {
    /// Capacitance, farads.
    pub capacitance: f64,
    /// Maximum (regulated) voltage.
    pub v_max: Volts,
    /// Present voltage.
    v: f64,
    /// Parasitic leakage drawn continuously, watts. Nominal caps model
    /// this as zero; fault injection steps it up to emulate an aging or
    /// damaged capacitor.
    leak: f64,
}

impl StorageCap {
    /// Creates a capacitor at 0 V.
    pub fn new(capacitance: f64, v_max: Volts) -> Self {
        assert!(capacitance > 0.0 && v_max.value() > 0.0);
        Self { capacitance, v_max, v: 0.0, leak: 0.0 }
    }

    /// The VAB node default: 100 µF to 3.0 V.
    pub fn vab_default() -> Self {
        Self::new(100e-6, Volts(3.0))
    }

    /// Present voltage.
    pub fn voltage(&self) -> Volts {
        Volts(self.v)
    }

    /// Stored energy `½CV²`.
    pub fn energy(&self) -> Joules {
        Joules(0.5 * self.capacitance * self.v * self.v)
    }

    /// Energy capacity at `v_max`.
    pub fn capacity(&self) -> Joules {
        Joules(0.5 * self.capacitance * self.v_max.value() * self.v_max.value())
    }

    /// Integrates net power (`harvest − load − leak`) over `dt`. Voltage
    /// clamps to `[0, v_max]` (a real PMU shunts surplus at `v_max`).
    /// Returns the actual energy delta applied.
    pub fn step(&mut self, harvest: Watts, load: Watts, dt: Seconds) -> Joules {
        let before = self.energy().value();
        let net = (harvest.value() - load.value() - self.leak) * dt.value();
        let e_new = (before + net).clamp(0.0, self.capacity().value());
        self.v = (2.0 * e_new / self.capacitance).sqrt();
        Joules(e_new - before)
    }

    /// Sets the parasitic leakage power (fault injection). Negative values
    /// clamp to zero.
    pub fn set_leak(&mut self, leak: Watts) {
        self.leak = leak.value().max(0.0);
    }

    /// Present parasitic leakage power.
    pub fn leak(&self) -> Watts {
        Watts(self.leak)
    }

    /// Directly sets the voltage (test setup / pre-charged deployments).
    pub fn set_voltage(&mut self, v: Volts) {
        self.v = v.value().clamp(0.0, self.v_max.value());
    }

    /// Time to charge from empty to `v_target` at constant net power.
    pub fn charge_time(&self, v_target: Volts, net: Watts) -> Option<Seconds> {
        if net.value() <= 0.0 {
            return None;
        }
        let e = 0.5 * self.capacitance * v_target.value().powi(2);
        Some(Seconds(e / net.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn charges_toward_vmax_and_clamps() {
        let mut c = StorageCap::new(1e-6, Volts(2.0));
        for _ in 0..1000 {
            c.step(Watts(1e-6), Watts(0.0), Seconds(0.01));
        }
        assert!(approx_eq(c.voltage().value(), 2.0, 1e-9), "v = {}", c.voltage());
        // Further charging does nothing.
        let delta = c.step(Watts(1e-6), Watts(0.0), Seconds(1.0));
        assert_eq!(delta.value(), 0.0);
    }

    #[test]
    fn discharges_under_load_and_floors_at_zero() {
        let mut c = StorageCap::vab_default();
        c.set_voltage(Volts(3.0));
        let e0 = c.energy().value();
        c.step(Watts(0.0), Watts::from_uw(100.0), Seconds(1.0));
        assert!(approx_eq(e0 - c.energy().value(), 1e-4, 1e-9));
        // Massive load floors at zero, never negative.
        c.step(Watts(0.0), Watts(1.0), Seconds(10.0));
        assert_eq!(c.voltage().value(), 0.0);
        assert_eq!(c.energy().value(), 0.0);
    }

    #[test]
    fn energy_voltage_relation() {
        let mut c = StorageCap::new(100e-6, Volts(3.0));
        c.set_voltage(Volts(2.0));
        assert!(approx_eq(c.energy().value(), 0.5 * 100e-6 * 4.0, 1e-12));
    }

    #[test]
    fn charge_time_matches_integration() {
        let mut c = StorageCap::new(10e-6, Volts(3.0));
        let net = Watts::from_uw(5.0);
        let predicted = c.charge_time(Volts(2.0), net).expect("positive net").value();
        let mut t = 0.0;
        while c.voltage().value() < 2.0 {
            c.step(net, Watts(0.0), Seconds(0.001));
            t += 0.001;
        }
        assert!(approx_eq(t, predicted, 0.01), "sim {t} vs predicted {predicted}");
    }

    #[test]
    fn no_charge_time_without_surplus() {
        let c = StorageCap::vab_default();
        assert!(c.charge_time(Volts(1.0), Watts(0.0)).is_none());
        assert!(c.charge_time(Volts(1.0), Watts(-1e-6)).is_none());
    }

    #[test]
    fn leakage_drains_the_cap() {
        let mut leaky = StorageCap::vab_default();
        let mut clean = StorageCap::vab_default();
        leaky.set_voltage(Volts(3.0));
        clean.set_voltage(Volts(3.0));
        leaky.set_leak(Watts::from_uw(5.0));
        for _ in 0..1000 {
            leaky.step(Watts(0.0), Watts(0.0), Seconds(0.01));
            clean.step(Watts(0.0), Watts(0.0), Seconds(0.01));
        }
        assert!(approx_eq(clean.voltage().value(), 3.0, 1e-9), "no self-discharge nominally");
        // 5 µW × 10 s = 50 µJ out of 450 µJ: v = sqrt(2·400e-6/100e-6) ≈ 2.83.
        assert!(approx_eq(leaky.voltage().value(), (2.0 * 400e-6 / 100e-6_f64).sqrt(), 1e-6));
        // Negative leak clamps to zero rather than becoming free energy.
        leaky.set_leak(Watts(-1.0));
        assert_eq!(leaky.leak().value(), 0.0);
    }
}
