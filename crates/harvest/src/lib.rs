//! # vab-harvest — energy harvesting and the node power budget
//!
//! Battery-free operation is half the point of backscatter. This crate
//! models the energy path of a node:
//!
//! * [`rectifier`] — acoustic→DC conversion with threshold and efficiency;
//! * [`storage`] — the storage capacitor's charge dynamics;
//! * [`pmu`] — the power-management state machine (cold start, active,
//!   brown-out) with duty cycling;
//! * [`budget`] — the per-component µW ledger behind the paper's
//!   "ultra-low-power" claim (Table: power budget).

pub mod budget;
pub mod pmu;
pub mod rectifier;
pub mod storage;

pub use budget::{NodeMode, PowerBudget};
pub use pmu::{Pmu, PmuState};
pub use rectifier::Rectifier;
pub use storage::StorageCap;
