//! A typed NDJSON client over one TCP connection.
//!
//! Thin by design: each method writes one request line, reads one
//! response line, and hands back parsed JSON (or a typed
//! [`ClientError`]). Backpressure surfaces as
//! [`ClientError::QueueFull`] so callers can implement retry loops like
//! [`Client::submit_with_retry`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use vab_util::json::Json;

use crate::job::JobSpec;
use crate::wire::Request;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon answered, but not with parseable JSON.
    BadResponse(String),
    /// The daemon rejected the submission for capacity; retry later.
    QueueFull {
        /// Daemon's suggested retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon returned `"ok":false` with this error.
    Rejected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadResponse(s) => write!(f, "bad response: {s}"),
            ClientError::QueueFull { retry_after_ms } => {
                write!(f, "queue full (retry after {retry_after_ms} ms)")
            }
            ClientError::Rejected(s) => write!(f, "rejected: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `vab-svcd` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// One request line out, one response line in.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Json, ClientError> {
        let mut line = req.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::BadResponse("connection closed".into()));
        }
        let v = Json::parse(response.trim_end())
            .map_err(|e| ClientError::BadResponse(format!("{e} in {response:?}")))?;
        if v.bool_field("ok") == Some(false) {
            if v.str_field("error") == Some("queue_full") {
                return Err(ClientError::QueueFull {
                    retry_after_ms: v.u64_field("retry_after_ms").unwrap_or(50),
                });
            }
            return Err(ClientError::Rejected(
                v.str_field("error").unwrap_or("unspecified").to_string(),
            ));
        }
        Ok(v)
    }

    /// Submits a job; the returned JSON carries `id`, `status`,
    /// `deduped`, and — for cache hits — `cached:true`.
    pub fn submit(&mut self, job: &JobSpec, deadline_ms: Option<u64>) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Submit { job: Box::new(job.clone()), deadline_ms })
    }

    /// Submits with a bounded backpressure-retry loop, sleeping the
    /// daemon's `retry_after_ms` hint between attempts.
    pub fn submit_with_retry(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        max_attempts: usize,
    ) -> Result<Json, ClientError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.submit(job, deadline_ms) {
                Err(ClientError::QueueFull { retry_after_ms }) if attempt < max_attempts => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                other => return other,
            }
        }
    }

    /// Queries a job's lifecycle state.
    pub fn status(&mut self, id: &str) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Status { id: id.to_string() })
    }

    /// Fetches a job, blocking server-side up to `wait_ms` for a
    /// terminal state.
    pub fn fetch_wait(&mut self, id: &str, wait_ms: u64) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Fetch { id: id.to_string(), wait_ms })
    }

    /// Daemon-wide counters (workers, queue depth, cache hit rate, …).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Stats)
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }
}
