//! A typed NDJSON client over one TCP connection, with the self-healing
//! machinery a chaos-prone link demands.
//!
//! Thin by design: each method writes one request line, reads one
//! response line, and hands back parsed JSON (or a typed
//! [`ClientError`]). Backpressure surfaces as
//! [`ClientError::QueueFull`] so callers can implement retry loops like
//! [`Client::submit_with_retry`].
//!
//! # Never block forever
//!
//! Every socket carries finite read/write timeouts
//! ([`ClientConfig::read_timeout`] / [`ClientConfig::write_timeout`],
//! default 30 s) — a hung daemon yields a typed
//! [`ClientError::Timeout`], never a wedged caller. Pass `None`
//! explicitly to opt back into blocking forever.
//!
//! # Self-healing
//!
//! [`Client::run_job_resilient`] drives a job to a terminal state across
//! connection drops, truncated/corrupted frames, daemon restarts, and
//! transient worker panics: it reconnects with deterministic jittered
//! exponential backoff and *resubmits* on doubt. Resubmission is
//! idempotent by construction — the job id is the content-address
//! digest, so the daemon dedups in-flight duplicates and serves
//! completed ones from cache; retrying can waste a little work but never
//! corrupt a result. Backoff jitter derives from
//! `derive_seed(backoff_seed, digest, attempt)`, so a drill's retry
//! schedule (and therefore its F20 CSV) is bit-reproducible.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use vab_obs::{SpanScope, TraceContext};
use vab_util::json::Json;
use vab_util::rng::derive_seed;

use crate::job::JobSpec;
use crate::wire::Request;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The socket timed out waiting for the daemon.
    Timeout,
    /// The daemon answered, but not with parseable JSON.
    BadResponse(String),
    /// The daemon rejected the submission for capacity; retry later.
    QueueFull {
        /// Daemon's suggested retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon returned `"ok":false` with this error.
    Rejected(String),
    /// Retries exhausted without reaching a terminal answer.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The final underlying error, rendered.
        last_error: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the daemon"),
            ClientError::BadResponse(s) => write!(f, "bad response: {s}"),
            ClientError::QueueFull { retry_after_ms } => {
                write!(f, "queue full (retry after {retry_after_ms} ms)")
            }
            ClientError::Rejected(s) => write!(f, "rejected: {s}"),
            ClientError::RetriesExhausted { attempts, last_error } => {
                write!(f, "gave up after {attempts} attempts: {last_error}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // Timeouts surface as WouldBlock (unix) or TimedOut (windows).
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
            _ => ClientError::Io(e),
        }
    }
}

/// Socket and retry policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout; `None` blocks forever (opt-in only).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; `None` blocks forever (opt-in only).
    pub write_timeout: Option<Duration>,
    /// Reconnect attempts per resilient operation before giving up.
    pub max_reconnects: u32,
    /// First backoff step, milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for deterministic backoff jitter (drills fix this).
    pub backoff_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_reconnects: 8,
            backoff_base_ms: 10,
            backoff_cap_ms: 2_000,
            backoff_seed: 0x5E1F_4EA1,
        }
    }
}

/// What a resilient operation spent getting to an answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wire round-trips attempted (including the successful one).
    pub attempts: u32,
    /// Reconnects performed.
    pub reconnects: u32,
    /// Total backoff the schedule imposed, milliseconds (deterministic
    /// under a fixed `backoff_seed`, unlike wall-clock time).
    pub backoff_ms_total: u64,
}

/// One connection to a `vab-svcd` daemon.
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7411`) with default timeouts.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit socket/retry policy.
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> Result<Client, ClientError> {
        let stream = open_stream(addr, &cfg)?;
        let writer = stream.try_clone()?;
        Ok(Client { addr: addr.to_string(), cfg, reader: BufReader::new(stream), writer })
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Points the client at a new address (a restarted daemon may come
    /// back on a different port). Takes effect on the next reconnect.
    pub fn set_addr(&mut self, addr: &str) {
        self.addr = addr.to_string();
    }

    /// Drops the current connection and dials again.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = open_stream(&self.addr, &self.cfg)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// One request line out, one response line in.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Json, ClientError> {
        let mut line = req.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::BadResponse("connection closed".into()));
        }
        let v = Json::parse(response.trim_end())
            .map_err(|e| ClientError::BadResponse(format!("{e} in {response:?}")))?;
        if v.bool_field("ok") == Some(false) {
            if v.str_field("error") == Some("queue_full") {
                return Err(ClientError::QueueFull {
                    retry_after_ms: v.u64_field("retry_after_ms").unwrap_or(50),
                });
            }
            return Err(ClientError::Rejected(
                v.str_field("error").unwrap_or("unspecified").to_string(),
            ));
        }
        Ok(v)
    }

    /// Submits a job; the returned JSON carries `id`, `status`,
    /// `deduped`, and — for cache hits — `cached:true`.
    pub fn submit(&mut self, job: &JobSpec, deadline_ms: Option<u64>) -> Result<Json, ClientError> {
        self.submit_attempt(job, deadline_ms, 0)
    }

    /// [`Client::submit`] as delivery attempt `attempt` of the same job
    /// (resilient loops pass their attempt counter so each resubmission
    /// gets a distinct, still content-derived, span identity). When
    /// observability is enabled, the submit runs under an `svc.submit`
    /// span whose context rides the wire, rooting the daemon's server-side
    /// spans in this client's trace.
    pub fn submit_attempt(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        attempt: u32,
    ) -> Result<Json, ClientError> {
        let trace = if vab_obs::enabled() {
            Some(TraceContext::root(job.digest(), "job").child("svc.submit", u64::from(attempt)))
        } else {
            None
        };
        let _span = trace.map(|ctx| SpanScope::enter_with("svc.client", "svc.submit", ctx));
        self.roundtrip(&Request::Submit { job: Box::new(job.clone()), deadline_ms, trace })
    }

    /// Submits with a bounded backpressure-retry loop, sleeping the
    /// daemon's `retry_after_ms` hint between attempts.
    pub fn submit_with_retry(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        max_attempts: usize,
    ) -> Result<Json, ClientError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.submit_attempt(job, deadline_ms, (attempt - 1) as u32) {
                Err(ClientError::QueueFull { retry_after_ms }) if attempt < max_attempts => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                other => return other,
            }
        }
    }

    /// Queries a job's lifecycle state.
    pub fn status(&mut self, id: &str) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Status { id: id.to_string() })
    }

    /// Fetches a job, blocking server-side up to `wait_ms` for a
    /// terminal state.
    pub fn fetch_wait(&mut self, id: &str, wait_ms: u64) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Fetch { id: id.to_string(), wait_ms })
    }

    /// Daemon-wide counters (workers, queue depth, cache hit rate, …).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Stats)
    }

    /// One live telemetry sample (the `metrics` op).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Metrics)
    }

    /// Telemetry samples newer than tick `since` (the `watch` op); the
    /// response's `latest` is the tick to pass next time.
    pub fn watch(&mut self, since: u64) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Watch { since })
    }

    /// Liveness probe (cheap; exempt from server-side fault injection).
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Health)
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }

    /// Drives `job` to a terminal fetch across every fault the chaos
    /// plan can throw: dropped connections, mangled frames, daemon
    /// restarts, transient panics. Reconnects with deterministic
    /// jittered exponential backoff and resubmits on doubt (safe: the
    /// digest-keyed daemon dedups and serves completed work from cache).
    ///
    /// Returns the terminal fetch response (status `done` *or* `failed`
    /// — a typed failure is an answer, not a wire fault) plus the retry
    /// accounting. Gives up with [`ClientError::RetriesExhausted`] after
    /// [`ClientConfig::max_reconnects`] reconnect cycles.
    pub fn run_job_resilient(
        &mut self,
        job: &JobSpec,
        wait_ms: u64,
    ) -> Result<(Json, RetryStats), ClientError> {
        let digest = job.digest();
        let id = format!("{digest:016x}");
        let mut stats = RetryStats::default();
        let mut submitted = false;
        let mut last_error = String::new();
        while stats.reconnects <= self.cfg.max_reconnects {
            stats.attempts += 1;
            let step = (|client: &mut Client| -> Result<Option<Json>, ClientError> {
                if !submitted {
                    let resp = client.submit_attempt(job, None, stats.attempts - 1)?;
                    // Terminal at submission (cache hit / dedup of a
                    // finished job): the submit response is the answer.
                    if resp.str_field("status") == Some("done") {
                        return Ok(Some(client.fetch_wait(&id, wait_ms)?));
                    }
                }
                let resp = client.fetch_wait(&id, wait_ms)?;
                match resp.str_field("status") {
                    Some("queued") | Some("running") => Ok(None),
                    _ => Ok(Some(resp)),
                }
            })(self);
            match step {
                Ok(Some(resp)) => {
                    if stats.attempts > 1 || stats.reconnects > 0 {
                        vab_obs::event!(
                            "svc.recover",
                            "recovered",
                            job = id.clone(),
                            attempts = stats.attempts,
                            reconnects = stats.reconnects,
                        );
                    }
                    return Ok((resp, stats));
                }
                Ok(None) => {
                    submitted = true;
                    continue; // job still in flight: keep polling
                }
                Err(ClientError::QueueFull { retry_after_ms }) => {
                    stats.backoff_ms_total += retry_after_ms;
                    vab_obs::event!("svc.retry", "backoff", job = id.clone(), ms = retry_after_ms);
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                    continue; // connection is fine; just rate-limited
                }
                Err(ClientError::Rejected(e)) if e == "budget_exhausted" => {
                    // The daemon asked us to reconnect; not a fault.
                    last_error = e;
                }
                Err(e) => {
                    last_error = e.to_string();
                    // A failed submit leaves doubt about whether the job
                    // landed — resubmit after reconnecting (idempotent).
                    submitted = false;
                }
            }
            // Wire trouble: back off (deterministic jitter) and redial.
            let backoff = self.backoff_ms(digest, stats.reconnects);
            stats.backoff_ms_total += backoff;
            stats.reconnects += 1;
            vab_obs::event!(
                "svc.retry",
                "reconnect",
                job = id.clone(),
                attempt = stats.reconnects,
                backoff_ms = backoff,
            );
            std::thread::sleep(Duration::from_millis(backoff));
            let mut redial = self.reconnect();
            while redial.is_err() && stats.reconnects <= self.cfg.max_reconnects {
                let backoff = self.backoff_ms(digest, stats.reconnects);
                stats.backoff_ms_total += backoff;
                stats.reconnects += 1;
                vab_obs::event!(
                    "svc.retry",
                    "reconnect",
                    job = id.clone(),
                    attempt = stats.reconnects,
                    backoff_ms = backoff,
                );
                std::thread::sleep(Duration::from_millis(backoff));
                redial = self.reconnect();
            }
            if redial.is_err() {
                break;
            }
            vab_obs::event!("svc.retry", "resubmit", job = id.clone());
        }
        Err(ClientError::RetriesExhausted { attempts: stats.attempts, last_error })
    }

    /// The deterministic jittered exponential backoff schedule:
    /// `min(cap, base * 2^n)` scaled into `[0.5, 1.0)` by a jitter drawn
    /// from `(backoff_seed, digest, n)` — fixed seed, fixed schedule.
    fn backoff_ms(&self, digest: u64, reconnects: u32) -> u64 {
        let ceiling =
            self.cfg.backoff_cap_ms.min(self.cfg.backoff_base_ms << reconnects.min(20)).max(1);
        let jitter_bits = derive_seed(self.cfg.backoff_seed, digest ^ u64::from(reconnects));
        let jitter = 0.5 + 0.5 * ((jitter_bits >> 11) as f64 / (1u64 << 53) as f64);
        (ceiling as f64 * jitter).ceil() as u64
    }
}

fn open_stream(addr: &str, cfg: &ClientConfig) -> Result<TcpStream, ClientError> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ClientError::BadResponse(format!("unresolvable address {addr:?}")))?;
    let stream = TcpStream::connect_timeout(&sock, cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_jittered_and_capped() {
        let client_cfg = ClientConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            backoff_seed: 42,
            ..ClientConfig::default()
        };
        // Pure function of (seed, digest, attempt): no client needed.
        let backoff = |digest: u64, n: u32| {
            let ceiling =
                client_cfg.backoff_cap_ms.min(client_cfg.backoff_base_ms << n.min(20)).max(1);
            let bits = derive_seed(client_cfg.backoff_seed, digest ^ u64::from(n));
            let jitter = 0.5 + 0.5 * ((bits >> 11) as f64 / (1u64 << 53) as f64);
            (ceiling as f64 * jitter).ceil() as u64
        };
        let a: Vec<u64> = (0..8).map(|n| backoff(0xabc, n)).collect();
        let b: Vec<u64> = (0..8).map(|n| backoff(0xabc, n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (n, &ms) in a.iter().enumerate() {
            let ceiling = 500u64.min(10 << n);
            assert!(ms >= ceiling / 2 && ms <= ceiling, "step {n}: {ms} vs ceiling {ceiling}");
        }
        assert_ne!(
            (0..8).map(|n| backoff(0xdef, n)).collect::<Vec<_>>(),
            a,
            "different digests must not thunder in herd"
        );
    }

    #[test]
    fn io_timeouts_map_to_the_typed_variant() {
        let e: ClientError = std::io::Error::from(std::io::ErrorKind::WouldBlock).into();
        assert!(matches!(e, ClientError::Timeout));
        let e: ClientError = std::io::Error::from(std::io::ErrorKind::TimedOut).into();
        assert!(matches!(e, ClientError::Timeout));
        let e: ClientError = std::io::Error::from(std::io::ErrorKind::ConnectionRefused).into();
        assert!(matches!(e, ClientError::Io(_)));
    }
}
