//! Job execution: turning a [`JobSpec`] into a deterministic payload.
//!
//! Native kinds (Monte Carlo point, campaign slice, link-budget sweep)
//! run directly against `vab-sim`. Figure jobs need the evaluation
//! registry, which lives *above* this crate in `vab-bench`, so it is
//! injected through the [`FigureRunner`] trait — the daemon binary wires
//! the real registry in; servers without one reject figure jobs with a
//! typed error instead of panicking.
//!
//! Payloads only contain thread-count-invariant statistics (exact error
//! counts, sorted per-trial BERs, medians), rendered through
//! `vab_util::json`'s canonical writer, so a cached response and a
//! freshly computed one are byte-identical no matter how many workers or
//! Monte Carlo shards produced them.

use vab_acoustics::environment::SeaState;
use vab_fault::{FaultConfig, WorkerFaultPlan};
use vab_sim::campaign::{run_campaign_slice, CampaignConfig};
use vab_sim::linkbudget::LinkBudget;
use vab_sim::montecarlo::{try_run_point_with_front_end, MonteCarloConfig};
use vab_sim::scenario::Scenario;
use vab_util::json::Json;
use vab_util::units::{Degrees, Meters};

use crate::cache::ResultCache;
use crate::job::{EnvSpec, JobSpec, SystemSpec};

/// Executes figure jobs by registry name. Implemented in `vab-bench` over
/// `all_experiments_lazy`; the returned string is the figure's CSV.
pub trait FigureRunner: Send + Sync {
    /// Runs figure `name` under the given experiment knobs.
    fn run_figure(
        &self,
        name: &str,
        trials: usize,
        bits: usize,
        seed: u64,
    ) -> Result<String, String>;
}

/// The pluggable execution engine handed to every pool worker.
#[derive(Default)]
pub struct Executor {
    figures: Option<std::sync::Arc<dyn FigureRunner>>,
    faults: Option<WorkerFaultPlan>,
    svc_faults: Option<vab_fault::SvcFaultPlan>,
    bank_dir: Option<std::path::PathBuf>,
}

impl Executor {
    /// An executor for the native job kinds only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a figure registry.
    pub fn with_figures(mut self, figures: std::sync::Arc<dyn FigureRunner>) -> Self {
        self.figures = Some(figures);
        self
    }

    /// Overrides where replay-bank jobs persist their banks (default:
    /// [`vab_replay::DEFAULT_BANK_DIR`] relative to the daemon's working
    /// directory).
    pub fn with_bank_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.bank_dir = Some(dir.into());
        self
    }

    /// Adds deterministic worker-panic injection (tests, chaos drills).
    /// A `WorkerFaultPlan` is attempt-*invariant*: an affected job
    /// panics every time (a "hard" fault).
    pub fn with_faults(mut self, plan: WorkerFaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Adds attempt-aware panic injection from a service chaos plan:
    /// [`vab_fault::SvcFaultPlan::worker_panics`] redraws per attempt,
    /// so a retried job can recover — the "transient crash" the F20
    /// drill measures recovery from.
    pub fn with_svc_faults(mut self, plan: vab_fault::SvcFaultPlan) -> Self {
        self.svc_faults = Some(plan);
        self
    }

    /// Runs one job to a payload string (first attempt). Panics when an
    /// injected worker fault plan says so — the pool's `catch_unwind`
    /// turns that into a typed
    /// [`crate::pool::JobError::WorkerPanicked`].
    pub fn execute(
        &self,
        spec: &JobSpec,
        digest: u64,
        cache: &ResultCache,
    ) -> Result<String, String> {
        self.execute_attempt(spec, digest, 0, cache)
    }

    /// Like [`Executor::execute`], but tells the fault seams which
    /// execution attempt this is so transient injections can clear on
    /// retry.
    pub fn execute_attempt(
        &self,
        spec: &JobSpec,
        digest: u64,
        attempt: u32,
        cache: &ResultCache,
    ) -> Result<String, String> {
        if let Some(plan) = &self.faults {
            if plan.panics(digest) {
                panic!("injected worker fault (job {digest:016x})");
            }
        }
        if let Some(plan) = &self.svc_faults {
            if plan.worker_panics(digest, attempt) {
                panic!("injected transient worker fault (job {digest:016x} attempt {attempt})");
            }
        }
        match spec {
            JobSpec::McPoint { .. } => execute_mc_point(spec),
            JobSpec::CampaignSlice { .. } => execute_campaign_slice(spec),
            JobSpec::LinkBudgetSweep { system, env, ranges_m } => {
                Ok(execute_sweep(*system, *env, ranges_m, cache))
            }
            JobSpec::Figure { name, trials, bits, seed } => match &self.figures {
                Some(figures) => figures.run_figure(name, *trials, *bits, *seed),
                None => Err(format!("this daemon has no figure registry (job figure({name}))")),
            },
            JobSpec::ReplayBank { .. } => {
                let dir =
                    self.bank_dir.clone().unwrap_or_else(|| vab_replay::DEFAULT_BANK_DIR.into());
                execute_replay_bank(spec, &dir)
            }
            JobSpec::NetTopology { .. } => Ok(execute_net_topology(spec)),
            JobSpec::NetScale { .. } => Ok(execute_net_scale(spec)),
        }
    }
}

/// Builds (or fetches) a TVIR bank. The bank file itself is the real
/// product — content-addressed under the store — while the job payload
/// carries only thread- and cache-invariant facts about it, so a cached
/// response and a fresh build are byte-identical.
fn execute_replay_bank(spec: &JobSpec, bank_dir: &std::path::Path) -> Result<String, String> {
    let bank_spec = spec.to_bank_spec().expect("dispatched on kind");
    let store = vab_replay::BankStore::new(bank_dir, vab_replay::ENGINE_VERSION);
    let (bank, from_disk) = store.load_or_generate(&bank_spec)?;
    vab_obs::event!(
        "svc.exec",
        "replay_bank_ready",
        bank = store.id_for(&bank_spec),
        from_disk = from_disk,
    );
    vab_obs::metrics::inc(if from_disk { "svc.bank_store_hits" } else { "svc.bank_builds" }, 1);
    Ok(Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("replay_bank".into())),
        ("bank_id", Json::Str(store.id_for(&bank_spec))),
        ("bank_schema", Json::Str(vab_replay::BANK_SCHEMA.into())),
        ("n_snapshots", Json::Num(bank.one_way.len() as f64)),
        ("one_way_taps", Json::Num(bank.one_way[0].len() as f64)),
        ("round_trip_taps", Json::Num(bank.round_trip[0].len() as f64)),
        ("direct_delay_s", Json::Num(bank.direct_delay_s)),
    ])
    .render())
}

fn scenario_for(system: SystemSpec, env: EnvSpec, range_m: f64, rotation_deg: f64) -> Scenario {
    let base = match env {
        EnvSpec::River => Scenario::river(system.to_sim(), Meters(range_m)),
        EnvSpec::Ocean { sea_state } => {
            let states = SeaState::all();
            let idx = (sea_state as usize).min(states.len() - 1);
            Scenario::ocean(system.to_sim(), Meters(range_m), states[idx])
        }
    };
    base.with_rotation(Degrees(rotation_deg))
}

fn execute_mc_point(spec: &JobSpec) -> Result<String, String> {
    let JobSpec::McPoint { system, env, range_m, rotation_deg, trials, bits, seed, engine } = spec
    else {
        unreachable!("dispatched on kind");
    };
    let scenario = scenario_for(*system, *env, *range_m, *rotation_deg);
    let cfg = MonteCarloConfig {
        trials: *trials,
        bits_per_trial: *bits,
        seed: *seed,
        engine: engine.to_sim(),
        threads: 0,
    };
    let fe = scenario.front_end();
    let r = try_run_point_with_front_end(&scenario, &fe, &cfg).map_err(|e| e.to_string())?;
    // Only thread-count-invariant statistics: exact counts and the sorted
    // per-trial BER vector. (The mean Eb/N0 aggregates across shards in
    // shard order, so its last bits can differ with worker count — it
    // stays out of the cacheable payload by design.)
    Ok(Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("mc_point".into())),
        ("trials", Json::Num(r.trials as f64)),
        ("bits", Json::Num(r.ber.bits() as f64)),
        ("errors", Json::Num(r.ber.errors() as f64)),
        ("ber", Json::Num(r.ber.ber())),
        ("per", Json::Num(r.per())),
        ("packet_errors", Json::Num(r.packet_errors as f64)),
        ("median_ber", Json::Num(r.median_ber())),
        ("trial_bers", Json::Arr(r.trial_bers.iter().map(|&b| Json::Num(b)).collect())),
    ])
    .render())
}

fn execute_campaign_slice(spec: &JobSpec) -> Result<String, String> {
    let JobSpec::CampaignSlice { system, n_trials, bits, seed, lo, hi, fault_intensity } = spec
    else {
        unreachable!("dispatched on kind");
    };
    let cfg = CampaignConfig {
        n_trials: *n_trials,
        bits_per_trial: *bits,
        system: system.to_sim(),
        seed: *seed,
        faults: fault_intensity.map(FaultConfig::with_intensity),
        ..CampaignConfig::vab_default()
    };
    let records = run_campaign_slice(&cfg, *lo, *hi);
    let rows = records
        .iter()
        .map(|r| {
            Json::obj([
                ("id", Json::Num(r.id as f64)),
                ("river", Json::Bool(r.river)),
                ("sea_state", Json::Num(r.sea_state as f64)),
                ("range_m", Json::Num(r.range_m)),
                ("rotation_deg", Json::Num(r.rotation_deg)),
                ("ebn0_db", Json::Num(r.ebn0_db)),
                ("errors", Json::Num(r.errors as f64)),
                ("bits", Json::Num(r.bits as f64)),
            ])
        })
        .collect();
    Ok(Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("campaign_slice".into())),
        ("lo", Json::Num(*lo as f64)),
        ("hi", Json::Num((*hi).min(*n_trials) as f64)),
        ("records", Json::Arr(rows)),
    ])
    .render())
}

/// Runs one spatial deployment through `vab-net`. The whole phase chain
/// (placement → channels → capture-aware inventory → steady-state TDMA)
/// is single-threaded and seed-pure, so the payload is thread-invariant
/// by construction; the report JSON is already canonical.
fn execute_net_topology(spec: &JobSpec) -> String {
    let JobSpec::NetTopology { n_nodes, x_m, y_m, standoff_m, env, n_pairs, seed } = spec else {
        unreachable!("dispatched on kind");
    };
    let net_env = match env {
        EnvSpec::River => vab_net::NetEnv::River,
        EnvSpec::Ocean { sea_state } => vab_net::NetEnv::Ocean { sea_state: *sea_state },
    };
    let net_spec = vab_net::NetworkSpec {
        n_nodes: *n_nodes,
        volume: vab_net::DeploymentVolume { x_m: *x_m, y_m: *y_m, standoff_m: *standoff_m },
        env: net_env,
        n_pairs: *n_pairs,
        seed: *seed,
    };
    let report = vab_net::run_deployment(&net_spec);
    Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("net_topology".into())),
        ("report", report.to_json()),
    ])
    .render()
}

/// Runs one ocean-scale deployment through the `vab-net` scale tier.
/// Like the paper-tier topology job, the whole chain (placement →
/// closed-form channels → grid interference → routing → inventory →
/// steady state) is single-threaded and seed-pure, so the payload is
/// thread-invariant by construction and the report JSON already
/// canonical.
fn execute_net_scale(spec: &JobSpec) -> String {
    let JobSpec::NetScale { n_nodes, policy, seed } = spec else {
        unreachable!("dispatched on kind");
    };
    let mut scale_spec = vab_net::ScaleSpec::ocean(*n_nodes, *seed);
    scale_spec.policy = *policy;
    let report = vab_net::run_scale_deployment(&scale_spec);
    Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("net_scale".into())),
        ("report", report.to_json()),
    ])
    .render()
}

/// Link-budget sweeps decompose into per-range point entries so that two
/// sweeps over overlapping range grids share work: each point is cached
/// under its own derived digest, and the sweep payload is assembled from
/// whatever mix of cached and fresh points results.
fn execute_sweep(
    system: SystemSpec,
    env: EnvSpec,
    ranges_m: &[f64],
    cache: &ResultCache,
) -> String {
    let points = ranges_m
        .iter()
        .map(|&range_m| {
            let point_spec = Json::obj([
                ("kind", Json::Str("lb_point".into())),
                ("system", system.to_json()),
                ("env", env.to_json()),
                ("range_m", Json::Num(range_m)),
            ]);
            let canonical = point_spec.render();
            let mut bytes = canonical.clone().into_bytes();
            bytes.push(0);
            bytes.extend_from_slice(crate::ENGINE_VERSION.as_bytes());
            let digest = crate::fnv1a64(&bytes);
            let payload = cache.get(digest).unwrap_or_else(|| {
                let scenario = scenario_for(system, env, range_m, 0.0);
                let lb = LinkBudget::compute(&scenario);
                let rendered = Json::obj([
                    ("range_m", Json::Num(range_m)),
                    ("ebn0_db", Json::Num(lb.ebn0_db)),
                    ("received_level_db", Json::Num(lb.received_level_db)),
                    ("tl_one_way_db", Json::Num(lb.tl_one_way_db)),
                    ("noise_psd_db", Json::Num(lb.noise_psd_db)),
                    ("bit_rate", Json::Num(lb.bit_rate)),
                ])
                .render();
                cache.put(digest, &canonical, &rendered);
                rendered
            });
            Json::parse(&payload).unwrap_or(Json::Null)
        })
        .collect();
    Json::obj([
        ("schema", Json::Str(crate::RESULT_SCHEMA.into())),
        ("kind", Json::Str("link_budget_sweep".into())),
        ("points", Json::Arr(points)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EngineSpec;

    fn mc_spec(seed: u64) -> JobSpec {
        JobSpec::McPoint {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            range_m: 50.0,
            rotation_deg: 0.0,
            trials: 4,
            bits: 64,
            seed,
            engine: EngineSpec::LinkBudget,
        }
    }

    #[test]
    fn mc_point_payload_is_deterministic_and_parseable() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(4);
        let spec = mc_spec(7);
        let a = ex.execute(&spec, spec.digest(), &cache).expect("run");
        let b = ex.execute(&spec, spec.digest(), &cache).expect("run again");
        assert_eq!(a, b, "identical specs must produce identical bytes");
        let v = Json::parse(&a).expect("payload parses");
        assert_eq!(v.str_field("kind"), Some("mc_point"));
        assert_eq!(v.u64_field("trials"), Some(4));
        assert_eq!(v.get("trial_bers").and_then(Json::as_arr).map(<[Json]>::len), Some(4));
    }

    #[test]
    fn sweep_shares_point_entries_across_overlapping_sweeps() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(32);
        let a = JobSpec::LinkBudgetSweep {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            ranges_m: vec![50.0, 100.0, 200.0],
        };
        ex.execute(&a, a.digest(), &cache).expect("sweep a");
        let misses_after_a = cache.stats().misses;
        let b = JobSpec::LinkBudgetSweep {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            ranges_m: vec![100.0, 200.0, 300.0],
        };
        ex.execute(&b, b.digest(), &cache).expect("sweep b");
        let s = cache.stats();
        assert_eq!(s.hits, 2, "100 m and 200 m must be shared");
        assert_eq!(s.misses - misses_after_a, 1, "only 300 m is new");
    }

    #[test]
    fn net_topology_payload_is_deterministic_and_parseable() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(4);
        let spec = JobSpec::NetTopology {
            n_nodes: 12,
            x_m: 60.0,
            y_m: 40.0,
            standoff_m: 10.0,
            env: EnvSpec::River,
            n_pairs: 4,
            seed: 7,
        };
        let a = ex.execute(&spec, spec.digest(), &cache).expect("run");
        let b = ex.execute(&spec, spec.digest(), &cache).expect("run again");
        assert_eq!(a, b, "identical deployments must produce identical bytes");
        let v = Json::parse(&a).expect("payload parses");
        assert_eq!(v.str_field("kind"), Some("net_topology"));
        let report = v.get("report").expect("report");
        assert_eq!(report.get("inventory").and_then(|i| i.u64_field("n_nodes")), Some(12));
        let jain = report.get("steady").and_then(|s| s.f64_field("jain_fairness")).expect("jain");
        assert!(jain > 0.0 && jain <= 1.0);
    }

    #[test]
    fn net_scale_payload_is_deterministic_and_parseable() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(4);
        let spec =
            JobSpec::NetScale { n_nodes: 256, policy: vab_net::RoutePolicy::Vbf, seed: 2023 };
        let a = ex.execute(&spec, spec.digest(), &cache).expect("run");
        let b = ex.execute(&spec, spec.digest(), &cache).expect("run again");
        assert_eq!(a, b, "identical deployments must produce identical bytes");
        let v = Json::parse(&a).expect("payload parses");
        assert_eq!(v.str_field("kind"), Some("net_scale"));
        let report = v.get("report").expect("report");
        assert_eq!(report.u64_field("n_nodes"), Some(256));
        assert_eq!(report.u64_field("n_readers"), Some(16), "⌈256¼⌉² readers");
        assert_eq!(report.str_field("policy"), Some("vbf"));
        let cov = report.get("inventory").and_then(|i| i.f64_field("coverage")).expect("coverage");
        assert!(cov > 0.5, "ocean cells must discover most nodes, got {cov}");
    }

    #[test]
    fn replay_bank_job_builds_then_serves_from_the_bank_store() {
        let dir = std::env::temp_dir().join(format!("vab_exec_banks_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ex = Executor::new().with_bank_dir(&dir);
        let cache = ResultCache::in_memory(4);
        let spec = JobSpec::ReplayBank {
            env: EnvSpec::River,
            range_m: 45.0,
            carrier_hz: 18_500.0,
            fs: 1600.0,
            n_snapshots: 2,
            span_s: 1.0,
            seed: 3,
        };
        let a = ex.execute(&spec, spec.digest(), &cache).expect("build");
        let v = Json::parse(&a).expect("payload parses");
        assert_eq!(v.str_field("kind"), Some("replay_bank"));
        let bank_id = v.str_field("bank_id").expect("bank id").to_string();
        assert!(dir.join(format!("{bank_id}.json")).is_file(), "bank file persisted");
        // A second execution (fresh executor, same dir) serves the same
        // payload from the bank store without regenerating.
        let b = Executor::new()
            .with_bank_dir(&dir)
            .execute(&spec, spec.digest(), &cache)
            .expect("serve");
        assert_eq!(a, b, "cached and fresh payloads must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn figure_without_registry_fails_typed() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(4);
        let spec = JobSpec::Figure { name: "f7_ber_vs_range".into(), trials: 5, bits: 64, seed: 1 };
        let err = ex.execute(&spec, spec.digest(), &cache).expect_err("no registry");
        assert!(err.contains("no figure registry"), "err: {err}");
    }

    #[test]
    fn campaign_slice_payload_matches_sim_slice() {
        let ex = Executor::new();
        let cache = ResultCache::in_memory(4);
        let spec = JobSpec::CampaignSlice {
            system: SystemSpec::Vab { n_pairs: 4 },
            n_trials: 20,
            bits: 256,
            seed: 1500,
            lo: 5,
            hi: 9,
            fault_intensity: None,
        };
        let payload = ex.execute(&spec, spec.digest(), &cache).expect("slice");
        let v = Json::parse(&payload).expect("parses");
        let records = v.get("records").and_then(Json::as_arr).expect("records");
        assert_eq!(records.len(), 4);
        let sim_cfg = CampaignConfig {
            n_trials: 20,
            bits_per_trial: 256,
            system: vab_sim::SystemKind::Vab { n_pairs: 4 },
            seed: 1500,
            faults: None,
            ..CampaignConfig::vab_default()
        };
        let direct = run_campaign_slice(&sim_cfg, 5, 9);
        for (row, rec) in records.iter().zip(&direct) {
            assert_eq!(row.u64_field("id"), Some(rec.id as u64));
            assert_eq!(row.u64_field("errors"), Some(rec.errors as u64));
            assert_eq!(row.f64_field("range_m").map(f64::to_bits), Some(rec.range_m.to_bits()));
        }
    }
}
