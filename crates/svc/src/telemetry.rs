//! The daemon's live telemetry plane: an in-process ring of metrics
//! samples served over the `metrics` / `watch` wire ops.
//!
//! A sampler thread (started by the server) calls [`TelemetryRing::record`]
//! on a fixed cadence; each sample freezes the pool's queue/throughput
//! counters, the cache's hit accounting, and — when observability is
//! enabled — the `svc.*` stage-latency histograms (p50/p95/p99 derived
//! with the same log-bucket interpolation `vab-obs` embeds in
//! `metrics.json`). Samples are plain JSON objects, so `vab-obsctl tail`
//! and the SLO gate consume exactly what a `nc` one-liner would see.
//!
//! Samples carry *cumulative* counters plus a monotone `tick` and a
//! milliseconds-since-start timestamp; watchers derive rates from deltas
//! between consecutive samples, which keeps the wire format trivially
//! mergeable and replayable.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use vab_util::json::Json;

use crate::pool::WorkerPool;

/// Schema tag stamped on every telemetry sample.
pub const TELEMETRY_SCHEMA: &str = "vab-svc-telemetry/1";

/// Bounded ring of telemetry samples plus the clock they share.
pub struct TelemetryRing {
    samples: Mutex<VecDeque<(u64, Json)>>,
    capacity: usize,
    epoch: Instant,
}

impl TelemetryRing {
    /// An empty ring retaining at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> TelemetryRing {
        TelemetryRing {
            samples: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Captures one sample into the ring and returns its tick.
    pub fn record(&self, pool: &WorkerPool, malformed_frames: u64) -> u64 {
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let tick = samples.back().map(|(t, _)| t + 1).unwrap_or(1);
        let sample = build_sample(tick, self.epoch, pool, malformed_frames);
        samples.push_back((tick, sample));
        while samples.len() > self.capacity {
            samples.pop_front();
        }
        tick
    }

    /// A fresh sample, captured on demand and *not* retained (the
    /// `metrics` op). Its tick is the latest recorded tick, so a watcher
    /// mixing `metrics` and `watch` never skips ring entries.
    pub fn sample_now(&self, pool: &WorkerPool, malformed_frames: u64) -> Json {
        let tick = self.latest_tick();
        build_sample(tick, self.epoch, pool, malformed_frames)
    }

    /// The newest recorded tick (0 = nothing recorded yet).
    pub fn latest_tick(&self) -> u64 {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        samples.back().map(|(t, _)| *t).unwrap_or(0)
    }

    /// All retained samples with tick > `since`, oldest first, plus the
    /// newest tick (the watcher's next `since`).
    pub fn since(&self, since: u64) -> (u64, Vec<Json>) {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let latest = samples.back().map(|(t, _)| *t).unwrap_or(0);
        let out = samples.iter().filter(|(t, _)| *t > since).map(|(_, s)| s.clone()).collect();
        (latest, out)
    }
}

/// Freezes one telemetry sample. Pool and cache counters are always
/// present; stage quantiles appear only when observability is enabled
/// (they come from the in-process `vab-obs` registry).
fn build_sample(tick: u64, epoch: Instant, pool: &WorkerPool, malformed_frames: u64) -> Json {
    let (done, failed) = pool.totals();
    let cache = pool.cache().stats();
    let mut fields = vec![
        ("schema", Json::Str(TELEMETRY_SCHEMA.into())),
        ("tick", Json::Num(tick as f64)),
        ("t_ms", Json::Num(epoch.elapsed().as_millis() as f64)),
        ("workers", Json::Num(pool.workers() as f64)),
        ("queue_depth", Json::Num(pool.queue_depth() as f64)),
        ("jobs_done", Json::Num(done as f64)),
        ("jobs_failed", Json::Num(failed as f64)),
        ("malformed_frames", Json::Num(malformed_frames as f64)),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("hit_rate", Json::Num(cache.hit_rate())),
                ("resident", Json::Num(cache.resident as f64)),
                ("quarantined", Json::Num(cache.quarantined as f64)),
                ("write_failures", Json::Num(cache.disk_write_failures as f64)),
            ]),
        ),
    ];
    let mut stages = Vec::new();
    if vab_obs::enabled() {
        let snap = vab_obs::metrics::Snapshot::capture();
        for h in &snap.stages {
            if !h.name.starts_with("svc.") || h.count == 0 {
                continue;
            }
            let mut entry = vec![
                ("count", Json::Num(h.count as f64)),
                ("mean_ms", Json::Num(1e3 * h.sum / h.count as f64)),
            ];
            if let Some((p50, p95, p99)) = h.quantile_trio() {
                entry.push(("p50_ms", Json::Num(1e3 * p50)));
                entry.push(("p95_ms", Json::Num(1e3 * p95)));
                entry.push(("p99_ms", Json::Num(1e3 * p99)));
            }
            stages.push((h.name.clone(), Json::obj(entry)));
        }
    }
    fields.push(("stages", Json::Obj(stages)));
    // Live allocator counters appear only under VAB_PROFILE=1, so
    // `vab-obsctl tail` can derive alloc rates the same way it derives
    // job rates.
    if vab_obs::alloc::profiling() {
        let totals = vab_obs::alloc::totals();
        fields.push((
            "alloc",
            Json::obj([
                ("allocs", Json::Num(totals.allocs as f64)),
                ("frees", Json::Num(totals.frees as f64)),
                ("bytes_allocated", Json::Num(totals.bytes_allocated as f64)),
                ("live_bytes", Json::Num(totals.live_bytes as f64)),
                ("peak_live_bytes", Json::Num(totals.peak_live_bytes as f64)),
            ]),
        ));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::exec::Executor;
    use crate::pool::PoolConfig;
    use std::sync::Arc;

    fn pool() -> WorkerPool {
        let cfg = PoolConfig { workers: 1, queue_cap: 4, retry_after_ms: 25 };
        WorkerPool::start(cfg, Executor::new(), Arc::new(ResultCache::in_memory(4)))
    }

    #[test]
    fn ring_records_monotone_ticks_and_bounds_retention() {
        let pool = pool();
        let ring = TelemetryRing::new(3);
        assert_eq!(ring.latest_tick(), 0);
        for want in 1..=5u64 {
            assert_eq!(ring.record(&pool, 0), want);
        }
        let (latest, samples) = ring.since(0);
        assert_eq!(latest, 5);
        let ticks: Vec<u64> = samples.iter().map(|s| s.u64_field("tick").unwrap()).collect();
        assert_eq!(ticks, vec![3, 4, 5], "capacity 3 keeps the newest three");
        let (_, newer) = ring.since(4);
        assert_eq!(newer.len(), 1);
        pool.shutdown();
    }

    #[test]
    fn samples_carry_pool_and_cache_facts() {
        let pool = pool();
        let ring = TelemetryRing::new(8);
        let sample = ring.sample_now(&pool, 2);
        assert_eq!(sample.str_field("schema"), Some(TELEMETRY_SCHEMA));
        assert_eq!(sample.u64_field("workers"), Some(1));
        assert_eq!(sample.u64_field("queue_depth"), Some(0));
        assert_eq!(sample.u64_field("malformed_frames"), Some(2));
        let cache = sample.get("cache").expect("cache object");
        assert!(cache.u64_field("hits").is_some());
        assert!(cache.f64_field("hit_rate").is_some());
        assert!(sample.get("stages").is_some());
        // The sample must survive a wire round-trip unchanged.
        let rendered = sample.render();
        assert_eq!(Json::parse(&rendered).expect("reparse").render(), rendered);
        pool.shutdown();
    }

    #[test]
    fn samples_carry_alloc_counters_only_when_profiling() {
        let pool = pool();
        let ring = TelemetryRing::new(8);
        let was_profiling = vab_obs::alloc::profiling();
        vab_obs::alloc::disable();
        let plain = ring.sample_now(&pool, 0);
        assert!(plain.get("alloc").is_none(), "no alloc section when profiling is off");
        vab_obs::alloc::enable();
        let profiled = ring.sample_now(&pool, 0);
        if !was_profiling {
            vab_obs::alloc::disable();
        }
        let alloc = profiled.get("alloc").expect("alloc object under profiling");
        assert!(alloc.u64_field("allocs").expect("allocs") > 0);
        assert!(alloc.u64_field("live_bytes").is_some());
        assert!(alloc.u64_field("peak_live_bytes").is_some());
        pool.shutdown();
    }
}
