//! The localhost TCP daemon: accept loop, per-connection NDJSON handlers,
//! graceful shutdown.
//!
//! Each connection gets its own handler thread reading request lines and
//! writing response lines; the heavy lifting stays in the shared
//! [`WorkerPool`], so a slow client never blocks the physics. `shutdown`
//! (over the wire or via [`Server::shutdown`]) flips a flag, wakes the
//! accept loop with a self-connection, drains the pool and joins every
//! thread.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vab_util::json::Json;

use crate::cache::ResultCache;
use crate::exec::Executor;
use crate::pool::{PoolConfig, WorkerPool};
use crate::wire::{self, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Pool sizing and admission policy.
    pub pool: PoolConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".into(), pool: PoolConfig::default() }
    }
}

struct Shared {
    pool: WorkerPool,
    stop: AtomicBool,
    /// Write halves of live connections, so shutdown can force EOF on
    /// handlers blocked in `read_line` waiting for a client that never
    /// hangs up.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running daemon. Dropping the handle does *not* stop it — call
/// [`Server::shutdown`] (or send `{"op":"shutdown"}`).
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, starts the pool and the accept loop, and returns
    /// immediately. The bound address (with the real port) is
    /// [`Server::addr`].
    pub fn start(
        cfg: ServerConfig,
        executor: Executor,
        cache: Arc<ResultCache>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = WorkerPool::start(cfg.pool, executor, cache);
        let shared =
            Arc::new(Shared { pool, stop: AtomicBool::new(false), conns: Mutex::new(Vec::new()) });
        vab_obs::event!("svc.server", "listening", addr = addr.to_string());
        let accept_shared = shared.clone();
        let accept_handle = std::thread::Builder::new()
            .name("vab-svc-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server { addr, shared, accept_handle: Some(accept_handle) })
    }

    /// The bound address (real port even when configured with `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The worker pool (tests inspect totals and cache stats through it).
    pub fn pool(&self) -> &WorkerPool {
        &self.shared.pool
    }

    /// True once a shutdown has been requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Stops accepting connections, drains the pool, joins the accept
    /// loop. Idempotent.
    pub fn shutdown(&mut self) {
        request_stop(&self.shared, self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        vab_obs::event!("svc.server", "stopped", addr = self.addr.to_string());
    }
}

/// Flips the stop flag and pokes the accept loop awake with a throwaway
/// self-connection (the portable way to interrupt a blocking `accept`).
fn request_stop(shared: &Shared, addr: std::net::SocketAddr) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return;
    }
    if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        drop(stream);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
        }
        let conn_shared = shared.clone();
        let local = listener.local_addr().ok();
        if let Ok(handle) = std::thread::Builder::new()
            .name("vab-svc-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared, local))
        {
            conn_handles.push(handle);
        }
        // Reap finished handlers so a long-lived daemon doesn't
        // accumulate join handles.
        conn_handles.retain(|h| !h.is_finished());
    }
    // Force EOF on every live connection so handlers blocked in
    // `read_line` unblock even when their client never hangs up.
    for conn in shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, local: Option<std::net::SocketAddr>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, shared);
                if is_shutdown {
                    let _ = write_line(&mut writer, &resp);
                    if let Some(addr) = local {
                        request_stop(shared, addr);
                    }
                    return;
                }
                resp
            }
            Err(e) => wire::error_response(&e),
        };
        if write_line(&mut writer, &response).is_err() {
            break;
        }
    }
}

fn write_line(writer: &mut impl Write, response: &Json) -> std::io::Result<()> {
    let mut line = response.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn dispatch(req: Request, shared: &Shared) -> Json {
    match req {
        Request::Submit { job, deadline_ms } => match shared.pool.submit(*job, deadline_ms) {
            Ok(outcome) => wire::submit_response(&outcome.id, &outcome.status, outcome.deduped),
            Err(e) => wire::submit_error_response(&e),
        },
        Request::Status { id } => match wire::parse_id(&id) {
            Ok(digest) => match shared.pool.status(digest) {
                Some(status) => wire::status_response(&id, &status),
                None => wire::error_response("unknown job"),
            },
            Err(e) => wire::error_response(&e),
        },
        Request::Fetch { id, wait_ms } => match wire::parse_id(&id) {
            Ok(digest) => {
                let fetched = if wait_ms > 0 {
                    shared.pool.wait(digest, Duration::from_millis(wait_ms))
                } else {
                    shared.pool.fetch(digest)
                };
                match fetched {
                    Some((status, payload)) => {
                        wire::fetch_response(&id, &status, payload.as_deref())
                    }
                    None => wire::error_response("unknown job"),
                }
            }
            Err(e) => wire::error_response(&e),
        },
        Request::Stats => {
            let (done, failed) = shared.pool.totals();
            let cache = shared.pool.cache().stats();
            Json::obj([
                ("ok", Json::Bool(true)),
                ("workers", Json::Num(shared.pool.workers() as f64)),
                ("queue_depth", Json::Num(shared.pool.queue_depth() as f64)),
                ("jobs_done", Json::Num(done as f64)),
                ("jobs_failed", Json::Num(failed as f64)),
                ("cache_hits", Json::Num(cache.hits as f64)),
                ("cache_misses", Json::Num(cache.misses as f64)),
                ("cache_hit_rate", Json::Num(cache.hit_rate())),
                ("cache_resident", Json::Num(cache.resident as f64)),
            ])
        }
        Request::Shutdown => {
            vab_obs::event!("svc.server", "shutdown_requested");
            Json::obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))])
        }
    }
}
