//! The localhost TCP daemon: accept loop, per-connection NDJSON handlers,
//! graceful shutdown.
//!
//! Each connection gets its own handler thread reading request lines and
//! writing response lines; the heavy lifting stays in the shared
//! [`WorkerPool`], so a slow client never blocks the physics. `shutdown`
//! (over the wire or via [`Server::shutdown`]) flips a flag, wakes the
//! accept loop with a self-connection, drains the pool (every admitted
//! job completes and persists before exit) and joins every thread.
//!
//! # Hostile-input posture
//!
//! A daemon aimed at "millions of users" (ROADMAP item 3) cannot trust
//! its peers: frames are read through a hard byte cap
//! ([`ServerConfig::max_line_bytes`]) so an attacker streaming an
//! endless line exhausts nothing; malformed frames get a typed error
//! reply and the connection *stays up*; an optional per-connection
//! request budget ([`ServerConfig::request_budget`]) bounds what any one
//! socket can ask for before being asked to reconnect.
//!
//! # Chaos seams
//!
//! When a `vab_fault::SvcFaultPlan` is armed ([`ServerConfig::faults`]),
//! the response path consults it per `(request key, delivery attempt)`
//! and may drop the connection before writing, truncate the frame
//! mid-byte, or flip a byte in flight. Keys are content-derived (job
//! digest, id) — never wall-clock or socket identity — so a drill is
//! bit-reproducible at any worker count. `health` and `shutdown` are
//! exempt: probes stay honest and drills can always terminate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vab_fault::{SvcFaultPlan, WireFault};
use vab_obs::{SpanScope, TraceContext};
use vab_util::hash::fnv1a64;
use vab_util::json::Json;

use crate::cache::ResultCache;
use crate::exec::Executor;
use crate::pool::{PoolConfig, WorkerPool};
use crate::telemetry::TelemetryRing;
use crate::wire::{self, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Pool sizing and admission policy.
    pub pool: PoolConfig,
    /// Hard cap on one request frame; longer lines get a typed
    /// `frame_too_large` error and the connection closes (the rest of
    /// the oversized line cannot be resynchronized).
    pub max_line_bytes: usize,
    /// Requests served per connection before the daemon replies with a
    /// typed `budget_exhausted` error and closes (`0` = unlimited).
    /// Clients reconnect and continue; no state is lost.
    pub request_budget: u64,
    /// Deterministic wire-fault injection for chaos drills.
    pub faults: Option<SvcFaultPlan>,
    /// Cadence of the background telemetry sampler, milliseconds
    /// (`0` disables it; the `metrics` op still samples on demand).
    pub telemetry_interval_ms: u64,
    /// Telemetry samples retained in the ring (at the default 500 ms
    /// cadence, 240 samples ≈ the last two minutes).
    pub telemetry_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
            max_line_bytes: 1 << 20,
            request_budget: 0,
            faults: None,
            telemetry_interval_ms: 500,
            telemetry_capacity: 240,
        }
    }
}

/// Wire faults the server has injected, by class (for drill accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultTotals {
    /// Connections dropped before the response was written.
    pub drops: u64,
    /// Frames cut short mid-byte.
    pub truncates: u64,
    /// Frames delivered with a flipped byte.
    pub corrupts: u64,
}

struct Shared {
    pool: WorkerPool,
    stop: AtomicBool,
    /// Write halves of live connections, so shutdown can force EOF on
    /// handlers blocked in `read_until` waiting for a client that never
    /// hangs up.
    conns: Mutex<Vec<TcpStream>>,
    max_line_bytes: usize,
    request_budget: u64,
    faults: Option<SvcFaultPlan>,
    /// Delivery-attempt counters per *job-derived* request key, so a
    /// retried request redraws its fate (chaos drills recover instead of
    /// livelocking). Control ops never enter this map — they draw from
    /// their own per-request identity stream (`control_requests`).
    attempts: Mutex<std::collections::HashMap<u64, u32>>,
    /// Monotone identity source for control-plane requests (`stats`,
    /// `metrics`, `watch`): each request gets its own fault draw instead
    /// of all sharing one hashed op-name key, and the stream can never
    /// collide with the job-digest namespace above.
    control_requests: AtomicU64,
    wire_drops: AtomicU64,
    wire_truncates: AtomicU64,
    wire_corrupts: AtomicU64,
    malformed: AtomicU64,
    telemetry: TelemetryRing,
}

/// A running daemon. Dropping the handle does *not* stop it — call
/// [`Server::shutdown`] (or send `{"op":"shutdown"}`).
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    sampler_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, starts the pool and the accept loop, and returns
    /// immediately. The bound address (with the real port) is
    /// [`Server::addr`].
    pub fn start(
        cfg: ServerConfig,
        executor: Executor,
        cache: Arc<ResultCache>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = WorkerPool::start(cfg.pool, executor, cache);
        let shared = Arc::new(Shared {
            pool,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            max_line_bytes: cfg.max_line_bytes.max(64),
            request_budget: cfg.request_budget,
            faults: cfg.faults.filter(|p| !p.config().is_off()),
            attempts: Mutex::new(std::collections::HashMap::new()),
            control_requests: AtomicU64::new(0),
            wire_drops: AtomicU64::new(0),
            wire_truncates: AtomicU64::new(0),
            wire_corrupts: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            telemetry: TelemetryRing::new(cfg.telemetry_capacity),
        });
        vab_obs::event!("svc.server", "listening", addr = addr.to_string());
        let accept_shared = shared.clone();
        let accept_handle = std::thread::Builder::new()
            .name("vab-svc-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        let sampler_handle = if cfg.telemetry_interval_ms > 0 {
            let sampler_shared = shared.clone();
            let interval = Duration::from_millis(cfg.telemetry_interval_ms);
            Some(
                std::thread::Builder::new()
                    .name("vab-svc-telemetry".into())
                    .spawn(move || sampler_loop(&sampler_shared, interval))?,
            )
        } else {
            None
        };
        Ok(Server { addr, shared, accept_handle: Some(accept_handle), sampler_handle })
    }

    /// The bound address (real port even when configured with `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The worker pool (tests inspect totals and cache stats through it).
    pub fn pool(&self) -> &WorkerPool {
        &self.shared.pool
    }

    /// True once a shutdown has been requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Wire faults injected so far, by class (drill accounting).
    pub fn wire_fault_totals(&self) -> WireFaultTotals {
        WireFaultTotals {
            drops: self.shared.wire_drops.load(Ordering::Relaxed),
            truncates: self.shared.wire_truncates.load(Ordering::Relaxed),
            corrupts: self.shared.wire_corrupts.load(Ordering::Relaxed),
        }
    }

    /// Malformed frames answered with a typed error so far.
    pub fn malformed_frames(&self) -> u64 {
        self.shared.malformed.load(Ordering::Relaxed)
    }

    /// The live telemetry ring (tests and embedders sample it directly;
    /// wire peers use the `metrics` / `watch` ops).
    pub fn telemetry(&self) -> &TelemetryRing {
        &self.shared.telemetry
    }

    /// Stops accepting connections, drains the pool (admitted jobs run
    /// to completion and persist their results), joins the accept loop.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        let in_flight = self.shared.pool.queue_depth();
        if in_flight > 0 {
            vab_obs::event!("svc.server", "draining", in_flight = in_flight);
        }
        request_stop(&self.shared, self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sampler_handle.take() {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        // One final sample so the ring's last entry reflects the drained
        // pool (useful to post-mortem a run from the `watch` backlog).
        self.shared
            .telemetry
            .record(&self.shared.pool, self.shared.malformed.load(Ordering::Relaxed));
        vab_obs::event!("svc.server", "stopped", addr = self.addr.to_string());
    }
}

/// Flips the stop flag and pokes the accept loop awake with a throwaway
/// self-connection (the portable way to interrupt a blocking `accept`).
fn request_stop(shared: &Shared, addr: std::net::SocketAddr) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return;
    }
    if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        drop(stream);
    }
}

/// Background telemetry sampler: one ring entry per interval until
/// shutdown. Sleeps in short steps so a long cadence never delays exit.
fn sampler_loop(shared: &Arc<Shared>, interval: Duration) {
    while !shared.stop.load(Ordering::Acquire) {
        shared.telemetry.record(&shared.pool, shared.malformed.load(Ordering::Relaxed));
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.stop.load(Ordering::Acquire) {
            let step = Duration::from_millis(50).min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
        }
        let conn_shared = shared.clone();
        let local = listener.local_addr().ok();
        if let Ok(handle) = std::thread::Builder::new()
            .name("vab-svc-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared, local))
        {
            conn_handles.push(handle);
        }
        // Reap finished handlers so a long-lived daemon doesn't
        // accumulate join handles.
        conn_handles.retain(|h| !h.is_finished());
    }
    // Force EOF on every live connection so handlers blocked in
    // `read_until` unblock even when their client never hangs up.
    for conn in shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

/// Outcome of reading one frame through the byte cap.
enum Frame {
    Line(String),
    /// Client closed (or shutdown forced EOF).
    Eof,
    /// The line exceeded the cap; the connection cannot resync.
    TooLarge,
    /// The bytes were not UTF-8.
    BadEncoding,
}

/// Reads one `\n`-terminated frame, never buffering more than
/// `max + 1` bytes of a single line.
fn read_frame(reader: &mut BufReader<TcpStream>, max: usize) -> Frame {
    let mut buf = Vec::new();
    let mut limited = reader.take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Frame::Eof,
        Ok(_) => {
            if buf.len() > max {
                return Frame::TooLarge;
            }
            match String::from_utf8(buf) {
                Ok(s) => Frame::Line(s),
                Err(_) => Frame::BadEncoding,
            }
        }
        Err(_) => Frame::Eof,
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, local: Option<std::net::SocketAddr>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    serve_frames(&mut reader, &mut writer, shared, local);
    // The accept loop holds another clone of this stream (its shutdown
    // lever), so dropping our halves does not send FIN — shut the socket
    // down explicitly or a faulted/finished connection would leave the
    // peer blocked until its read timeout.
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
}

fn serve_frames(
    reader: &mut BufReader<TcpStream>,
    mut writer: &mut std::io::BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    local: Option<std::net::SocketAddr>,
) {
    let mut served: u64 = 0;
    loop {
        let line = match read_frame(reader, shared.max_line_bytes) {
            Frame::Line(line) => line,
            Frame::Eof => return,
            Frame::TooLarge => {
                shared.note_malformed("frame_too_large");
                let _ = write_line(&mut writer, &wire::error_response("frame_too_large"));
                return; // cannot resync inside the oversized line
            }
            Frame::BadEncoding => {
                shared.note_malformed("bad_encoding");
                if write_line(&mut writer, &wire::error_response("bad encoding: not UTF-8"))
                    .is_err()
                {
                    return;
                }
                continue; // frame boundary intact: connection survives
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if shared.request_budget > 0 && served >= shared.request_budget {
            let resp = Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str("budget_exhausted".into())),
                ("served", Json::Num(served as f64)),
            ]);
            let _ = write_line(&mut writer, &resp);
            return;
        }
        served += 1;
        match Request::parse(&line) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let fault = shared.draw_wire_fault(&req);
                let resp = dispatch(req, shared);
                if is_shutdown {
                    let _ = write_line(&mut writer, &resp);
                    if let Some(addr) = local {
                        request_stop(shared, addr);
                    }
                    return;
                }
                match deliver(&mut writer, &resp, fault, shared) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return,
                }
            }
            Err(e) => {
                // Malformed frame: typed error, connection stays up.
                shared.note_malformed("bad_request");
                if write_line(&mut writer, &wire::error_response(&e)).is_err() {
                    return;
                }
            }
        }
    }
}

impl Shared {
    fn note_malformed(&self, kind: &'static str) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.malformed_frames", 1);
        vab_obs::event!("svc.server", "malformed_frame", kind = kind);
    }

    /// Draws this delivery's wire fault from the plan. Job-addressed
    /// requests key by request *content* (digest / id) so the drill
    /// replays identically whatever the thread interleaving; control ops
    /// (`stats`, `metrics`, `watch`) each get a fresh per-request
    /// identity from a dedicated counter stream — they used to share one
    /// hashed op-name key, which made every control request the same
    /// "delivery" and let retries livelock on an always-faulting draw.
    /// `health`/`shutdown` are exempt.
    fn draw_wire_fault(&self, req: &Request) -> WireFault {
        let Some(plan) = &self.faults else { return WireFault::None };
        let key = match req {
            Request::Submit { job, .. } => job.digest(),
            Request::Status { id } => wire::parse_id(id).unwrap_or_else(|_| fnv1a64(id.as_bytes())),
            Request::Fetch { id, .. } => {
                wire::parse_id(id).unwrap_or_else(|_| fnv1a64(id.as_bytes())) ^ 0x5747_C4ED
            }
            Request::Stats | Request::Metrics | Request::Watch { .. } => {
                // Per-request identity: mix the counter through a 64-bit
                // odd multiplier and fold in a fixed control-plane tag.
                // This stream never touches `attempts` (attempt is 0 by
                // construction — no two control requests share a key), so
                // it cannot collide with the job-digest namespace.
                let n = self.control_requests.fetch_add(1, Ordering::Relaxed);
                let key = fnv1a64(b"ctl") ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                return plan.wire_fault(key, 0);
            }
            Request::Health | Request::Shutdown => return WireFault::None,
        };
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = attempts.entry(key).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        plan.wire_fault(key, attempt)
    }
}

/// Writes `resp`, applying `fault`. Returns `Ok(true)` when the
/// connection should stay up, `Ok(false)` when the fault closed it.
fn deliver(
    writer: &mut impl Write,
    resp: &Json,
    fault: WireFault,
    shared: &Shared,
) -> std::io::Result<bool> {
    match fault {
        WireFault::None => {
            write_line(writer, resp)?;
            Ok(true)
        }
        WireFault::DropBeforeWrite => {
            shared.wire_drops.fetch_add(1, Ordering::Relaxed);
            vab_obs::event!("svc.fault", "wire_drop");
            Ok(false)
        }
        WireFault::Truncate { keep_frac } => {
            shared.wire_truncates.fetch_add(1, Ordering::Relaxed);
            vab_obs::event!("svc.fault", "wire_truncate");
            let line = resp.render();
            let keep = ((line.len() as f64 * keep_frac) as usize).min(line.len().saturating_sub(1));
            writer.write_all(&line.as_bytes()[..keep])?;
            writer.flush()?;
            Ok(false) // the frame can never complete: close
        }
        WireFault::CorruptByte { pos_frac } => {
            shared.wire_corrupts.fetch_add(1, Ordering::Relaxed);
            vab_obs::event!("svc.fault", "wire_corrupt");
            let mut bytes = resp.render().into_bytes();
            if !bytes.is_empty() {
                let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
                // Setting the high bit on an ASCII byte yields invalid
                // UTF-8 (never a newline), so the corruption is always
                // *detectable* at the client and framing survives — the
                // deterministic analogue of a checksum-failing frame.
                bytes[pos] |= 0x80;
            }
            bytes.push(b'\n');
            writer.write_all(&bytes)?;
            writer.flush()?;
            Ok(true)
        }
    }
}

fn write_line(writer: &mut impl Write, response: &Json) -> std::io::Result<()> {
    let mut line = response.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn dispatch(req: Request, shared: &Shared) -> Json {
    match req {
        Request::Submit { job, deadline_ms, trace } => {
            // The handle span covers admission (cache lookup, dedupe,
            // enqueue); execution continues under the same trace on a
            // worker thread. Without a wire context the root is derived
            // from the digest, so a traced daemon facing an untraced
            // client still builds a complete (server-side) tree.
            let parent = if vab_obs::enabled() {
                Some(trace.unwrap_or_else(|| TraceContext::root(job.digest(), "job")))
            } else {
                None
            };
            let handle = parent.map(|p| SpanScope::enter("svc.server", "svc.handle", &p));
            let pool_trace = handle.as_ref().map(|h| h.ctx());
            match shared.pool.submit_traced(*job, deadline_ms, pool_trace) {
                Ok(outcome) => wire::submit_response(&outcome.id, &outcome.status, outcome.deduped),
                Err(e) => wire::submit_error_response(&e),
            }
        }
        Request::Status { id } => match wire::parse_id(&id) {
            Ok(digest) => match shared.pool.status(digest) {
                Some(status) => wire::status_response(&id, &status),
                None => wire::error_response("unknown job"),
            },
            Err(e) => wire::error_response(&e),
        },
        Request::Fetch { id, wait_ms } => match wire::parse_id(&id) {
            Ok(digest) => {
                let fetched = if wait_ms > 0 {
                    shared.pool.wait(digest, Duration::from_millis(wait_ms))
                } else {
                    shared.pool.fetch(digest)
                };
                match fetched {
                    Some((status, payload)) => {
                        wire::fetch_response(&id, &status, payload.as_deref())
                    }
                    None => wire::error_response("unknown job"),
                }
            }
            Err(e) => wire::error_response(&e),
        },
        Request::Stats => {
            let (done, failed) = shared.pool.totals();
            let cache = shared.pool.cache().stats();
            Json::obj([
                ("ok", Json::Bool(true)),
                ("workers", Json::Num(shared.pool.workers() as f64)),
                ("queue_depth", Json::Num(shared.pool.queue_depth() as f64)),
                ("jobs_done", Json::Num(done as f64)),
                ("jobs_failed", Json::Num(failed as f64)),
                ("cache_hits", Json::Num(cache.hits as f64)),
                ("cache_misses", Json::Num(cache.misses as f64)),
                ("cache_hit_rate", Json::Num(cache.hit_rate())),
                ("cache_resident", Json::Num(cache.resident as f64)),
                ("cache_quarantined", Json::Num(cache.quarantined as f64)),
                ("cache_write_failures", Json::Num(cache.disk_write_failures as f64)),
                ("malformed_frames", Json::Num(shared.malformed.load(Ordering::Relaxed) as f64)),
            ])
        }
        Request::Metrics => {
            let sample =
                shared.telemetry.sample_now(&shared.pool, shared.malformed.load(Ordering::Relaxed));
            wire::metrics_response(sample)
        }
        Request::Watch { since } => {
            let (latest, samples) = shared.telemetry.since(since);
            wire::watch_response(since, latest, samples)
        }
        Request::Health => wire::health_response(
            shared.pool.workers(),
            shared.pool.queue_depth(),
            shared.stop.load(Ordering::Acquire),
        ),
        Request::Shutdown => {
            vab_obs::event!("svc.server", "shutdown_requested");
            Json::obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))])
        }
    }
}
