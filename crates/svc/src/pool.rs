//! The std-thread worker pool: bounded queue, backpressure, deadlines,
//! and per-job panic isolation.
//!
//! Admission control is the queue bound: a submission that finds the
//! queue full is rejected with a retry-after hint instead of buffered
//! without limit, so a flood of requests degrades into fast rejections
//! rather than unbounded memory growth. Identical in-flight jobs are
//! deduplicated by content digest (two clients asking for the same
//! physics share one execution), and the cache is consulted at admission
//! so a warm job never occupies a queue slot.
//!
//! Worker panics — real bugs or `vab_fault::WorkerFaultPlan` injections —
//! are caught per job with `catch_unwind` and surface as typed
//! [`JobError::WorkerPanicked`] failures (the same contract as
//! `MonteCarloError::WorkerPanicked` one layer down); the worker thread
//! itself survives and keeps draining the queue.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vab_obs::{span_begin, span_end, SpanScope, TraceContext};

use crate::cache::ResultCache;
use crate::exec::Executor;
use crate::job::JobSpec;

/// Pool sizing and admission policy.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (0 = `vab_util::threads()`).
    pub workers: usize,
    /// Maximum queued (admitted, not yet running) jobs.
    pub queue_cap: usize,
    /// Retry hint returned with queue-full rejections, milliseconds.
    pub retry_after_ms: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 0, queue_cap: 64, retry_after_ms: 50 }
    }
}

/// Typed job failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The executing worker panicked; the pool caught it and kept going.
    WorkerPanicked {
        /// Best-effort panic payload.
        message: String,
    },
    /// The job's deadline elapsed before a worker picked it up.
    DeadlineExpired {
        /// How long the job had waited when the deadline was enforced.
        waited_ms: u64,
    },
    /// The executor returned a typed failure (unknown figure, missing
    /// registry, Monte Carlo worker error, …).
    ExecFailed {
        /// The executor's message.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
            JobError::DeadlineExpired { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms in queue")
            }
            JobError::ExecFailed { message } => write!(f, "execution failed: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Lifecycle of an admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the payload is available.
    Done {
        /// Served from the cache (admission-time or disk) rather than
        /// computed by a worker.
        cached: bool,
        /// Execution wall time, microseconds (0 for cache hits).
        wall_us: u64,
    },
    /// Failed with a typed error.
    Failed {
        /// Why.
        error: JobError,
    },
}

impl JobStatus {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }

    /// True once the job can be fetched (successfully or not).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and retry.
    QueueFull {
        /// Suggested retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// The pool is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after_ms } => {
                write!(f, "queue full; retry after {retry_after_ms} ms")
            }
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a successful submission tells the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job's content-address id (hex digest).
    pub id: String,
    /// Raw digest.
    pub digest: u64,
    /// Status at admission (`Done` for cache hits).
    pub status: JobStatus,
    /// True when an identical job was already in flight or finished.
    pub deduped: bool,
}

struct QueuedJob {
    digest: u64,
    spec: JobSpec,
    submitted: Instant,
    deadline: Option<Duration>,
    /// 0 for a first run; a resubmission of a failed job carries the
    /// prior attempt count so transient fault injections redraw.
    attempt: u32,
    /// Parent span context for worker-side spans (queue wait, execute,
    /// cache persist). `Some` whenever observability was enabled at
    /// admission; identity is content-derived, so the same job yields
    /// the same span ids regardless of worker count.
    trace: Option<TraceContext>,
}

struct JobRecord {
    status: JobStatus,
    payload: Option<String>,
    /// Execution attempts begun for this digest.
    attempts: u32,
}

struct Inner {
    cfg: PoolConfig,
    cache: Arc<ResultCache>,
    executor: Arc<Executor>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cond: Condvar,
    states: Mutex<HashMap<u64, JobRecord>>,
    state_cond: Condvar,
    shutdown: AtomicBool,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
}

impl Inner {
    fn set_state(&self, digest: u64, status: JobStatus, payload: Option<String>) {
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        let record = states.entry(digest).or_insert(JobRecord {
            status: JobStatus::Queued,
            payload: None,
            attempts: 0,
        });
        record.status = status;
        if payload.is_some() {
            record.payload = payload;
        }
        drop(states);
        self.state_cond.notify_all();
    }

    fn publish_depth(&self, depth: usize) {
        vab_obs::metrics::set("svc.queue_depth", depth as f64);
    }
}

/// Handle to the pool; cloning shares the same workers.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    n_workers: usize,
}

impl WorkerPool {
    /// Starts `cfg.workers` (or auto-sized) workers over `executor` and
    /// `cache`.
    pub fn start(cfg: PoolConfig, executor: Executor, cache: Arc<ResultCache>) -> Self {
        let n_workers = if cfg.workers == 0 { vab_util::threads() } else { cfg.workers };
        let inner = Arc::new(Inner {
            cfg,
            cache,
            executor: Arc::new(executor),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            states: Mutex::new(HashMap::new()),
            state_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("vab-svc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn svc worker")
            })
            .collect();
        WorkerPool { inner, workers: Arc::new(Mutex::new(workers)), n_workers }
    }

    /// Worker-thread count actually started.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Submits a job. Cache hits complete immediately; identical
    /// in-flight jobs dedupe onto one execution; a full queue rejects
    /// with [`SubmitError::QueueFull`].
    pub fn submit(
        &self,
        spec: JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<SubmitOutcome, SubmitError> {
        self.submit_traced(spec, deadline_ms, None)
    }

    /// [`WorkerPool::submit`] with an explicit parent span context (the
    /// server's `svc.handle` span). With `trace: None` and observability
    /// enabled, a root context is derived from the job digest so
    /// in-process callers still get a complete span tree.
    pub fn submit_traced(
        &self,
        spec: JobSpec,
        deadline_ms: Option<u64>,
        trace: Option<TraceContext>,
    ) -> Result<SubmitOutcome, SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let digest = spec.digest();
        let id = spec.id();
        let parent = if vab_obs::enabled() {
            Some(trace.unwrap_or_else(|| TraceContext::root(digest, "job")))
        } else {
            None
        };
        let mut states = inner.states.lock().unwrap_or_else(|e| e.into_inner());
        let mut retry_attempt = 0;
        if let Some(existing) = states.get(&digest) {
            // A failed record falls through to re-queue, carrying its
            // attempt count so transient fault injections redraw.
            retry_attempt = existing.attempts;
            if !matches!(existing.status, JobStatus::Failed { .. }) {
                // From this submitter's point of view a completed record
                // IS a cache hit — no fresh computation happened for this
                // request — so the outcome says so even though the stored
                // record keeps its original (computed) provenance.
                let status = match &existing.status {
                    JobStatus::Done { .. } => JobStatus::Done { cached: true, wall_us: 0 },
                    other => other.clone(),
                };
                vab_obs::event!("svc.pool", "submit_deduped", job = id.clone());
                return Ok(SubmitOutcome { id, digest, status, deduped: true });
            }
        }
        if let Some(payload) = inner.cache.get_traced(digest, parent.as_ref()) {
            let status = JobStatus::Done { cached: true, wall_us: 0 };
            states.insert(
                digest,
                JobRecord {
                    status: status.clone(),
                    payload: Some(payload),
                    attempts: retry_attempt,
                },
            );
            drop(states);
            inner.state_cond.notify_all();
            inner.jobs_done.fetch_add(1, Ordering::Relaxed);
            vab_obs::event!("svc.pool", "submit_cache_hit", job = id.clone());
            return Ok(SubmitOutcome { id, digest, status, deduped: false });
        }
        let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= inner.cfg.queue_cap {
            vab_obs::metrics::inc("svc.rejected_submissions", 1);
            vab_obs::event!("svc.pool", "backpressure", job = id, depth = queue.len() as u64);
            return Err(SubmitError::QueueFull { retry_after_ms: inner.cfg.retry_after_ms });
        }
        queue.push_back(QueuedJob {
            digest,
            spec,
            submitted: Instant::now(),
            deadline: deadline_ms.map(Duration::from_millis),
            attempt: retry_attempt,
            trace: parent,
        });
        let depth = queue.len();
        if let Some(p) = &parent {
            // Opens here on the submitting thread; the worker that pops
            // the job closes it with the measured wait. Re-deriving the
            // child context on both sides keeps the ids identical.
            span_begin(
                "svc.pool",
                "svc.queue_wait",
                &p.child("svc.queue_wait", retry_attempt as u64),
            );
        }
        drop(queue);
        states.insert(
            digest,
            JobRecord { status: JobStatus::Queued, payload: None, attempts: retry_attempt },
        );
        drop(states);
        inner.publish_depth(depth);
        vab_obs::event!("svc.pool", "submit_queued", job = id.clone(), depth = depth as u64);
        inner.queue_cond.notify_one();
        Ok(SubmitOutcome { id, digest, status: JobStatus::Queued, deduped: false })
    }

    /// Current status of a job, if the pool has seen it.
    pub fn status(&self, digest: u64) -> Option<JobStatus> {
        let states = self.inner.states.lock().unwrap_or_else(|e| e.into_inner());
        states.get(&digest).map(|r| r.status.clone())
    }

    /// Status plus payload (payload present once `Done`).
    pub fn fetch(&self, digest: u64) -> Option<(JobStatus, Option<String>)> {
        let states = self.inner.states.lock().unwrap_or_else(|e| e.into_inner());
        states.get(&digest).map(|r| (r.status.clone(), r.payload.clone()))
    }

    /// Blocks until the job reaches a terminal state or `timeout` passes.
    pub fn wait(&self, digest: u64, timeout: Duration) -> Option<(JobStatus, Option<String>)> {
        let deadline = Instant::now() + timeout;
        let mut states = self.inner.states.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match states.get(&digest) {
                Some(r) if r.status.is_terminal() => {
                    return Some((r.status.clone(), r.payload.clone()));
                }
                Some(_) => {}
                None => return None,
            }
            let now = Instant::now();
            if now >= deadline {
                return states.get(&digest).map(|r| (r.status.clone(), r.payload.clone()));
            }
            let (guard, _timeout) = self
                .inner
                .state_cond
                .wait_timeout(states, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            states = guard;
        }
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// (completed, failed) counters over the pool's lifetime.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.inner.jobs_done.load(Ordering::Relaxed),
            self.inner.jobs_failed.load(Ordering::Relaxed),
        )
    }

    /// The cache this pool consults.
    pub fn cache(&self) -> &ResultCache {
        &self.inner.cache
    }

    /// Stops accepting new work and joins the workers. Workers drain
    /// the queue first (the pop-before-stop-check in `worker_loop`), so
    /// every admitted job completes — and persists through the cache —
    /// before this returns: shutdown is a graceful drain.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cond.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Best-effort rendering of a panic payload (same policy as the Monte
/// Carlo driver: `&str` and `String` pass through, anything else keeps
/// its `TypeId` so it is at least distinguishable).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        format!("non-string panic payload ({:?})", payload.type_id())
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    let depth = queue.len();
                    inner.publish_depth(depth);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = inner.queue_cond.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        let waited = job.submitted.elapsed();
        if let Some(p) = &job.trace {
            span_end(
                "svc.pool",
                "svc.queue_wait",
                &p.child("svc.queue_wait", job.attempt as u64),
                waited,
            );
        }
        if let Some(deadline) = job.deadline {
            if waited > deadline {
                let error = JobError::DeadlineExpired { waited_ms: waited.as_millis() as u64 };
                inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
                vab_obs::metrics::inc("svc.jobs_expired", 1);
                vab_obs::event!(
                    "svc.pool",
                    "job_expired",
                    job = job.spec.id(),
                    waited_ms = waited.as_millis() as u64,
                );
                inner.set_state(job.digest, JobStatus::Failed { error }, None);
                continue;
            }
        }
        inner.set_state(job.digest, JobStatus::Running, None);
        {
            // This execution is attempt `job.attempt`; record that the
            // next retry of this digest must redraw at `attempt + 1`.
            let mut states = inner.states.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(record) = states.get_mut(&job.digest) {
                record.attempts = job.attempt + 1;
            }
        }
        let started = Instant::now();
        let result = {
            // The span replaces the old `time_stage("svc.job_execute")`
            // guard: its Drop feeds the same stage histogram, and it also
            // emits begin/end events carrying the trace identity.
            let _span = job.trace.as_ref().map(|p| {
                SpanScope::enter_ord("svc.pool", "svc.job_execute", p, job.attempt as u64)
            });
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                inner.executor.execute_attempt(&job.spec, job.digest, job.attempt, &inner.cache)
            }))
        };
        let wall_us = started.elapsed().as_micros() as u64;
        let persist_parent =
            job.trace.as_ref().map(|p| p.child("svc.job_execute", job.attempt as u64));
        match result {
            Ok(Ok(payload)) => {
                inner.cache.put_traced(
                    job.digest,
                    &job.spec.canonical(),
                    &payload,
                    persist_parent.as_ref(),
                );
                inner.jobs_done.fetch_add(1, Ordering::Relaxed);
                vab_obs::metrics::inc("svc.jobs_done", 1);
                vab_obs::event!("svc.pool", "job_done", job = job.spec.id(), wall_us = wall_us);
                if job.attempt > 0 {
                    vab_obs::metrics::inc("svc.jobs_recovered", 1);
                    vab_obs::event!(
                        "svc.recover",
                        "job_recovered",
                        job = job.spec.id(),
                        attempt = job.attempt,
                    );
                }
                inner.set_state(
                    job.digest,
                    JobStatus::Done { cached: false, wall_us },
                    Some(payload),
                );
            }
            Ok(Err(message)) => {
                inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
                vab_obs::metrics::inc("svc.jobs_failed", 1);
                vab_obs::event!(
                    "svc.pool",
                    "job_failed",
                    job = job.spec.id(),
                    reason = message.clone(),
                );
                inner.set_state(
                    job.digest,
                    JobStatus::Failed { error: JobError::ExecFailed { message } },
                    None,
                );
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
                vab_obs::metrics::inc("svc.worker_panics", 1);
                vab_obs::event!(
                    "svc.pool",
                    "worker_panicked",
                    job = job.spec.id(),
                    message = message.clone(),
                );
                inner.set_state(
                    job.digest,
                    JobStatus::Failed { error: JobError::WorkerPanicked { message } },
                    None,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineSpec, EnvSpec, SystemSpec};

    fn mc(seed: u64, trials: usize) -> JobSpec {
        JobSpec::McPoint {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            range_m: 40.0,
            rotation_deg: 0.0,
            trials,
            bits: 64,
            seed,
            engine: EngineSpec::LinkBudget,
        }
    }

    fn small_pool(workers: usize, queue_cap: usize, executor: Executor) -> WorkerPool {
        let cfg = PoolConfig { workers, queue_cap, retry_after_ms: 25 };
        WorkerPool::start(cfg, executor, Arc::new(ResultCache::in_memory(16)))
    }

    #[test]
    fn compute_then_cache_hit_is_bit_identical() {
        let pool = small_pool(2, 8, Executor::new());
        let spec = mc(7, 4);
        let first = pool.submit(spec.clone(), None).expect("admit");
        assert_eq!(first.status, JobStatus::Queued);
        let (status, payload) =
            pool.wait(first.digest, Duration::from_secs(30)).expect("known job");
        let JobStatus::Done { cached, .. } = status else { panic!("status {status:?}") };
        assert!(!cached);
        let computed = payload.expect("payload");
        let second = pool.submit(spec, None).expect("resubmit");
        // The record still exists → dedupe; a fresh pool sharing the cache
        // would report a cache hit instead. Both paths return Done.
        assert!(second.deduped);
        let (_, payload2) = pool.fetch(second.digest).expect("record");
        assert_eq!(payload2.expect("payload"), computed, "must be byte-identical");
        pool.shutdown();
    }

    #[test]
    fn queue_full_rejects_with_retry_after() {
        // One worker, queue of one: slow jobs pile up, and within a few
        // submissions one must bounce off the full queue. (Whether the
        // second or third bounces depends on how fast the worker
        // dequeues the first — either way is correct backpressure.)
        let pool = small_pool(1, 1, Executor::new());
        let mut bounced = false;
        for seed in 1..20 {
            match pool.submit(mc(seed, 4000), None) {
                Err(SubmitError::QueueFull { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 25);
                    bounced = true;
                    break;
                }
                Ok(_) => continue,
                Err(e) => panic!("unexpected submit error {e}"),
            }
        }
        assert!(bounced, "queue never filled");
        pool.shutdown();
    }

    #[test]
    fn injected_panic_fails_typed_and_pool_survives() {
        let executor = Executor::new().with_faults(vab_fault::WorkerFaultPlan::always(9));
        let pool = small_pool(1, 4, executor);
        let a = pool.submit(mc(10, 4), None).expect("admit");
        let (status, _) = pool.wait(a.digest, Duration::from_secs(10)).expect("known");
        let JobStatus::Failed { error: JobError::WorkerPanicked { message } } = status else {
            panic!("expected WorkerPanicked, got {status:?}");
        };
        assert!(message.contains("injected worker fault"), "message: {message}");
        // The worker thread survived the panic and still serves.
        let b = pool.submit(mc(11, 4), None).expect("pool still admits");
        let (status_b, _) = pool.wait(b.digest, Duration::from_secs(10)).expect("known");
        assert!(matches!(status_b, JobStatus::Failed { .. }), "second injection also typed");
        let (_done, failed) = pool.totals();
        assert_eq!(failed, 2);
        pool.shutdown();
    }

    #[test]
    fn transient_panic_clears_on_resubmit() {
        // A SvcFaultPlan panic redraws per attempt: with panic_prob 1.0
        // every attempt panics, so dial it to certainty on attempt 0 by
        // probing for a digest whose first draw panics and second does
        // not — then verify the resubmission path actually retries with
        // attempt 1 and succeeds.
        let plan = vab_fault::SvcFaultPlan::new(
            77,
            vab_fault::SvcFaultConfig { panic_prob: 0.5, ..vab_fault::SvcFaultConfig::off() },
        );
        let mut candidate = None;
        for seed in 0..200u64 {
            let spec = mc(seed, 4);
            let digest = spec.digest();
            if plan.worker_panics(digest, 0) && !plan.worker_panics(digest, 1) {
                candidate = Some(spec);
                break;
            }
        }
        let spec = candidate.expect("a panic-then-recover digest exists in 200 draws");
        let executor = Executor::new().with_svc_faults(plan);
        let pool = small_pool(1, 4, executor);

        let first = pool.submit(spec.clone(), None).expect("admit");
        let (status, _) = pool.wait(first.digest, Duration::from_secs(10)).expect("known");
        assert!(
            matches!(status, JobStatus::Failed { error: JobError::WorkerPanicked { .. } }),
            "attempt 0 must panic, got {status:?}"
        );

        let second = pool.submit(spec, None).expect("failed records re-queue");
        assert!(!second.deduped, "a failed record must not dedupe");
        let (status, payload) = pool.wait(second.digest, Duration::from_secs(10)).expect("known");
        assert!(matches!(status, JobStatus::Done { .. }), "attempt 1 must recover: {status:?}");
        assert!(payload.is_some());
        pool.shutdown();
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let pool = small_pool(1, 4, Executor::new());
        // Occupy the worker so the deadline job must wait.
        pool.submit(mc(20, 4000), None).expect("slow job");
        let d = pool.submit(mc(21, 4), Some(0)).expect("deadline job");
        let (status, _) = pool.wait(d.digest, Duration::from_secs(30)).expect("known");
        assert!(
            matches!(status, JobStatus::Failed { error: JobError::DeadlineExpired { .. } }),
            "got {status:?}"
        );
        pool.shutdown();
    }
}
