//! # vab-svc — simulation-as-a-service for the VAB evaluation fleet
//!
//! Every consumer of the simulator used to re-run physics from scratch in
//! its own process. This crate gives the workspace a *request path*: a
//! typed job model, a content-addressed result cache, a bounded worker
//! pool with admission control, and a newline-delimited-JSON wire
//! protocol over localhost TCP — the serving shapes (batching, caching,
//! backpressure, worker isolation) that the ROADMAP's
//! "heavy traffic from millions of users" north star needs.
//!
//! ## The layers
//!
//! 1. **Jobs** ([`job`]): Monte Carlo points, campaign slices,
//!    link-budget sweeps, figure runs and spatial network deployments
//!    (`vab-net` topologies), each with a *canonical* JSON serialization
//!    (via `vab_util::json`) so structurally identical requests always
//!    serialize to identical bytes.
//! 2. **Cache** ([`cache`]): FNV-1a digest of `canonical spec + engine
//!    version` → result payload, held in an in-memory LRU backed by a
//!    persistent `results/cache/` tier. Identical jobs are served without
//!    recomputation; near-identical link-budget sweeps share per-point
//!    entries.
//! 3. **Pool** ([`pool`]): std-thread workers over a bounded queue.
//!    Submissions beyond the queue bound are rejected with a
//!    retry-after hint instead of buffered without limit; queued jobs can
//!    carry deadlines; worker panics (including `vab_fault`-injected
//!    ones) are caught per job and surface as typed failures, building on
//!    the `MonteCarloError::WorkerPanicked` contract.
//! 4. **Wire** ([`wire`], [`server`], [`client`]): one JSON request per
//!    line, one JSON response per line, over localhost TCP. The
//!    `vab-svcd` daemon and `vab-svc` client binaries (in `vab-bench`,
//!    where the figure registry lives) speak it; so can `nc`.
//! 5. **Telemetry** ([`telemetry`]): every hop of a job's life — client
//!    submit, server handle, cache lookup, queue wait, execute, cache
//!    persist — runs under a `vab_obs::TraceContext` span whose identity
//!    is content-derived (digest-keyed, worker-count independent), and
//!    the daemon keeps a ring of live metrics samples served over the
//!    `metrics`/`watch` wire ops for `vab-obsctl tail` and the SLO gate.
//!
//! ## Determinism
//!
//! Job seeds derive exactly as the Monte Carlo shards do
//! (`derive_seed(master, index)`), so a cached response and a freshly
//! computed one are byte-identical, and a campaign slice served by the
//! pool matches the same trial ids inside a monolithic run bit for bit.
//! Bumping [`ENGINE_VERSION`] invalidates every cached entry at once.

pub mod cache;
pub mod client;
pub mod exec;
pub mod job;
pub mod pool;
pub mod server;
pub mod telemetry;
pub mod wire;

pub use cache::ResultCache;
pub use client::Client;
pub use exec::{Executor, FigureRunner};
pub use job::JobSpec;
pub use pool::{JobError, JobStatus, PoolConfig, SubmitError, SubmitOutcome, WorkerPool};
pub use server::{Server, ServerConfig};

/// Version tag folded into every cache digest. Bump whenever a physics or
/// payload-format change makes previously cached results stale.
pub const ENGINE_VERSION: &str = "vab-engine/1";

/// Schema tag embedded in native (non-figure) result payloads.
pub const RESULT_SCHEMA: &str = "vab-svc-result/1";

/// FNV-1a 64-bit digest — the content address of a canonical job spec.
/// Re-exported from `vab_util::hash` (the shared primitive also used by
/// `vab-net` topology digests); kept at this path for compatibility.
pub use vab_util::hash::fnv1a64;
