//! The typed job model and its canonical serialization.
//!
//! A [`JobSpec`] is pure data: everything needed to reproduce a result,
//! nothing about *how* it is executed (thread counts, cache state and
//! observability deliberately stay out, so they can never split the cache
//! address of identical physics). The canonical form is JSON with a fixed
//! key order and `vab_util::json`'s canonical number rendering, so
//! structural equality implies byte equality — [`JobSpec::digest`] hashes
//! those bytes together with [`crate::ENGINE_VERSION`] into the content
//! address the cache and the wire protocol both use as the job id.

use vab_util::json::Json;

/// Seeds are full-range `u64`s, which JSON's double-precision numbers
/// cannot hold exactly above 2^53 — so the canonical form carries them as
/// decimal strings. Parsing accepts a plain number too (hand-written
/// specs with small seeds); canonicalization folds both spellings to the
/// same bytes, so they share a cache address.
fn seed_to_json(seed: u64) -> Json {
    Json::Str(seed.to_string())
}

fn seed_field(v: &Json, key: &str) -> Option<u64> {
    match v.get(key)? {
        Json::Str(s) => s.parse().ok(),
        other => other.as_u64(),
    }
}

/// Which simulated system a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemSpec {
    /// Van Atta backscatter with `n_pairs` element pairs.
    Vab {
        /// Number of Van Atta pairs.
        n_pairs: usize,
    },
    /// Single-element prior art.
    Pab,
    /// Conventional (non-retrodirective) array.
    Conventional {
        /// Total element count (even).
        n_elements: usize,
    },
}

impl SystemSpec {
    pub(crate) fn to_json(self) -> Json {
        match self {
            SystemSpec::Vab { n_pairs } => Json::obj([
                ("kind", Json::Str("vab".into())),
                ("n_pairs", Json::Num(n_pairs as f64)),
            ]),
            SystemSpec::Pab => Json::obj([("kind", Json::Str("pab".into()))]),
            SystemSpec::Conventional { n_elements } => Json::obj([
                ("kind", Json::Str("conventional".into())),
                ("n_elements", Json::Num(n_elements as f64)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        match v.str_field("kind") {
            Some("vab") => Ok(SystemSpec::Vab {
                n_pairs: v.u64_field("n_pairs").ok_or("vab system needs n_pairs")? as usize,
            }),
            Some("pab") => Ok(SystemSpec::Pab),
            Some("conventional") => Ok(SystemSpec::Conventional {
                n_elements: v
                    .u64_field("n_elements")
                    .ok_or("conventional system needs n_elements")?
                    as usize,
            }),
            other => Err(format!("unknown system kind {other:?}")),
        }
    }

    /// The `vab-sim` equivalent.
    pub fn to_sim(self) -> vab_sim::SystemKind {
        match self {
            SystemSpec::Vab { n_pairs } => vab_sim::SystemKind::Vab { n_pairs },
            SystemSpec::Pab => vab_sim::SystemKind::Pab,
            SystemSpec::Conventional { n_elements } => {
                vab_sim::SystemKind::ConventionalArray { n_elements }
            }
        }
    }
}

/// Deployment environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvSpec {
    /// The canonical river trial.
    River,
    /// Ocean at a sea-state index (0 = calm … 4 = moderate).
    Ocean {
        /// Index into `SeaState::all()`.
        sea_state: u8,
    },
}

impl EnvSpec {
    pub(crate) fn to_json(self) -> Json {
        match self {
            EnvSpec::River => Json::obj([("kind", Json::Str("river".into()))]),
            EnvSpec::Ocean { sea_state } => Json::obj([
                ("kind", Json::Str("ocean".into())),
                ("sea_state", Json::Num(sea_state as f64)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        match v.str_field("kind") {
            Some("river") => Ok(EnvSpec::River),
            Some("ocean") => {
                let ss = v.u64_field("sea_state").ok_or("ocean env needs sea_state")?;
                if ss > 4 {
                    return Err(format!("sea_state {ss} out of range 0..=4"));
                }
                Ok(EnvSpec::Ocean { sea_state: ss as u8 })
            }
            other => Err(format!("unknown env kind {other:?}")),
        }
    }
}

/// Simulation fidelity for Monte Carlo jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// Sonar equation + closed-form BER + real codecs.
    LinkBudget,
    /// Full complex-baseband DSP.
    SampleLevel,
}

impl EngineSpec {
    fn as_str(self) -> &'static str {
        match self {
            EngineSpec::LinkBudget => "link_budget",
            EngineSpec::SampleLevel => "sample_level",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "link_budget" => Ok(EngineSpec::LinkBudget),
            "sample_level" => Ok(EngineSpec::SampleLevel),
            other => Err(format!("unknown engine {other:?}")),
        }
    }

    /// The `vab-sim` equivalent.
    pub fn to_sim(self) -> vab_sim::TrialEngine {
        match self {
            EngineSpec::LinkBudget => vab_sim::TrialEngine::LinkBudget,
            EngineSpec::SampleLevel => vab_sim::TrialEngine::SampleLevel,
        }
    }
}

/// One unit of simulation work, ready to canonicalize, digest, cache and
/// ship over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// All Monte Carlo trials of one operating point.
    McPoint {
        /// Deployed system.
        system: SystemSpec,
        /// Water environment.
        env: EnvSpec,
        /// Reader–node range, metres.
        range_m: f64,
        /// Node rotation off broadside, degrees.
        rotation_deg: f64,
        /// Channel realizations.
        trials: usize,
        /// Information bits per trial.
        bits: usize,
        /// Master seed.
        seed: u64,
        /// Simulation fidelity.
        engine: EngineSpec,
    },
    /// Deployments `lo..hi` of a randomized field campaign.
    CampaignSlice {
        /// Deployed system.
        system: SystemSpec,
        /// Total campaign size (fixes the deployment distribution).
        n_trials: usize,
        /// Bits per deployment packet.
        bits: usize,
        /// Campaign master seed.
        seed: u64,
        /// First deployment id of the slice (inclusive).
        lo: usize,
        /// One past the last deployment id.
        hi: usize,
        /// Optional fault-injection intensity (0 = nominal, 1 = severe).
        fault_intensity: Option<f64>,
    },
    /// Closed-form link budgets over a set of ranges. Near-identical
    /// sweeps share per-point cache entries (see `exec`).
    LinkBudgetSweep {
        /// Deployed system.
        system: SystemSpec,
        /// Water environment.
        env: EnvSpec,
        /// Ranges to evaluate, metres.
        ranges_m: Vec<f64>,
    },
    /// One figure/table of the evaluation fleet, by registry name.
    Figure {
        /// Registry name (`f7_ber_vs_range`, `t2_power_budget`, …).
        name: String,
        /// Monte Carlo trials per operating point.
        trials: usize,
        /// Information bits per trial.
        bits: usize,
        /// Master seed.
        seed: u64,
    },
    /// One TVIR bank build (`vab-replay`): realize the channel once and
    /// persist its snapshot tap matrices under the bank store. The fields
    /// mirror `vab_replay::BankSpec`, so the daemon shards and caches bank
    /// builds like any other job while the bank file itself is content-
    /// addressed by the *bank* digest (same engine version, same recipe).
    ReplayBank {
        /// Water environment.
        env: EnvSpec,
        /// Reader–node range, metres.
        range_m: f64,
        /// Carrier frequency, Hz.
        carrier_hz: f64,
        /// Baseband sample rate the taps are sampled at, Hz.
        fs: f64,
        /// TVIR snapshots across the recording span.
        n_snapshots: usize,
        /// Recording span, seconds.
        span_s: f64,
        /// Channel-realization seed.
        seed: u64,
    },
    /// One spatial network deployment (`vab-net`): seed-pure topology
    /// generation, capture-aware inventory and steady-state TDMA. The
    /// fields mirror `vab_net::NetworkSpec` so network campaigns cache
    /// per-topology results by content address.
    NetTopology {
        /// Deployed node count (1 ..= 256).
        n_nodes: usize,
        /// Deployment box down-range extent, metres.
        x_m: f64,
        /// Deployment box cross-range extent, metres.
        y_m: f64,
        /// Closest node standoff from the reader, metres.
        standoff_m: f64,
        /// Water environment.
        env: EnvSpec,
        /// Van Atta pairs per node.
        n_pairs: usize,
        /// Master seed.
        seed: u64,
    },
    /// One ocean-scale cellular deployment (`vab-net` scale tier):
    /// multi-reader cells, grid-accelerated interference and multi-hop
    /// relay routing at the canonical ocean density. The spec maps onto
    /// `vab_net::ScaleSpec::ocean` with the routing policy overridden, so
    /// geometry and reader count stay pure functions of `n_nodes` and the
    /// job stays cacheable by content address.
    NetScale {
        /// Deployed node count (1 ..= 1,048,576).
        n_nodes: usize,
        /// Relay routing policy for rim nodes.
        policy: vab_net::RoutePolicy,
        /// Master seed.
        seed: u64,
    },
}

impl JobSpec {
    /// Structured (ordered-key) JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            JobSpec::McPoint { system, env, range_m, rotation_deg, trials, bits, seed, engine } => {
                Json::obj([
                    ("kind", Json::Str("mc_point".into())),
                    ("system", system.to_json()),
                    ("env", env.to_json()),
                    ("range_m", Json::Num(*range_m)),
                    ("rotation_deg", Json::Num(*rotation_deg)),
                    ("trials", Json::Num(*trials as f64)),
                    ("bits", Json::Num(*bits as f64)),
                    ("seed", seed_to_json(*seed)),
                    ("engine", Json::Str(engine.as_str().into())),
                ])
            }
            JobSpec::CampaignSlice { system, n_trials, bits, seed, lo, hi, fault_intensity } => {
                Json::obj([
                    ("kind", Json::Str("campaign_slice".into())),
                    ("system", system.to_json()),
                    ("n_trials", Json::Num(*n_trials as f64)),
                    ("bits", Json::Num(*bits as f64)),
                    ("seed", seed_to_json(*seed)),
                    ("lo", Json::Num(*lo as f64)),
                    ("hi", Json::Num(*hi as f64)),
                    ("fault_intensity", fault_intensity.map(Json::Num).unwrap_or(Json::Null)),
                ])
            }
            JobSpec::LinkBudgetSweep { system, env, ranges_m } => Json::obj([
                ("kind", Json::Str("link_budget_sweep".into())),
                ("system", system.to_json()),
                ("env", env.to_json()),
                ("ranges_m", Json::Arr(ranges_m.iter().map(|&r| Json::Num(r)).collect())),
            ]),
            JobSpec::Figure { name, trials, bits, seed } => Json::obj([
                ("kind", Json::Str("figure".into())),
                ("name", Json::Str(name.clone())),
                ("trials", Json::Num(*trials as f64)),
                ("bits", Json::Num(*bits as f64)),
                ("seed", seed_to_json(*seed)),
            ]),
            JobSpec::ReplayBank { env, range_m, carrier_hz, fs, n_snapshots, span_s, seed } => {
                Json::obj([
                    ("kind", Json::Str("replay_bank".into())),
                    ("env", env.to_json()),
                    ("range_m", Json::Num(*range_m)),
                    ("carrier_hz", Json::Num(*carrier_hz)),
                    ("fs", Json::Num(*fs)),
                    ("n_snapshots", Json::Num(*n_snapshots as f64)),
                    ("span_s", Json::Num(*span_s)),
                    ("seed", seed_to_json(*seed)),
                ])
            }
            JobSpec::NetTopology { n_nodes, x_m, y_m, standoff_m, env, n_pairs, seed } => {
                Json::obj([
                    ("kind", Json::Str("net_topology".into())),
                    ("n_nodes", Json::Num(*n_nodes as f64)),
                    ("x_m", Json::Num(*x_m)),
                    ("y_m", Json::Num(*y_m)),
                    ("standoff_m", Json::Num(*standoff_m)),
                    ("env", env.to_json()),
                    ("n_pairs", Json::Num(*n_pairs as f64)),
                    ("seed", seed_to_json(*seed)),
                ])
            }
            JobSpec::NetScale { n_nodes, policy, seed } => Json::obj([
                ("kind", Json::Str("net_scale".into())),
                ("n_nodes", Json::Num(*n_nodes as f64)),
                ("policy", Json::Str(policy.as_str().into())),
                ("seed", seed_to_json(*seed)),
            ]),
        }
    }

    /// Parses a spec back from its JSON form (wire submissions).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let need_usize =
            |key: &str| v.u64_field(key).map(|n| n as usize).ok_or(format!("missing {key}"));
        match v.str_field("kind") {
            Some("mc_point") => Ok(JobSpec::McPoint {
                system: SystemSpec::from_json(v.get("system").ok_or("missing system")?)?,
                env: EnvSpec::from_json(v.get("env").ok_or("missing env")?)?,
                range_m: v.f64_field("range_m").ok_or("missing range_m")?,
                rotation_deg: v.f64_field("rotation_deg").unwrap_or(0.0),
                trials: need_usize("trials")?,
                bits: need_usize("bits")?,
                seed: seed_field(v, "seed").ok_or("missing seed")?,
                engine: EngineSpec::from_str(v.str_field("engine").unwrap_or("link_budget"))?,
            }),
            Some("campaign_slice") => {
                let lo = need_usize("lo")?;
                let hi = need_usize("hi")?;
                if lo > hi {
                    return Err(format!("slice lo {lo} > hi {hi}"));
                }
                Ok(JobSpec::CampaignSlice {
                    system: SystemSpec::from_json(v.get("system").ok_or("missing system")?)?,
                    n_trials: need_usize("n_trials")?,
                    bits: need_usize("bits")?,
                    seed: seed_field(v, "seed").ok_or("missing seed")?,
                    lo,
                    hi,
                    fault_intensity: v.f64_field("fault_intensity"),
                })
            }
            Some("link_budget_sweep") => {
                let ranges = v.get("ranges_m").and_then(Json::as_arr).ok_or("missing ranges_m")?;
                let ranges_m = ranges
                    .iter()
                    .map(|r| r.as_f64().ok_or("non-numeric range".to_string()))
                    .collect::<Result<Vec<f64>, String>>()?;
                if ranges_m.iter().any(|r| !r.is_finite() || *r <= 0.0) {
                    return Err("ranges_m must be positive and finite".into());
                }
                Ok(JobSpec::LinkBudgetSweep {
                    system: SystemSpec::from_json(v.get("system").ok_or("missing system")?)?,
                    env: EnvSpec::from_json(v.get("env").ok_or("missing env")?)?,
                    ranges_m,
                })
            }
            Some("figure") => Ok(JobSpec::Figure {
                name: v.str_field("name").ok_or("missing name")?.to_string(),
                trials: need_usize("trials")?,
                bits: need_usize("bits")?,
                seed: seed_field(v, "seed").ok_or("missing seed")?,
            }),
            Some("replay_bank") => {
                let spec = JobSpec::ReplayBank {
                    env: EnvSpec::from_json(v.get("env").ok_or("missing env")?)?,
                    range_m: v.f64_field("range_m").ok_or("missing range_m")?,
                    carrier_hz: v.f64_field("carrier_hz").ok_or("missing carrier_hz")?,
                    fs: v.f64_field("fs").ok_or("missing fs")?,
                    n_snapshots: need_usize("n_snapshots")?,
                    span_s: v.f64_field("span_s").ok_or("missing span_s")?,
                    seed: seed_field(v, "seed").ok_or("missing seed")?,
                };
                // Reuse the bank model's physical validation so the daemon
                // rejects at submission what the generator would refuse.
                spec.to_bank_spec().expect("just built as replay_bank").validate()?;
                Ok(spec)
            }
            Some("net_topology") => {
                let n_nodes = need_usize("n_nodes")?;
                if !(1..=256).contains(&n_nodes) {
                    return Err(format!("n_nodes {n_nodes} outside 1..=256"));
                }
                let dim = |key: &str| -> Result<f64, String> {
                    let d = v.f64_field(key).ok_or(format!("missing {key}"))?;
                    if !d.is_finite() || d <= 0.0 {
                        return Err(format!("{key} must be positive and finite"));
                    }
                    Ok(d)
                };
                Ok(JobSpec::NetTopology {
                    n_nodes,
                    x_m: dim("x_m")?,
                    y_m: dim("y_m")?,
                    standoff_m: dim("standoff_m")?,
                    env: EnvSpec::from_json(v.get("env").ok_or("missing env")?)?,
                    n_pairs: need_usize("n_pairs")?,
                    seed: seed_field(v, "seed").ok_or("missing seed")?,
                })
            }
            Some("net_scale") => {
                let n_nodes = need_usize("n_nodes")?;
                if !(1..=1_048_576).contains(&n_nodes) {
                    return Err(format!("n_nodes {n_nodes} outside 1..=1048576"));
                }
                // Policy defaults to VBF, the `ScaleSpec::ocean` default;
                // the canonical form always spells it out, so both
                // spellings fold to the same cache address.
                let policy = vab_net::RoutePolicy::parse(v.str_field("policy").unwrap_or("vbf"))?;
                Ok(JobSpec::NetScale {
                    n_nodes,
                    policy,
                    seed: seed_field(v, "seed").ok_or("missing seed")?,
                })
            }
            other => Err(format!("unknown job kind {other:?}")),
        }
    }

    /// The canonical byte form: compact JSON with fixed key order.
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }

    /// The `vab-replay` bank spec of a [`JobSpec::ReplayBank`] job (`None`
    /// for every other kind).
    pub fn to_bank_spec(&self) -> Option<vab_replay::BankSpec> {
        let JobSpec::ReplayBank { env, range_m, carrier_hz, fs, n_snapshots, span_s, seed } = self
        else {
            return None;
        };
        let water = match env {
            EnvSpec::River => vab_replay::WaterSpec::River,
            EnvSpec::Ocean { sea_state } => vab_replay::WaterSpec::Ocean { sea_state: *sea_state },
        };
        Some(vab_replay::BankSpec {
            water,
            range_m: *range_m,
            carrier_hz: *carrier_hz,
            fs: *fs,
            n_snapshots: *n_snapshots,
            span_s: *span_s,
            seed: *seed,
        })
    }

    /// Content address under an explicit engine version (tests use this to
    /// show a version bump misses the cache).
    pub fn digest_with_version(&self, engine_version: &str) -> u64 {
        let mut bytes = self.canonical().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(engine_version.as_bytes());
        crate::fnv1a64(&bytes)
    }

    /// Content address under [`crate::ENGINE_VERSION`].
    pub fn digest(&self) -> u64 {
        self.digest_with_version(crate::ENGINE_VERSION)
    }

    /// The wire job id: the digest in fixed-width hex.
    pub fn id(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Short human label for logs and progress lines.
    pub fn label(&self) -> String {
        match self {
            JobSpec::McPoint { range_m, trials, .. } => {
                format!("mc_point(range={range_m} m, trials={trials})")
            }
            JobSpec::CampaignSlice { lo, hi, .. } => format!("campaign_slice({lo}..{hi})"),
            JobSpec::LinkBudgetSweep { ranges_m, .. } => {
                format!("link_budget_sweep({} points)", ranges_m.len())
            }
            JobSpec::Figure { name, .. } => format!("figure({name})"),
            JobSpec::ReplayBank { range_m, n_snapshots, .. } => {
                format!("replay_bank(range={range_m} m, snapshots={n_snapshots})")
            }
            JobSpec::NetTopology { n_nodes, .. } => format!("net_topology({n_nodes} nodes)"),
            JobSpec::NetScale { n_nodes, policy, .. } => {
                format!("net_scale({n_nodes} nodes, {})", policy.as_str())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> JobSpec {
        JobSpec::McPoint {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            range_m: 280.0,
            rotation_deg: 0.0,
            trials: 16,
            bits: 128,
            seed: 7,
            engine: EngineSpec::LinkBudget,
        }
    }

    #[test]
    fn canonical_round_trips_every_kind() {
        let specs = [
            mc(),
            JobSpec::CampaignSlice {
                system: SystemSpec::Pab,
                n_trials: 1500,
                bits: 256,
                seed: 1500,
                lo: 10,
                hi: 20,
                fault_intensity: Some(0.5),
            },
            JobSpec::LinkBudgetSweep {
                system: SystemSpec::Conventional { n_elements: 8 },
                env: EnvSpec::Ocean { sea_state: 2 },
                ranges_m: vec![10.0, 100.5, 450.0],
            },
            JobSpec::Figure { name: "f7_ber_vs_range".into(), trials: 25, bits: 256, seed: 2023 },
            JobSpec::ReplayBank {
                env: EnvSpec::Ocean { sea_state: 2 },
                range_m: 320.0,
                carrier_hz: 18_500.0,
                fs: 1600.0,
                n_snapshots: 4,
                span_s: 8.0,
                seed: 2023,
            },
            JobSpec::NetTopology {
                n_nodes: 64,
                x_m: 60.0,
                y_m: 40.0,
                standoff_m: 10.0,
                env: EnvSpec::Ocean { sea_state: 1 },
                n_pairs: 4,
                seed: 2023,
            },
            JobSpec::NetScale { n_nodes: 4096, policy: vab_net::RoutePolicy::Vbf, seed: 2023 },
            JobSpec::NetScale { n_nodes: 64, policy: vab_net::RoutePolicy::ClusterHead, seed: 1 },
        ];
        for spec in specs {
            let canon = spec.canonical();
            let back = JobSpec::from_json(&Json::parse(&canon).expect("parse")).expect("from_json");
            assert_eq!(back, spec);
            assert_eq!(back.canonical(), canon, "canonical form must be a fixed point");
        }
    }

    #[test]
    fn digest_separates_seeds_and_versions() {
        let a = mc();
        let mut b = a.clone();
        if let JobSpec::McPoint { seed, .. } = &mut b {
            *seed = 8;
        }
        assert_ne!(a.digest(), b.digest(), "seed change must re-address");
        assert_ne!(
            a.digest_with_version("vab-engine/1"),
            a.digest_with_version("vab-engine/2"),
            "engine bump must re-address"
        );
        assert_eq!(a.digest(), mc().digest(), "equal specs share an address");
        assert_eq!(a.id().len(), 16);
    }

    #[test]
    fn seeds_above_2_pow_53_survive_the_wire_exactly() {
        let mut spec = mc();
        if let JobSpec::McPoint { seed, .. } = &mut spec {
            *seed = u64::MAX - 41; // not representable as f64
        }
        let canon = spec.canonical();
        let back = JobSpec::from_json(&Json::parse(&canon).expect("parse")).expect("from_json");
        assert_eq!(back, spec);
        // A hand-written numeric seed (small enough for f64) folds to the
        // same canonical bytes and therefore the same cache address.
        let numeric = r#"{"kind":"figure","name":"f7","trials":5,"bits":64,"seed":9}"#;
        let stringy = r#"{"kind":"figure","name":"f7","trials":5,"bits":64,"seed":"9"}"#;
        let a = JobSpec::from_json(&Json::parse(numeric).expect("json")).expect("spec");
        let b = JobSpec::from_json(&Json::parse(stringy).expect("json")).expect("spec");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn net_scale_policy_defaults_to_vbf_at_the_same_address() {
        let explicit = r#"{"kind":"net_scale","n_nodes":64,"policy":"vbf","seed":9}"#;
        let implicit = r#"{"kind":"net_scale","n_nodes":64,"seed":9}"#;
        let a = JobSpec::from_json(&Json::parse(explicit).expect("json")).expect("spec");
        let b = JobSpec::from_json(&Json::parse(implicit).expect("json")).expect("spec");
        assert_eq!(a.digest(), b.digest(), "implicit policy folds to the canonical address");
        assert_eq!(a.label(), "net_scale(64 nodes, vbf)");
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        for bad in [
            r#"{"kind":"mc_point"}"#,
            r#"{"kind":"warp_drive"}"#,
            r#"{"kind":"campaign_slice","system":{"kind":"pab"},"n_trials":10,"bits":8,"seed":1,"lo":9,"hi":3}"#,
            r#"{"kind":"link_budget_sweep","system":{"kind":"pab"},"env":{"kind":"river"},"ranges_m":[-5]}"#,
            r#"{"kind":"figure","name":"f7"}"#,
            r#"{"kind":"net_topology","n_nodes":0,"x_m":60,"y_m":40,"standoff_m":10,"env":{"kind":"river"},"n_pairs":4,"seed":1}"#,
            r#"{"kind":"net_topology","n_nodes":500,"x_m":60,"y_m":40,"standoff_m":10,"env":{"kind":"river"},"n_pairs":4,"seed":1}"#,
            r#"{"kind":"net_topology","n_nodes":8,"x_m":-60,"y_m":40,"standoff_m":10,"env":{"kind":"river"},"n_pairs":4,"seed":1}"#,
            r#"{"kind":"net_scale","n_nodes":0,"policy":"vbf","seed":1}"#,
            r#"{"kind":"net_scale","n_nodes":2000000,"policy":"vbf","seed":1}"#,
            r#"{"kind":"net_scale","n_nodes":64,"policy":"teleport","seed":1}"#,
            r#"{"kind":"net_scale","n_nodes":64,"policy":"vbf"}"#,
            r#"{"kind":"replay_bank","env":{"kind":"river"},"range_m":-50,"carrier_hz":18500,"fs":1600,"n_snapshots":2,"span_s":1,"seed":1}"#,
            r#"{"kind":"replay_bank","env":{"kind":"river"},"range_m":50,"carrier_hz":18500,"fs":1600,"n_snapshots":0,"span_s":1,"seed":1}"#,
            r#"{"kind":"replay_bank","env":{"kind":"river"},"range_m":50,"carrier_hz":18500,"fs":1600,"n_snapshots":3,"span_s":0,"seed":1}"#,
        ] {
            let v = Json::parse(bad).expect("valid JSON");
            assert!(JobSpec::from_json(&v).is_err(), "accepted {bad}");
        }
    }
}
