//! Content-addressed result cache: in-memory LRU over a persistent tier.
//!
//! Keys are [`crate::job::JobSpec::digest`] values — FNV-1a over the
//! canonical spec bytes plus [`crate::ENGINE_VERSION`] — so identical
//! physics shares one address, a seed change gets a new one, and an
//! engine bump orphans every stale entry without any invalidation
//! protocol. The persistent tier is one JSON file per entry under a cache
//! directory (default `results/cache/`).
//!
//! # Crash safety
//!
//! The persistent tier must survive a daemon killed at any instant, so
//! every entry is written to a temp file *in the same directory* and
//! renamed into place — on POSIX the rename is atomic, so a reader never
//! observes a half-written entry under its final name. Anything that
//! *does* arrive torn (a crash between open and rename leaves a `.tmp`;
//! bit rot or a hostile test leaves unparseable JSON) is detected on
//! read, **quarantined** by renaming to `<entry>.corrupt`, and treated
//! as a miss so the physics recomputes; a stale-engine entry is merely a
//! miss (orphaned, not damaged). [`ResultCache::persistent`] runs a
//! startup recovery scan that sweeps the whole directory the same way,
//! so one corrupt file can never wedge a daemon at boot.
//!
//! Chaos drills arm [`ResultCache::with_faults`] with a seed-pure
//! `vab_fault::SvcFaultPlan`; injected disk-write failures leave the
//! entry memory-resident (nothing completed is lost) but unpersisted.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vab_fault::SvcFaultPlan;
use vab_obs::{SpanScope, TraceContext};
use vab_util::json::Json;

/// Schema tag of the persistent entry files.
const CACHE_SCHEMA: &str = "vab-svc-cache/1";

/// Suffix quarantined (corrupt) entries are renamed to.
const QUARANTINE_SUFFIX: &str = "corrupt";

/// Counters frozen by [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident in memory.
    pub resident: usize,
    /// Corrupt persistent entries quarantined (at startup or on read).
    pub quarantined: u64,
    /// Persistence writes that failed (real IO errors or injected).
    pub disk_write_failures: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What the startup recovery scan found in the persistent tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entry files examined.
    pub scanned: usize,
    /// Healthy entries left in place.
    pub healthy: usize,
    /// Corrupt entries renamed to `*.corrupt`.
    pub quarantined: usize,
    /// Valid entries for a different engine version (left in place).
    pub stale: usize,
    /// Orphaned temp files from interrupted writes, removed.
    pub tmp_removed: usize,
}

struct Lru {
    entries: HashMap<u64, String>,
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, digest: u64) {
        if let Some(pos) = self.order.iter().position(|&d| d == digest) {
            self.order.remove(pos);
        }
        self.order.push_back(digest);
    }
}

/// The two-tier cache. All methods take `&self`; the in-memory tier is a
/// mutex-guarded LRU (lookups are rare next to the physics they save).
pub struct ResultCache {
    capacity: usize,
    mem: Mutex<Lru>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    disk_write_failures: AtomicU64,
    recovery: RecoveryReport,
    faults: Option<SvcFaultPlan>,
    /// Per-digest persistence-attempt counters, so injected disk faults
    /// are keyed on `(digest, attempt)` and a retried persist can succeed.
    write_attempts: Mutex<HashMap<u64, u32>>,
}

impl ResultCache {
    /// An in-memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            mem: Mutex::new(Lru { entries: HashMap::new(), order: VecDeque::new() }),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            disk_write_failures: AtomicU64::new(0),
            recovery: RecoveryReport::default(),
            faults: None,
            write_attempts: Mutex::new(HashMap::new()),
        }
    }

    /// A cache backed by the persistent tier in `dir` (created if
    /// absent). Runs the startup recovery scan: corrupt entries are
    /// quarantined, interrupted-write temp files removed, and the result
    /// recorded in [`ResultCache::recovery`].
    pub fn persistent(capacity: usize, dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut cache = Self::in_memory(capacity);
        cache.recovery = recover_scan(dir);
        cache.quarantined.store(cache.recovery.quarantined as u64, Ordering::Relaxed);
        cache.dir = Some(dir.to_path_buf());
        if cache.recovery.quarantined > 0 || cache.recovery.tmp_removed > 0 {
            vab_obs::event!(
                "svc.recover",
                "cache_scan",
                scanned = cache.recovery.scanned,
                quarantined = cache.recovery.quarantined,
                tmp_removed = cache.recovery.tmp_removed,
            );
        }
        Ok(cache)
    }

    /// Arms deterministic disk-write fault injection (chaos drills).
    pub fn with_faults(mut self, plan: SvcFaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The persistent tier's directory, when one is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// What the startup recovery scan found (all-zero for in-memory
    /// caches).
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    fn entry_path(&self, digest: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{digest:016x}.json")))
    }

    fn record_hit(&self, tier: &'static str) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.cache_hits", 1);
        vab_obs::event!("svc.cache", "hit", tier = tier);
        self.publish_rate();
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.cache_misses", 1);
        self.publish_rate();
    }

    fn publish_rate(&self) {
        if vab_obs::enabled() {
            vab_obs::metrics::gauge("svc.cache_hit_rate").set(self.stats().hit_rate());
        }
    }

    /// Looks up `digest`, consulting memory first, then the persistent
    /// tier (promoting disk hits into memory). A corrupt disk entry is
    /// quarantined and reads as a miss, so callers recompute instead of
    /// crashing or serving garbage.
    pub fn get(&self, digest: u64) -> Option<String> {
        {
            let mut lru = self.mem.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(payload) = lru.entries.get(&digest).cloned() {
                lru.touch(digest);
                self.record_hit("memory");
                return Some(payload);
            }
        }
        if let Some(path) = self.entry_path(digest) {
            match read_entry(&path, digest) {
                EntryRead::Healthy(payload) => {
                    self.insert_mem(digest, payload.clone());
                    self.record_hit("disk");
                    return Some(payload);
                }
                EntryRead::Corrupt => {
                    self.quarantine(&path, digest);
                }
                EntryRead::StaleOrAbsent => {}
            }
        }
        self.record_miss();
        None
    }

    /// [`ResultCache::get`] under a traced span: the lookup appears as
    /// `svc.cache_lookup` in the job's span tree (and its duration in
    /// the stage histogram of the same name).
    pub fn get_traced(&self, digest: u64, parent: Option<&TraceContext>) -> Option<String> {
        let _span = parent.map(|p| SpanScope::enter("svc.cache", "svc.cache_lookup", p));
        self.get(digest)
    }

    /// Renames a damaged entry to `<entry>.corrupt` so it never poisons
    /// another lookup, and the evidence survives for postmortems.
    fn quarantine(&self, path: &Path, digest: u64) {
        let target = path.with_extension(format!("json.{QUARANTINE_SUFFIX}"));
        match std::fs::rename(path, &target) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                vab_obs::metrics::inc("svc.cache_quarantined", 1);
                vab_obs::event!(
                    "svc.fault",
                    "cache_corrupt",
                    digest = format!("{digest:016x}"),
                    quarantined = target.display().to_string(),
                );
            }
            Err(e) => {
                // Last resort: remove it so the bad bytes cannot recur.
                let _ = std::fs::remove_file(path);
                eprintln!("vab-svc: quarantine {} failed: {e}", path.display());
            }
        }
    }

    /// Stores `payload` under `digest`. `spec_canonical` is embedded in
    /// the persistent entry so `results/cache/` stays self-describing.
    /// Persistence is atomic (temp file + rename); a failed write —
    /// real or injected — leaves the entry memory-resident only.
    pub fn put(&self, digest: u64, spec_canonical: &str, payload: &str) {
        self.insert_mem(digest, payload.to_string());
        let Some(path) = self.entry_path(digest) else { return };
        if let Some(plan) = &self.faults {
            let attempt = {
                let mut attempts = self.write_attempts.lock().unwrap_or_else(|e| e.into_inner());
                let slot = attempts.entry(digest).or_insert(0);
                let attempt = *slot;
                *slot += 1;
                attempt
            };
            if plan.disk_write_fails(digest, attempt) {
                self.record_disk_failure(digest, "injected disk-write fault");
                return;
            }
        }
        let spec = Json::parse(spec_canonical).unwrap_or(Json::Str(spec_canonical.into()));
        let entry = Json::obj([
            ("schema", Json::Str(CACHE_SCHEMA.into())),
            ("engine_version", Json::Str(crate::ENGINE_VERSION.into())),
            ("digest", Json::Str(format!("{digest:016x}"))),
            ("spec", spec),
            ("payload", Json::Str(payload.into())),
        ]);
        if let Err(e) = write_atomic(&path, &entry.render()) {
            self.record_disk_failure(digest, &e.to_string());
        }
    }

    /// [`ResultCache::put`] under a traced span: persistence appears as
    /// `svc.cache_persist` in the job's span tree.
    pub fn put_traced(
        &self,
        digest: u64,
        spec_canonical: &str,
        payload: &str,
        parent: Option<&TraceContext>,
    ) {
        let _span = parent.map(|p| SpanScope::enter("svc.cache", "svc.cache_persist", p));
        self.put(digest, spec_canonical, payload);
    }

    fn record_disk_failure(&self, digest: u64, reason: &str) {
        self.disk_write_failures.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.cache_write_failures", 1);
        vab_obs::event!(
            "svc.fault",
            "disk_write_failed",
            digest = format!("{digest:016x}"),
            reason = reason.to_string(),
        );
    }

    fn insert_mem(&self, digest: u64, payload: String) {
        let mut lru = self.mem.lock().unwrap_or_else(|e| e.into_inner());
        lru.entries.insert(digest, payload);
        lru.touch(digest);
        while lru.entries.len() > self.capacity {
            if let Some(evict) = lru.order.pop_front() {
                lru.entries.remove(&evict);
            } else {
                break;
            }
        }
    }

    /// Frozen hit/miss/quarantine counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident: self.mem.lock().unwrap_or_else(|e| e.into_inner()).entries.len(),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            disk_write_failures: self.disk_write_failures.load(Ordering::Relaxed),
        }
    }
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename into place. The temp name carries the pid so two daemons
/// sharing a tier never collide mid-write.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    path.with_file_name(format!(".{name}.tmp-{}", std::process::id()))
}

/// Outcome of reading one persistent entry.
enum EntryRead {
    /// Parsed, digest and engine version both match.
    Healthy(String),
    /// The file exists but is unreadable as a cache entry: quarantine.
    Corrupt,
    /// Absent, or a valid entry for a different engine version (miss,
    /// but nothing is wrong with the file).
    StaleOrAbsent,
}

/// Reads one persistent entry, distinguishing damage (quarantine) from
/// staleness (plain miss).
fn read_entry(path: &Path, digest: u64) -> EntryRead {
    let Ok(text) = std::fs::read_to_string(path) else {
        return EntryRead::StaleOrAbsent;
    };
    classify_entry(&text, Some(digest))
}

/// Classifies entry text: parse failure, schema mismatch, digest
/// mismatch or missing payload are corruption; a clean entry for another
/// engine version is stale.
fn classify_entry(text: &str, expect_digest: Option<u64>) -> EntryRead {
    let Ok(v) = Json::parse(text) else { return EntryRead::Corrupt };
    if v.str_field("schema") != Some(CACHE_SCHEMA) {
        return EntryRead::Corrupt;
    }
    if let Some(digest) = expect_digest {
        if v.str_field("digest") != Some(format!("{digest:016x}").as_str()) {
            return EntryRead::Corrupt;
        }
    }
    let Some(payload) = v.str_field("payload") else { return EntryRead::Corrupt };
    if v.str_field("engine_version") != Some(crate::ENGINE_VERSION) {
        return EntryRead::StaleOrAbsent;
    }
    EntryRead::Healthy(payload.to_string())
}

/// Sweeps a persistent tier at startup: quarantines corrupt entries,
/// removes interrupted-write temp files, counts the rest. Never fails —
/// an unreadable directory just reports zero files scanned.
fn recover_scan(dir: &Path) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else { return report };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') && name.contains(".tmp-") {
            if std::fs::remove_file(&path).is_ok() {
                report.tmp_removed += 1;
            }
            continue;
        }
        if !name.ends_with(".json") {
            continue; // quarantined files and foreign debris stay put
        }
        report.scanned += 1;
        let expect = u64::from_str_radix(name.trim_end_matches(".json"), 16).ok();
        let looks_like_entry = expect.is_some() && name.len() == 21;
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        match classify_entry(&text, if looks_like_entry { expect } else { None }) {
            EntryRead::Healthy(_) => report.healthy += 1,
            EntryRead::StaleOrAbsent => report.stale += 1,
            EntryRead::Corrupt => {
                let target = path.with_extension(format!("json.{QUARANTINE_SUFFIX}"));
                if std::fs::rename(&path, &target).is_ok() {
                    report.quarantined += 1;
                    vab_obs::metrics::inc("svc.cache_quarantined", 1);
                    vab_obs::event!(
                        "svc.fault",
                        "cache_corrupt",
                        entry = name.to_string(),
                        quarantined = target.display().to_string(),
                    );
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_fault::SvcFaultConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vab-svc-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c = ResultCache::in_memory(2);
        c.put(1, "{\"a\":1}", "one");
        c.put(2, "{\"a\":2}", "two");
        assert_eq!(c.get(1).as_deref(), Some("one")); // 1 is now hottest
        c.put(3, "{\"a\":3}", "three"); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (3, 1, 2));
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn persistent_tier_survives_a_new_cache_and_quarantines_corruption() {
        let dir = temp_dir("reopen");
        {
            let c = ResultCache::persistent(4, &dir).expect("create");
            c.put(0xabc, "{\"kind\":\"x\"}", "payload-1");
        }
        let c2 = ResultCache::persistent(4, &dir).expect("reopen");
        assert_eq!(c2.get(0xabc).as_deref(), Some("payload-1"), "disk tier must serve");
        // A digest the tier never saw misses.
        assert_eq!(c2.get(0xdef), None);
        // Corrupt the entry: a fresh cache's *lookup* must quarantine it
        // (rename to .corrupt) and read it as a miss, not a panic.
        let path = dir.join(format!("{:016x}.json", 0xabcu64));
        std::fs::write(&path, "{not json").expect("corrupt");
        let c3 = ResultCache::in_memory(4);
        let c3 = ResultCache { dir: Some(dir.clone()), ..c3 };
        assert_eq!(c3.get(0xabc), None);
        assert_eq!(c3.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry must leave its address");
        assert!(
            path.with_extension("json.corrupt").exists(),
            "corrupt entry must be quarantined, not deleted"
        );
        // Recompute-and-put heals the address.
        c3.put(0xabc, "{\"kind\":\"x\"}", "payload-2");
        let c4 = ResultCache::persistent(4, &dir).expect("reopen again");
        assert_eq!(c4.get(0xabc).as_deref(), Some("payload-2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_scan_quarantines_torn_entries_and_sweeps_tmp_files() {
        let dir = temp_dir("scan");
        {
            let c = ResultCache::persistent(8, &dir).expect("create");
            c.put(0x1, "{\"a\":1}", "one");
            c.put(0x2, "{\"a\":2}", "two");
        }
        // Tear one entry mid-file, plant an interrupted temp write.
        let torn = dir.join(format!("{:016x}.json", 0x2u64));
        let full = std::fs::read_to_string(&torn).expect("read");
        std::fs::write(&torn, &full[..full.len() / 2]).expect("tear");
        std::fs::write(dir.join(".deadbeef.json.tmp-999"), "partial").expect("tmp");

        let c = ResultCache::persistent(8, &dir).expect("recover");
        let report = c.recovery();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.healthy, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.tmp_removed, 1);
        // The torn entry reads as a miss and recomputes; the healthy one
        // still serves.
        assert_eq!(c.get(0x2), None);
        assert_eq!(c.get(0x1).as_deref(), Some("one"));
        assert!(torn.with_extension("json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_tmp_behind() {
        let dir = temp_dir("atomic");
        let c = ResultCache::persistent(4, &dir).expect("create");
        c.put(0x77, "{\"a\":7}", "seven");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_fault_keeps_entry_resident_but_unpersisted() {
        let dir = temp_dir("diskfault");
        let plan =
            SvcFaultPlan::new(1, SvcFaultConfig { disk_fail_prob: 1.0, ..SvcFaultConfig::off() });
        {
            let c = ResultCache::persistent(4, &dir).expect("create").with_faults(plan);
            c.put(0x9, "{\"a\":9}", "nine");
            // Memory still serves — the completed result is not lost.
            assert_eq!(c.get(0x9).as_deref(), Some("nine"));
            assert_eq!(c.stats().disk_write_failures, 1);
        }
        // But a new generation must recompute: nothing was persisted.
        let c2 = ResultCache::persistent(4, &dir).expect("reopen");
        assert_eq!(c2.get(0x9), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
