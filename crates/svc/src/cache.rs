//! Content-addressed result cache: in-memory LRU over a persistent tier.
//!
//! Keys are [`crate::job::JobSpec::digest`] values — FNV-1a over the
//! canonical spec bytes plus [`crate::ENGINE_VERSION`] — so identical
//! physics shares one address, a seed change gets a new one, and an
//! engine bump orphans every stale entry without any invalidation
//! protocol. The persistent tier is one JSON file per entry under a cache
//! directory (default `results/cache/`), written atomically enough for a
//! single-daemon workload and verified against its recorded digest and
//! engine version on the way back in.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vab_util::json::Json;

/// Schema tag of the persistent entry files.
const CACHE_SCHEMA: &str = "vab-svc-cache/1";

/// Counters frozen by [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident in memory.
    pub resident: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Lru {
    entries: HashMap<u64, String>,
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, digest: u64) {
        if let Some(pos) = self.order.iter().position(|&d| d == digest) {
            self.order.remove(pos);
        }
        self.order.push_back(digest);
    }
}

/// The two-tier cache. All methods take `&self`; the in-memory tier is a
/// mutex-guarded LRU (lookups are rare next to the physics they save).
pub struct ResultCache {
    capacity: usize,
    mem: Mutex<Lru>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An in-memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            mem: Mutex::new(Lru { entries: HashMap::new(), order: VecDeque::new() }),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by the persistent tier in `dir` (created if absent).
    pub fn persistent(capacity: usize, dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut cache = Self::in_memory(capacity);
        cache.dir = Some(dir.to_path_buf());
        Ok(cache)
    }

    /// The persistent tier's directory, when one is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn entry_path(&self, digest: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{digest:016x}.json")))
    }

    fn record_hit(&self, tier: &'static str) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.cache_hits", 1);
        vab_obs::event!("svc.cache", "hit", tier = tier);
        self.publish_rate();
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        vab_obs::metrics::inc("svc.cache_misses", 1);
        self.publish_rate();
    }

    fn publish_rate(&self) {
        if vab_obs::enabled() {
            vab_obs::metrics::gauge("svc.cache_hit_rate").set(self.stats().hit_rate());
        }
    }

    /// Looks up `digest`, consulting memory first, then the persistent
    /// tier (promoting disk hits into memory).
    pub fn get(&self, digest: u64) -> Option<String> {
        {
            let mut lru = self.mem.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(payload) = lru.entries.get(&digest).cloned() {
                lru.touch(digest);
                self.record_hit("memory");
                return Some(payload);
            }
        }
        if let Some(path) = self.entry_path(digest) {
            if let Some(payload) = read_entry(&path, digest) {
                self.insert_mem(digest, payload.clone());
                self.record_hit("disk");
                return Some(payload);
            }
        }
        self.record_miss();
        None
    }

    /// Stores `payload` under `digest`. `spec_canonical` is embedded in
    /// the persistent entry so `results/cache/` stays self-describing.
    pub fn put(&self, digest: u64, spec_canonical: &str, payload: &str) {
        self.insert_mem(digest, payload.to_string());
        if let Some(path) = self.entry_path(digest) {
            let spec = Json::parse(spec_canonical).unwrap_or(Json::Str(spec_canonical.into()));
            let entry = Json::obj([
                ("schema", Json::Str(CACHE_SCHEMA.into())),
                ("engine_version", Json::Str(crate::ENGINE_VERSION.into())),
                ("digest", Json::Str(format!("{digest:016x}"))),
                ("spec", spec),
                ("payload", Json::Str(payload.into())),
            ]);
            if let Err(e) = std::fs::write(&path, entry.render()) {
                eprintln!("vab-svc: cache write {} failed: {e}", path.display());
            }
        }
    }

    fn insert_mem(&self, digest: u64, payload: String) {
        let mut lru = self.mem.lock().unwrap_or_else(|e| e.into_inner());
        lru.entries.insert(digest, payload);
        lru.touch(digest);
        while lru.entries.len() > self.capacity {
            if let Some(evict) = lru.order.pop_front() {
                lru.entries.remove(&evict);
            } else {
                break;
            }
        }
    }

    /// Frozen hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident: self.mem.lock().unwrap_or_else(|e| e.into_inner()).entries.len(),
        }
    }
}

/// Reads one persistent entry, returning its payload only when the file
/// parses and its recorded digest *and* engine version both match —
/// anything else is treated as a miss (stale engines re-compute).
fn read_entry(path: &Path, digest: u64) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.str_field("schema") != Some(CACHE_SCHEMA)
        || v.str_field("engine_version") != Some(crate::ENGINE_VERSION)
        || v.str_field("digest") != Some(format!("{digest:016x}").as_str())
    {
        return None;
    }
    v.str_field("payload").map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c = ResultCache::in_memory(2);
        c.put(1, "{\"a\":1}", "one");
        c.put(2, "{\"a\":2}", "two");
        assert_eq!(c.get(1).as_deref(), Some("one")); // 1 is now hottest
        c.put(3, "{\"a\":3}", "three"); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (3, 1, 2));
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn persistent_tier_survives_a_new_cache_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "vab-svc-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::persistent(4, &dir).expect("create");
            c.put(0xabc, "{\"kind\":\"x\"}", "payload-1");
        }
        let c2 = ResultCache::persistent(4, &dir).expect("reopen");
        assert_eq!(c2.get(0xabc).as_deref(), Some("payload-1"), "disk tier must serve");
        // A digest the tier never saw misses.
        assert_eq!(c2.get(0xdef), None);
        // Corrupt the entry: it must read as a miss, not a panic.
        let path = dir.join(format!("{:016x}.json", 0xabcu64));
        std::fs::write(&path, "{not json").expect("corrupt");
        let c3 = ResultCache::persistent(4, &dir).expect("reopen again");
        assert_eq!(c3.get(0xabc), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
