//! The NDJSON wire protocol: one JSON request per line, one JSON
//! response per line.
//!
//! Requests:
//!
//! ```json
//! {"op":"submit","job":{...spec...},"deadline_ms":5000,"trace":"<trace-span-parent>"}
//! {"op":"status","id":"9f3a..."}
//! {"op":"fetch","id":"9f3a...","wait_ms":30000}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"metrics"}
//! {"op":"watch","since":12}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; failures add `"error"` (and, for
//! backpressure, `"retry_after_ms"`). The protocol is plain enough to
//! drive with `nc 127.0.0.1 PORT` by hand.
//!
//! The optional `trace` field on `submit` carries a serialized
//! [`vab_obs::TraceContext`] (the client's submit-attempt span), so the
//! daemon parents its handle/queue/execute/cache spans under the
//! client's tree and `vab-obsctl trace` can merge both processes'
//! JSONL into one waterfall. A malformed context degrades to "untraced"
//! — it never fails the request. `metrics` returns one live telemetry
//! sample; `watch` long-polls the daemon's in-process ring of samples
//! (everything newer than `since`).

use vab_obs::TraceContext;
use vab_util::json::{Json, JsonError};

use crate::job::JobSpec;
use crate::pool::{JobError, JobStatus, SubmitError};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a job, optionally bounded by a queue deadline.
    Submit {
        /// The job to run.
        job: Box<JobSpec>,
        /// Queue deadline, milliseconds.
        deadline_ms: Option<u64>,
        /// The client-side span this submission happens under, when the
        /// client is tracing; the daemon parents its spans beneath it.
        trace: Option<TraceContext>,
    },
    /// Query a job's lifecycle state.
    Status {
        /// Job id (16-hex-digit digest).
        id: String,
    },
    /// Fetch a job's payload, optionally blocking until terminal.
    Fetch {
        /// Job id.
        id: String,
        /// How long to block for a terminal state (0 = don't).
        wait_ms: u64,
    },
    /// Daemon-wide counters.
    Stats,
    /// Liveness probe: cheap, side-effect-free, always answered.
    Health,
    /// One live telemetry sample (queue depth, rates, cache, latency
    /// quantiles), captured on demand.
    Metrics,
    /// Telemetry samples newer than `since` from the daemon's ring.
    Watch {
        /// Last tick the watcher has seen (0 = everything retained).
        since: u64,
    },
    /// Stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e: JsonError| format!("bad JSON: {e}"))?;
        match v.str_field("op") {
            Some("submit") => {
                let job = v.get("job").ok_or("submit needs a job object")?;
                let spec = JobSpec::from_json(job)?;
                Ok(Request::Submit {
                    job: Box::new(spec),
                    deadline_ms: v.u64_field("deadline_ms"),
                    trace: v.str_field("trace").and_then(TraceContext::decode),
                })
            }
            Some("status") => Ok(Request::Status {
                id: v.str_field("id").ok_or("status needs an id")?.to_string(),
            }),
            Some("fetch") => Ok(Request::Fetch {
                id: v.str_field("id").ok_or("fetch needs an id")?.to_string(),
                wait_ms: v.u64_field("wait_ms").unwrap_or(0),
            }),
            Some("stats") => Ok(Request::Stats),
            Some("health") => Ok(Request::Health),
            Some("metrics") => Ok(Request::Metrics),
            Some("watch") => Ok(Request::Watch { since: v.u64_field("since").unwrap_or(0) }),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders this request as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Submit { job, deadline_ms, trace } => {
                let mut fields = vec![("op", Json::Str("submit".into())), ("job", job.to_json())];
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms", Json::Num(*d as f64)));
                }
                if let Some(ctx) = trace {
                    fields.push(("trace", Json::Str(ctx.encode())));
                }
                Json::obj(fields).render()
            }
            Request::Status { id } => {
                Json::obj([("op", Json::Str("status".into())), ("id", Json::Str(id.clone()))])
                    .render()
            }
            Request::Fetch { id, wait_ms } => Json::obj([
                ("op", Json::Str("fetch".into())),
                ("id", Json::Str(id.clone())),
                ("wait_ms", Json::Num(*wait_ms as f64)),
            ])
            .render(),
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]).render(),
            Request::Health => Json::obj([("op", Json::Str("health".into()))]).render(),
            Request::Metrics => Json::obj([("op", Json::Str("metrics".into()))]).render(),
            Request::Watch { since } => {
                Json::obj([("op", Json::Str("watch".into())), ("since", Json::Num(*since as f64))])
                    .render()
            }
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]).render(),
        }
    }
}

fn ok_obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// `{"ok":false,"error":...}` with optional extra fields.
pub fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.into()))])
}

/// Response to a health probe: engine version plus worker/queue facts a
/// load balancer or drill harness can act on.
pub fn health_response(workers: usize, queued: usize, draining: bool) -> Json {
    ok_obj([
        ("status", Json::Str(if draining { "draining" } else { "up" }.into())),
        ("engine_version", Json::Str(crate::ENGINE_VERSION.into())),
        ("workers", Json::Num(workers as f64)),
        ("queued", Json::Num(queued as f64)),
    ])
}

/// Response to a `metrics` request: one live telemetry sample.
pub fn metrics_response(sample: Json) -> Json {
    ok_obj([("sample", sample)])
}

/// Response to a `watch` request: every retained sample newer than the
/// watcher's `since` tick, plus the tick to pass next time.
pub fn watch_response(since: u64, latest: u64, samples: Vec<Json>) -> Json {
    ok_obj([
        ("since", Json::Num(since as f64)),
        ("latest", Json::Num(latest as f64)),
        ("samples", Json::Arr(samples)),
    ])
}

/// Renders a submit rejection ([`SubmitError`]) as a wire response.
pub fn submit_error_response(e: &SubmitError) -> Json {
    match e {
        SubmitError::QueueFull { retry_after_ms } => Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::Str("queue_full".into())),
            ("retry_after_ms", Json::Num(*retry_after_ms as f64)),
        ]),
        SubmitError::ShuttingDown => error_response("shutting_down"),
    }
}

fn status_json(status: &JobStatus) -> Vec<(&'static str, Json)> {
    let mut fields = vec![("status", Json::Str(status.label().into()))];
    match status {
        JobStatus::Done { cached, wall_us } => {
            fields.push(("cached", Json::Bool(*cached)));
            fields.push(("wall_us", Json::Num(*wall_us as f64)));
        }
        JobStatus::Failed { error } => {
            let kind = match error {
                JobError::WorkerPanicked { .. } => "worker_panicked",
                JobError::DeadlineExpired { .. } => "deadline_expired",
                JobError::ExecFailed { .. } => "exec_failed",
            };
            fields.push(("failure", Json::Str(kind.into())));
            fields.push(("error", Json::Str(error.to_string())));
        }
        JobStatus::Queued | JobStatus::Running => {}
    }
    fields
}

/// Response to an accepted submit.
pub fn submit_response(id: &str, status: &JobStatus, deduped: bool) -> Json {
    let mut fields = vec![("id", Json::Str(id.to_string())), ("deduped", Json::Bool(deduped))];
    fields.extend(status_json(status));
    ok_obj(fields)
}

/// Response to a status query.
pub fn status_response(id: &str, status: &JobStatus) -> Json {
    let mut fields = vec![("id", Json::Str(id.to_string()))];
    fields.extend(status_json(status));
    ok_obj(fields)
}

/// Response to a fetch: status plus the payload (parsed back into JSON so
/// the client sees structure, not a double-encoded string) when done.
pub fn fetch_response(id: &str, status: &JobStatus, payload: Option<&str>) -> Json {
    let mut fields = vec![("id", Json::Str(id.to_string()))];
    fields.extend(status_json(status));
    if let Some(p) = payload {
        fields.push(("result", Json::parse(p).unwrap_or(Json::Str(p.to_string()))));
    }
    ok_obj(fields)
}

/// Parses the 16-hex-digit job id used on the wire back to a digest.
pub fn parse_id(id: &str) -> Result<u64, String> {
    if id.len() != 16 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("bad job id {id:?} (want 16 hex digits)"));
    }
    u64::from_str_radix(id, 16).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineSpec, EnvSpec, SystemSpec};

    #[test]
    fn submit_round_trips_over_the_wire() {
        let req = Request::Submit {
            job: Box::new(JobSpec::McPoint {
                system: SystemSpec::Vab { n_pairs: 4 },
                env: EnvSpec::Ocean { sea_state: 2 },
                range_m: 120.0,
                rotation_deg: 15.0,
                trials: 10,
                bits: 128,
                seed: 42,
                engine: EngineSpec::LinkBudget,
            }),
            deadline_ms: Some(5000),
            trace: None,
        };
        let line = req.render();
        assert!(!line.contains('\n'), "wire lines must be single lines");
        assert_eq!(Request::parse(&line).expect("parse"), req);
    }

    #[test]
    fn submit_trace_context_round_trips_and_degrades_gracefully() {
        let ctx = TraceContext::root(0x9f3a_0000_0000_0001, "job").child("svc.submit", 2);
        let req = Request::Submit {
            job: Box::new(JobSpec::McPoint {
                system: SystemSpec::Vab { n_pairs: 4 },
                env: EnvSpec::River,
                range_m: 40.0,
                rotation_deg: 0.0,
                trials: 4,
                bits: 64,
                seed: 1,
                engine: EngineSpec::LinkBudget,
            }),
            deadline_ms: None,
            trace: Some(ctx),
        };
        let line = req.render();
        assert!(line.contains("\"trace\":\""), "line: {line}");
        assert_eq!(Request::parse(&line).expect("parse"), req);
        // A mangled context degrades to untraced, never to an error.
        let mangled = line.replace(&ctx.encode(), "not-a-context");
        match Request::parse(&mangled).expect("still parses") {
            Request::Submit { trace, .. } => assert_eq!(trace, None),
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn all_ops_parse() {
        for (line, want) in [
            (
                r#"{"op":"status","id":"00000000000000ff"}"#,
                Request::Status { id: "00000000000000ff".into() },
            ),
            (
                r#"{"op":"fetch","id":"00000000000000ff","wait_ms":250}"#,
                Request::Fetch { id: "00000000000000ff".into(), wait_ms: 250 },
            ),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"health"}"#, Request::Health),
            (r#"{"op":"metrics"}"#, Request::Metrics),
            (r#"{"op":"watch"}"#, Request::Watch { since: 0 }),
            (r#"{"op":"watch","since":12}"#, Request::Watch { since: 12 }),
            (r#"{"op":"shutdown"}"#, Request::Shutdown),
        ] {
            assert_eq!(Request::parse(line).expect(line), want);
        }
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn responses_carry_ok_and_typed_failures() {
        let done = JobStatus::Done { cached: true, wall_us: 12 };
        let r = submit_response("00000000000000ff", &done, false);
        assert_eq!(r.bool_field("ok"), Some(true));
        assert_eq!(r.bool_field("cached"), Some(true));
        let failed =
            JobStatus::Failed { error: JobError::WorkerPanicked { message: "boom".into() } };
        let r = status_response("00000000000000ff", &failed);
        assert_eq!(r.str_field("failure"), Some("worker_panicked"));
        let backpressure = submit_error_response(&SubmitError::QueueFull { retry_after_ms: 50 });
        assert_eq!(backpressure.bool_field("ok"), Some(false));
        assert_eq!(backpressure.u64_field("retry_after_ms"), Some(50));
    }

    #[test]
    fn health_response_reports_drain_state() {
        let up = health_response(4, 2, false);
        assert_eq!(up.str_field("status"), Some("up"));
        assert_eq!(up.u64_field("workers"), Some(4));
        let draining = health_response(4, 0, true);
        assert_eq!(draining.str_field("status"), Some("draining"));
    }

    #[test]
    fn ids_parse_strictly() {
        assert_eq!(parse_id("00000000000000ff"), Ok(0xff));
        assert!(parse_id("ff").is_err());
        assert!(parse_id("00000000000000zz").is_err());
    }
}
