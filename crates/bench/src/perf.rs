//! Machine-readable performance snapshots: `results/BENCH_<sha>.json`.
//!
//! Every figure run (and `run_all`) folds its wall-clock time, trial
//! configuration and per-stage timing deltas into a [`BenchSnapshot`] and
//! writes it next to the CSVs. The snapshot is the input to the
//! `vab-obsctl baseline` regression gate and to `vab-obsctl diff`, so the
//! schema is versioned (`vab-bench-perf/1`) and rendered by hand — the
//! bench crate stays free of JSON dependencies, like `vab-obs`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use vab_obs::metrics::Snapshot;

use crate::experiments::ExpConfig;

/// Schema identifier embedded in every snapshot.
pub const PERF_SCHEMA: &str = "vab-bench-perf/1";

/// One stage's timing contribution to a figure (delta over the run).
#[derive(Debug, Clone, PartialEq)]
pub struct StagePerf {
    /// Stage name (`sim.linkbudget_trial`, `fec.viterbi`, …).
    pub name: String,
    /// Calls recorded during the figure.
    pub count: u64,
    /// Total wall-clock seconds across those calls.
    pub sum_s: f64,
    /// Derived latency quantiles in seconds (log-bucket interpolation).
    pub p50_s: f64,
    /// 95th percentile (seconds).
    pub p95_s: f64,
    /// 99th percentile (seconds).
    pub p99_s: f64,
    /// Allocations attributed to the stage alone (self, not children)
    /// during the figure. Zero when allocation profiling is off.
    pub alloc_count: u64,
    /// Bytes attributed to the stage alone during the figure.
    pub alloc_bytes: u64,
}

/// One figure/table's performance record.
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePerf {
    /// Registry name (`f7_ber_vs_range`, `t1_sota_comparison`, …).
    pub name: String,
    /// Wall-clock seconds for the whole figure.
    pub wall_s: f64,
    /// Data rows the figure produced.
    pub rows: usize,
    /// Per-stage timing deltas (empty when observability is off).
    pub stages: Vec<StagePerf>,
}

/// A whole run's perf snapshot, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Git revision the run was built from (short SHA, or `local`).
    pub sha: String,
    /// `quick` or `full`.
    pub mode: String,
    /// Monte Carlo trials per operating point.
    pub trials: usize,
    /// Information bits per trial.
    pub bits: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-figure records, in run order.
    pub figures: Vec<FigurePerf>,
}

/// Resolves the git revision tag for snapshot filenames: `VAB_GIT_SHA`
/// when set (CI passes the exact revision), else `git rev-parse --short
/// HEAD`, else `local`. The tag is sanitized to `[0-9a-zA-Z._-]`.
pub fn git_sha() -> String {
    let raw = std::env::var("VAB_GIT_SHA").ok().filter(|s| !s.trim().is_empty()).or_else(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    });
    let sha = raw.unwrap_or_default();
    let clean: String =
        sha.chars().filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')).collect();
    if clean.is_empty() {
        "local".to_string()
    } else {
        clean
    }
}

impl BenchSnapshot {
    /// Starts an empty snapshot for a run under `cfg`.
    pub fn new(cfg: &ExpConfig, quick: bool) -> Self {
        BenchSnapshot {
            sha: git_sha(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            trials: cfg.trials,
            bits: cfg.bits,
            seed: cfg.seed,
            figures: Vec::new(),
        }
    }

    /// Records one figure: its wall time, row count, and the stage-timing
    /// delta observed while it ran (pass an empty [`Snapshot`] when
    /// observability is off).
    pub fn push_figure(&mut self, name: &str, wall_s: f64, rows: usize, stage_delta: &Snapshot) {
        let mut stages: Vec<StagePerf> = stage_delta
            .stages
            .iter()
            .filter(|h| h.count > 0)
            .map(|h| {
                let (p50_s, p95_s, p99_s) = h.quantile_trio().unwrap_or((0.0, 0.0, 0.0));
                StagePerf {
                    name: h.name.clone(),
                    count: h.count,
                    sum_s: h.sum,
                    p50_s,
                    p95_s,
                    p99_s,
                    alloc_count: 0,
                    alloc_bytes: 0,
                }
            })
            .collect();
        // Merge the allocation profile by stage name. With `VAB_PROFILE=1`
        // and the sink off, the timing histograms are empty but the alloc
        // registry is not — those stages enter on their alloc identity.
        for a in stage_delta.alloc_stages.iter().filter(|a| a.calls > 0 || a.self_allocs > 0) {
            match stages.iter_mut().find(|s| s.name == a.name) {
                Some(s) => {
                    s.alloc_count = a.self_allocs;
                    s.alloc_bytes = a.self_bytes;
                }
                None => stages.push(StagePerf {
                    name: a.name.clone(),
                    count: a.calls,
                    sum_s: 0.0,
                    p50_s: 0.0,
                    p95_s: 0.0,
                    p99_s: 0.0,
                    alloc_count: a.self_allocs,
                    alloc_bytes: a.self_bytes,
                }),
            }
        }
        stages.sort_by(|x, y| x.name.cmp(&y.name));
        self.figures.push(FigurePerf { name: name.to_string(), wall_s, rows, stages });
    }

    /// Sum of per-figure wall times.
    pub fn total_wall_s(&self) -> f64 {
        self.figures.iter().map(|f| f.wall_s).sum()
    }

    /// Default output path: `results/BENCH_<sha>.json`.
    pub fn default_path(&self) -> PathBuf {
        PathBuf::from(format!("results/BENCH_{}.json", self.sha))
    }

    /// Renders the snapshot (pretty, stable key order).
    pub fn to_json(&self) -> String {
        fn jstr(out: &mut String, s: &str) {
            vab_obs::event::write_json_string(out, s);
        }
        let mut out = String::with_capacity(4096);
        let _ = write!(out, "{{\n  \"schema\": ");
        jstr(&mut out, PERF_SCHEMA);
        out.push_str(",\n  \"sha\": ");
        jstr(&mut out, &self.sha);
        out.push_str(",\n  \"mode\": ");
        jstr(&mut out, &self.mode);
        let _ = write!(
            out,
            ",\n  \"trials\": {},\n  \"bits\": {},\n  \"seed\": {},\n  \"total_wall_s\": {:?},\n  \"figures\": [",
            self.trials,
            self.bits,
            self.seed,
            self.total_wall_s()
        );
        for (i, f) in self.figures.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str("{\"name\": ");
            jstr(&mut out, &f.name);
            let _ =
                write!(out, ", \"wall_s\": {:?}, \"rows\": {}, \"stages\": [", f.wall_s, f.rows);
            for (j, s) in f.stages.iter().enumerate() {
                out.push_str(if j > 0 { ",\n      " } else { "\n      " });
                out.push_str("{\"name\": ");
                jstr(&mut out, &s.name);
                let _ = write!(
                    out,
                    ", \"count\": {}, \"sum_s\": {:?}, \"p50_s\": {:?}, \"p95_s\": {:?}, \"p99_s\": {:?}, \"alloc_count\": {}, \"alloc_bytes\": {}}}",
                    s.count, s.sum_s, s.p50_s, s.p95_s, s.p99_s, s.alloc_count, s.alloc_bytes
                );
            }
            out.push_str(if f.stages.is_empty() { "]}" } else { "\n    ]}" });
        }
        out.push_str(if self.figures.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out.push('\n');
        out
    }

    /// Writes the snapshot to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_obs::metrics::HistogramSnapshot;

    fn snap_with_stage() -> Snapshot {
        Snapshot {
            stages: vec![HistogramSnapshot {
                name: "sim.linkbudget_trial".into(),
                count: 10,
                sum: 0.5,
                bounds: vec![1e-3, 1e-2, 1e-1],
                buckets: vec![2, 6, 2, 0],
            }],
            ..Snapshot::default()
        }
    }

    #[test]
    fn snapshot_json_has_schema_figures_and_stages() {
        let cfg = ExpConfig::quick();
        let mut b = BenchSnapshot::new(&cfg, true);
        b.sha = "deadbeef".into();
        b.push_figure("f7_ber_vs_range", 1.25, 10, &snap_with_stage());
        b.push_figure("t2_power_budget", 0.01, 8, &Snapshot::default());
        let json = b.to_json();
        assert!(json.contains("\"schema\": \"vab-bench-perf/1\""), "json: {json}");
        assert!(json.contains("\"sha\": \"deadbeef\""));
        assert!(json.contains("\"name\": \"f7_ber_vs_range\""));
        assert!(json.contains("\"name\": \"sim.linkbudget_trial\""));
        assert!(json.contains("\"p95_s\":"));
        assert!((b.total_wall_s() - 1.26).abs() < 1e-12);
        assert_eq!(b.default_path(), PathBuf::from("results/BENCH_deadbeef.json"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn git_sha_is_filename_safe() {
        let sha = git_sha();
        assert!(!sha.is_empty());
        assert!(sha.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
    }

    #[test]
    fn empty_stage_delta_yields_no_stage_entries() {
        let cfg = ExpConfig::quick();
        let mut b = BenchSnapshot::new(&cfg, false);
        b.push_figure("f6", 0.2, 9, &Snapshot::default());
        assert!(b.figures[0].stages.is_empty());
        assert_eq!(b.mode, "full");
    }
}
