//! The bench side of the service layer: the figure registry exposed as a
//! [`vab_svc::FigureRunner`], plus the `run_all --serve` path that
//! regenerates the whole evaluation fleet *through* a daemon so repeated
//! runs hit the content-addressed cache instead of recomputing physics.
//!
//! The dependency points this way on purpose: `vab-svc` knows nothing
//! about figures (it executes them through the trait object), and this
//! crate provides the registry, the daemon binary (`vab-svcd`) and the
//! client binary (`vab-svc`) on top.

use std::path::Path;
use std::sync::Arc;

use vab_svc::cache::ResultCache;
use vab_svc::client::{Client, ClientError};
use vab_svc::exec::{Executor, FigureRunner};
use vab_svc::JobSpec;

use crate::experiments::{self, ExpConfig};

/// Default location of the daemon's persistent cache tier.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// The evaluation-fleet registry as a figure runner: resolves registry
/// names (`f7_ber_vs_range`, `t2_power_budget`, …) and returns the
/// figure's CSV text.
pub struct BenchFigures;

impl FigureRunner for BenchFigures {
    fn run_figure(
        &self,
        name: &str,
        trials: usize,
        bits: usize,
        seed: u64,
    ) -> Result<String, String> {
        let run = experiments::all_experiments_lazy()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, run)| run)
            .ok_or_else(|| format!("unknown figure {name:?}"))?;
        let cfg = ExpConfig { trials, bits, seed };
        Ok(run(&cfg).to_csv())
    }
}

/// An executor wired to the full figure registry.
pub fn bench_executor() -> Executor {
    Executor::new().with_figures(Arc::new(BenchFigures))
}

/// Opens (creating if needed) the persistent result cache at `dir`,
/// falling back to a memory-only cache when the directory is unusable.
pub fn open_cache(dir: &Path, capacity: usize) -> Arc<ResultCache> {
    match ResultCache::persistent(capacity, dir) {
        Ok(cache) => Arc::new(cache),
        Err(e) => {
            eprintln!(
                "warning: cache dir {} unusable ({e}); falling back to in-memory cache",
                dir.display()
            );
            Arc::new(ResultCache::in_memory(capacity))
        }
    }
}

/// The figure [`JobSpec`] `run_all --serve` submits for registry entry
/// `name` under `cfg` — one canonical spec per (figure, config), so a
/// re-run with the same config is a pure cache hit.
pub fn figure_job(name: &str, cfg: &ExpConfig) -> JobSpec {
    JobSpec::Figure { name: name.to_string(), trials: cfg.trials, bits: cfg.bits, seed: cfg.seed }
}

/// Outcome of one figure served through the daemon.
pub struct ServedFigure {
    /// Registry name.
    pub name: &'static str,
    /// The figure's CSV payload.
    pub csv: String,
    /// Served from the cache rather than computed.
    pub cached: bool,
}

/// Runs every registry figure through the daemon at `addr`: submits the
/// whole fleet as a batch (with backpressure retries), then fetches each
/// result in submission order. Returns the figures in registry order.
pub fn serve_all(addr: &str, cfg: &ExpConfig) -> Result<Vec<ServedFigure>, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let names: Vec<&'static str> =
        experiments::all_experiments_lazy().iter().map(|(n, _)| *n).collect();
    let mut ids = Vec::with_capacity(names.len());
    for name in &names {
        let job = figure_job(name, cfg);
        let resp =
            client.submit_with_retry(&job, None, 200).map_err(|e| format!("submit {name}: {e}"))?;
        let id = resp.str_field("id").ok_or_else(|| format!("no id for {name}"))?.to_string();
        let cached_at_submit =
            resp.str_field("status") == Some("done") && resp.bool_field("cached") == Some(true);
        ids.push((id, cached_at_submit));
    }
    let mut served = Vec::with_capacity(names.len());
    for (name, (id, cached_at_submit)) in names.into_iter().zip(ids) {
        let resp = fetch_done(&mut client, &id).map_err(|e| format!("fetch {name}: {e}"))?;
        if resp.str_field("status") != Some("done") {
            return Err(format!(
                "{name} did not complete: {}",
                resp.str_field("error").unwrap_or("unknown failure")
            ));
        }
        let csv = resp
            .get("result")
            .and_then(|r| r.as_str())
            .ok_or_else(|| format!("{name}: result is not a CSV string"))?
            .to_string();
        let cached = cached_at_submit || resp.bool_field("cached") == Some(true);
        served.push(ServedFigure { name, csv, cached });
    }
    Ok(served)
}

/// Fetches until the job is terminal (the server blocks in 30 s windows;
/// figures at full config can take longer than one window).
fn fetch_done(client: &mut Client, id: &str) -> Result<vab_util::json::Json, ClientError> {
    loop {
        let resp = client.fetch_wait(id, 30_000)?;
        match resp.str_field("status") {
            Some("queued") | Some("running") => continue,
            _ => return Ok(resp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_figures_runs_a_registry_entry() {
        let csv =
            BenchFigures.run_figure("t2_power_budget", 4, 64, 1).expect("registry figure runs");
        assert!(csv.lines().count() > 1, "CSV has a header and rows");
        assert!(BenchFigures.run_figure("no_such_figure", 4, 64, 1).is_err());
    }

    #[test]
    fn figure_jobs_share_an_address_per_config() {
        let cfg = ExpConfig { trials: 5, bits: 64, seed: 9 };
        assert_eq!(
            figure_job("f7_ber_vs_range", &cfg).digest(),
            figure_job("f7_ber_vs_range", &cfg).digest()
        );
        assert_ne!(
            figure_job("f7_ber_vs_range", &cfg).digest(),
            figure_job("f6_snr_vs_range", &cfg).digest()
        );
    }
}
