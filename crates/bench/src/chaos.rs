//! **F20** — the service-layer chaos drill.
//!
//! Spins up a real daemon/client pair per fault intensity, arms the full
//! `vab_fault::SvcFaultPlan` (wire drops, truncated and corrupted
//! frames, transient worker panics, simulated disk-write failures,
//! daemon restarts), drives a fixed batch of jobs through the carnage
//! with [`vab_svc::client::Client::run_job_resilient`], and measures
//! what resilience costs: retry volume, simulated latency, goodput —
//! and, the headline, **zero completed results lost** at every
//! intensity (verified by replaying the whole batch against a clean
//! daemon on the same cache directory and comparing payloads
//! byte-for-byte).
//!
//! # Determinism
//!
//! The CSV must be bit-identical across runs and worker counts, so no
//! wall-clock number may appear in it. Latency and goodput are
//! *simulated*: each wire round-trip costs [`SERVICE_COST_MS`] and each
//! backoff contributes its scheduled (deterministically jittered)
//! milliseconds. Every fault decision is a pure function of
//! `(seed, content digest, attempt)` — the client drives jobs
//! sequentially, so the request sequence per digest (and therefore
//! every draw) is identical whatever the daemon's worker count.

use std::path::PathBuf;
use std::sync::Arc;

use vab_fault::{SvcFaultConfig, SvcFaultPlan};
use vab_sim::metrics::CsvTable;
use vab_svc::cache::ResultCache;
use vab_svc::client::{Client, ClientConfig};
use vab_svc::exec::Executor;
use vab_svc::job::{EngineSpec, EnvSpec, JobSpec, SystemSpec};
use vab_svc::pool::PoolConfig;
use vab_svc::server::{Server, ServerConfig, WireFaultTotals};
use vab_util::rng::derive_seed;

use crate::experiments::ExpConfig;

/// Simulated cost of one wire round-trip, milliseconds. The *count* of
/// round-trips is the deterministic quantity; this constant turns it
/// into a latency axis.
pub const SERVICE_COST_MS: f64 = 25.0;

/// Jobs driven through the drill at each intensity.
const DRILL_JOBS: usize = 8;

/// Resubmission rounds per job before the drill gives up (transient
/// panics redraw per attempt, so a handful of rounds always lands).
const MAX_ROUNDS: usize = 12;

/// Stream id separating the drill's chaos seed from the experiment seed.
const DRILL_STREAM: u64 = 0xF20_D1DE;

fn drill_jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    (0..DRILL_JOBS)
        .map(|i| JobSpec::McPoint {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            range_m: 40.0 + 20.0 * i as f64,
            rotation_deg: 0.0,
            trials: cfg.trials.clamp(2, 6),
            bits: cfg.bits.min(64),
            seed: derive_seed(cfg.seed, 100 + i as u64),
            engine: EngineSpec::LinkBudget,
        })
        .collect()
}

/// Everything one intensity's drill produced.
struct DrillOutcome {
    completed: usize,
    failed_final: usize,
    lost: usize,
    attempts: u64,
    reconnects: u64,
    backoff_ms: u64,
    wire: WireFaultTotals,
    disk_failures: u64,
    panics: u64,
    restarts: usize,
    /// Simulated per-job latencies, milliseconds, completion order.
    latencies_ms: Vec<f64>,
}

fn start_drill_server(
    dir: &std::path::Path,
    plan: Option<&SvcFaultPlan>,
) -> (Server, Arc<ResultCache>) {
    let cache = ResultCache::persistent(64, dir).expect("drill cache dir");
    let cache = match plan {
        Some(p) => Arc::new(cache.with_faults(*p)),
        None => Arc::new(cache),
    };
    let mut executor = Executor::new();
    if let Some(p) = plan {
        executor = executor.with_svc_faults(*p);
    }
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 0, queue_cap: 64, retry_after_ms: 10 },
        faults: plan.cloned(),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, executor, cache.clone()).expect("bind drill daemon");
    (server, cache)
}

fn drill_client(addr: &str, seed: u64) -> Client {
    let cfg = ClientConfig {
        read_timeout: Some(std::time::Duration::from_secs(60)),
        write_timeout: Some(std::time::Duration::from_secs(60)),
        max_reconnects: 32,
        backoff_base_ms: 2,
        backoff_cap_ms: 50,
        backoff_seed: derive_seed(seed, 0xBAC0_FF5E),
        ..ClientConfig::default()
    };
    Client::connect_with(addr, cfg).expect("connect drill client")
}

/// Runs the chaos drill at one intensity and accounts for the damage.
fn run_drill(cfg: &ExpConfig, intensity: f64, dir: &std::path::Path) -> DrillOutcome {
    let _ = std::fs::remove_dir_all(dir); // cold start: determinism needs it
    let plan = SvcFaultPlan::new(
        derive_seed(cfg.seed, DRILL_STREAM),
        SvcFaultConfig::with_intensity(intensity),
    );
    let jobs = drill_jobs(cfg);
    let mut crash_points = plan.crash_points(jobs.len());
    // The drill must exercise daemon-restart recovery, not just hope the
    // seed draws it: at moderate intensity and above, schedule one
    // mid-batch restart whenever the plan drew none.
    if crash_points.is_empty() && intensity >= 0.4 {
        crash_points.push(jobs.len() / 2 - 1);
    }

    let (mut server, mut cache) = start_drill_server(dir, Some(&plan));
    let mut client = drill_client(&server.addr().to_string(), cfg.seed);

    let mut out = DrillOutcome {
        completed: 0,
        failed_final: 0,
        lost: 0,
        attempts: 0,
        reconnects: 0,
        backoff_ms: 0,
        wire: WireFaultTotals::default(),
        disk_failures: 0,
        panics: 0,
        restarts: 0,
        latencies_ms: Vec::new(),
    };
    let harvest = |server: &Server, cache: &ResultCache, out: &mut DrillOutcome| {
        let w = server.wire_fault_totals();
        out.wire.drops += w.drops;
        out.wire.truncates += w.truncates;
        out.wire.corrupts += w.corrupts;
        out.disk_failures += cache.stats().disk_write_failures;
        out.panics += server.pool().totals().1;
    };

    let mut payloads: Vec<Option<String>> = vec![None; jobs.len()];
    for (i, job) in jobs.iter().enumerate() {
        let mut latency_ms = 0.0;
        for _round in 0..MAX_ROUNDS {
            match client.run_job_resilient(job, 60_000) {
                Ok((resp, rstats)) => {
                    out.attempts += u64::from(rstats.attempts);
                    out.reconnects += u64::from(rstats.reconnects);
                    out.backoff_ms += rstats.backoff_ms_total;
                    latency_ms += f64::from(rstats.attempts) * SERVICE_COST_MS
                        + rstats.backoff_ms_total as f64;
                    if resp.str_field("status") == Some("done") {
                        payloads[i] =
                            Some(resp.get("result").map(|r| r.render()).unwrap_or_default());
                        out.completed += 1;
                        break;
                    }
                    // A typed failure (transient panic): resubmission
                    // redraws the fault, so go around again.
                }
                Err(_) => break, // retries exhausted: final failure
            }
        }
        if payloads[i].is_some() {
            out.latencies_ms.push(latency_ms);
        } else {
            out.failed_final += 1;
        }
        // Scheduled daemon crash: bring the whole process down and back
        // up on a fresh port; the client must find it and carry on.
        if crash_points.contains(&i) {
            harvest(&server, &cache, &mut out);
            server.shutdown();
            let (s2, c2) = start_drill_server(dir, Some(&plan));
            server = s2;
            cache = c2;
            client.set_addr(&server.addr().to_string());
            let _ = client.reconnect();
            out.restarts += 1;
        }
    }
    harvest(&server, &cache, &mut out);
    server.shutdown();

    // Verification replay: a clean daemon over the same cache directory
    // must reproduce every completed payload byte-for-byte. Injected
    // disk-write failures force recomputation here — identical physics,
    // identical bytes — so "lost" counts only genuine damage.
    let (mut verify_server, _verify_cache) = start_drill_server(dir, None);
    let mut verify_client = drill_client(&verify_server.addr().to_string(), cfg.seed);
    for (i, job) in jobs.iter().enumerate() {
        let Some(expected) = &payloads[i] else { continue };
        match verify_client.run_job_resilient(job, 60_000) {
            Ok((resp, _)) if resp.str_field("status") == Some("done") => {
                let got = resp.get("result").map(|r| r.render()).unwrap_or_default();
                if &got != expected {
                    out.lost += 1;
                }
            }
            _ => out.lost += 1,
        }
    }
    verify_server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    out
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// **F20** — chaos drill: resilience cost and zero-loss verification vs
/// injected fault intensity. Columns are all simulated/counted
/// quantities, so the table is bit-identical under a fixed seed
/// regardless of wall clock or worker count.
pub fn f20_chaos_drill(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new([
        "intensity",
        "jobs",
        "completed",
        "lost",
        "attempts",
        "reconnects",
        "backoff_ms",
        "wire_drops",
        "wire_truncates",
        "wire_corrupts",
        "disk_write_failures",
        "worker_panics",
        "daemon_restarts",
        "latency_p50_ms",
        "latency_p99_ms",
        "goodput_jobs_per_s",
    ]);
    let dir_base = std::env::temp_dir().join(format!("vab-f20-{}", std::process::id()));
    for &x in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let dir: PathBuf = dir_base.join(format!("i{:02}", (x * 10.0) as u32));
        let out = run_drill(cfg, x, &dir);
        let mut lat = out.latencies_ms.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let total_s: f64 = lat.iter().sum::<f64>() / 1_000.0;
        let goodput = if total_s > 0.0 { out.completed as f64 / total_s } else { 0.0 };
        t.row([
            format!("{x:.1}"),
            format!("{}", DRILL_JOBS),
            format!("{}", out.completed),
            format!("{}", out.lost),
            format!("{}", out.attempts),
            format!("{}", out.reconnects),
            format!("{}", out.backoff_ms),
            format!("{}", out.wire.drops),
            format!("{}", out.wire.truncates),
            format!("{}", out.wire.corrupts),
            format!("{}", out.disk_failures),
            format!("{}", out.panics),
            format!("{}", out.restarts),
            format!("{:.1}", percentile_ms(&lat, 0.50)),
            format!("{:.1}", percentile_ms(&lat, 0.99)),
            format!("{goodput:.3}"),
        ]);
    }
    let _ = std::fs::remove_dir_all(&dir_base);
    t
}
