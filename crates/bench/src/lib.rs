//! # vab-bench — the evaluation harness
//!
//! One function per table/figure of the paper's evaluation (reconstructed —
//! see DESIGN.md for the abstract-only caveat). Each returns a
//! [`vab_sim::metrics::CsvTable`] whose rows are the series the paper
//! plots; the `src/bin/` binaries print them and `run_all` writes the whole
//! set to `results/`.
//!
//! Every experiment takes an [`ExpConfig`] so integration tests can run the
//! same code with reduced trial counts.

pub mod chaos;
pub mod experiments;
pub mod network;
pub mod perf;
pub mod report;
pub mod serve;

pub use experiments::ExpConfig;
pub use perf::BenchSnapshot;
