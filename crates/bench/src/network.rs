//! FN1/FN2/FN3 — spatial network campaigns sharded over the `vab-svc`
//! pool.
//!
//! The figures fan lists of [`JobSpec::NetTopology`] (FN1/FN2, paper
//! tier) or [`JobSpec::NetScale`] (FN3, ocean tier) jobs out across the
//! worker pool, so per-deployment reports are computed concurrently (one
//! thread per deployment — each is internally single-threaded and
//! seed-pure) and content-address cached: re-running a figure with the
//! same config hits the cache and reproduces byte-identical CSVs.
//! `run_all --serve` layers its own figure-level cache on top, but the
//! per-deployment entries here are shared across FN1, FN2, FN3 and
//! F14-style callers that request the same `(spec, seed)`.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use vab_net::{NetworkSpec, RoutePolicy, ScaleSpec};
use vab_sim::metrics::CsvTable;
use vab_svc::job::EnvSpec;
use vab_svc::{Executor, JobSpec, JobStatus, PoolConfig, ResultCache, SubmitError, WorkerPool};
use vab_util::json::Json;
use vab_util::rng::derive_seed;

use crate::experiments::ExpConfig;

/// How long a figure waits for any single topology job before giving up.
const JOB_TIMEOUT: Duration = Duration::from_secs(600);

/// Builds the service job for one river deployment, mirroring
/// [`NetworkSpec::river`] so the pool's content address matches the spec
/// the in-process path would use.
pub fn net_topology_job(spec: &NetworkSpec) -> JobSpec {
    JobSpec::NetTopology {
        n_nodes: spec.n_nodes,
        x_m: spec.volume.x_m,
        y_m: spec.volume.y_m,
        standoff_m: spec.volume.standoff_m,
        env: match spec.env {
            vab_net::NetEnv::River => EnvSpec::River,
            vab_net::NetEnv::Ocean { sea_state } => EnvSpec::Ocean { sea_state },
        },
        n_pairs: spec.n_pairs,
        seed: spec.seed,
    }
}

/// Builds the service job for one ocean-scale deployment. Geometry and
/// reader count are pure functions of `n_nodes` (see
/// [`ScaleSpec::ocean`]), so the job only carries the knobs that vary.
pub fn net_scale_job(spec: &ScaleSpec) -> JobSpec {
    JobSpec::NetScale { n_nodes: spec.n_nodes, policy: spec.policy, seed: spec.seed }
}

/// Runs a batch of deployment jobs (`NetTopology` or `NetScale`) through
/// a worker pool backed by `cache`, returning the parsed reports in
/// submission order.
///
/// Panics if a job fails or times out — figure generation has no useful
/// partial-result story, and the determinism tests rely on all-or-nothing.
pub fn run_topology_jobs(jobs: Vec<JobSpec>, cache: Arc<ResultCache>) -> Vec<Json> {
    let pool = WorkerPool::start(
        PoolConfig { workers: 0, queue_cap: jobs.len().max(8), retry_after_ms: 10 },
        Executor::new(),
        cache,
    );
    let mut digests = Vec::with_capacity(jobs.len());
    for job in jobs {
        loop {
            match pool.submit(job.clone(), None) {
                Ok(outcome) => {
                    digests.push(outcome.digest);
                    break;
                }
                Err(SubmitError::QueueFull { retry_after_ms }) => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Err(SubmitError::ShuttingDown) => panic!("pool shut down mid-submission"),
            }
        }
    }
    let mut reports = Vec::with_capacity(digests.len());
    for digest in digests {
        let (status, payload) =
            pool.wait(digest, JOB_TIMEOUT).expect("topology job timed out or was dropped");
        match status {
            JobStatus::Done { .. } => {}
            other => panic!("topology job {digest:016x} ended {}", other.label()),
        }
        let payload = payload.expect("done job must carry a payload");
        let parsed = Json::parse(&payload).expect("payload must be valid JSON");
        let report = parsed.get("report").expect("deployment payload carries a report").clone();
        reports.push(report);
    }
    pool.shutdown();
    reports
}

/// The process-global in-memory cache the public FN1/FN2 entry points
/// share, so a `run_all` invocation computes each topology at most once.
fn global_cache() -> Arc<ResultCache> {
    static CACHE: OnceLock<Arc<ResultCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(ResultCache::in_memory(256))).clone()
}

/// Node counts for FN1 at a given fidelity (`cfg.trials` is the knob the
/// rest of the registry already uses; network size plays the same role).
fn fn1_populations(cfg: &ExpConfig) -> &'static [usize] {
    if cfg.trials >= 100 {
        &[4, 8, 16, 32, 64, 128, 256]
    } else if cfg.trials >= 20 {
        &[4, 8, 16, 32, 64]
    } else {
        &[2, 4, 8]
    }
}

/// Node counts for FN2 at a given fidelity.
fn fn2_populations(cfg: &ExpConfig) -> &'static [usize] {
    if cfg.trials >= 100 {
        &[16, 64, 256]
    } else if cfg.trials >= 20 {
        &[8, 32]
    } else {
        &[4, 8]
    }
}

/// Deployment-volume scale factors FN2 sweeps (1.0 = the default
/// 60 m × 40 m box; smaller boxes pack the same nodes denser).
const FN2_SCALES: [f64; 3] = [1.0, 0.5, 0.25];

/// Node counts for FN3 at a given fidelity. All are fourth powers, so
/// the reader law `n_readers = ⌈N¼⌉²` lands exactly on `√N` and the
/// measured points sit on the theoretical scaling anchors. Quick mode
/// still reaches N = 65,536 — the ocean tier runs it in seconds — so CI
/// smokes the full claimed scale.
fn fn3_populations(cfg: &ExpConfig) -> &'static [usize] {
    if cfg.trials >= 100 {
        &[256, 1296, 4096, 20736, 65536]
    } else if cfg.trials >= 20 {
        &[256, 4096, 65536]
    } else {
        &[256, 1296, 4096]
    }
}

/// **FN1** — inventoried-node count and time-to-full-inventory vs
/// population, with an explicit cache (testing seam).
pub fn fn1_with_cache(cfg: &ExpConfig, cache: Arc<ResultCache>) -> CsvTable {
    let master = derive_seed(cfg.seed, 0xF1);
    let specs: Vec<NetworkSpec> = fn1_populations(cfg)
        .iter()
        .map(|&n| NetworkSpec::river(n, derive_seed(master, n as u64)))
        .collect();
    let jobs = specs.iter().map(net_topology_job).collect();
    let reports = run_topology_jobs(jobs, cache);

    let mut t = CsvTable::new([
        "n_nodes",
        "inventoried",
        "coverage",
        "time_to_inventory_s",
        "inventory_slots",
        "inventory_collisions",
    ]);
    for (spec, report) in specs.iter().zip(&reports) {
        let inv = report.get("inventory").expect("report carries inventory");
        let discovered = inv.get("discovered").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        t.row([
            spec.n_nodes.to_string(),
            discovered.to_string(),
            format!("{:.4}", inv.f64_field("coverage").unwrap_or(0.0)),
            format!("{:.1}", inv.f64_field("time_s").unwrap_or(0.0)),
            format!("{:.0}", inv.f64_field("slots_used").unwrap_or(0.0)),
            format!("{:.0}", inv.f64_field("collisions").unwrap_or(0.0)),
        ]);
    }
    t
}

/// **FN2** — aggregate goodput and Jain fairness vs population and
/// deployment density, with an explicit cache (testing seam).
pub fn fn2_with_cache(cfg: &ExpConfig, cache: Arc<ResultCache>) -> CsvTable {
    let master = derive_seed(cfg.seed, 0xF2);
    let mut specs = Vec::new();
    for &n in fn2_populations(cfg) {
        for (si, &scale) in FN2_SCALES.iter().enumerate() {
            let mut spec =
                NetworkSpec::river(n, derive_seed(master, (n * FN2_SCALES.len() + si) as u64));
            spec.volume = spec.volume.scaled(scale);
            specs.push(spec);
        }
    }
    let jobs = specs.iter().map(net_topology_job).collect();
    let reports = run_topology_jobs(jobs, cache);

    let mut t =
        CsvTable::new(["n_nodes", "density_per_1000m3", "aggregate_goodput_bps", "jain_fairness"]);
    for (spec, report) in specs.iter().zip(&reports) {
        let steady = report.get("steady").expect("report carries steady state");
        t.row([
            spec.n_nodes.to_string(),
            format!("{:.2}", spec.density_per_1000m3()),
            format!("{:.1}", steady.f64_field("aggregate_goodput_bps").unwrap_or(0.0)),
            format!("{:.4}", steady.f64_field("jain_fairness").unwrap_or(0.0)),
        ]);
    }
    t
}

/// **FN3** — per-node and aggregate capacity vs population at ocean
/// scale, with an explicit cache (testing seam).
///
/// Each row is one [`ScaleSpec::ocean`] deployment under the VBF relay
/// policy; `theory_sqrt_bps` is the Θ(√n) aggregate-capacity law of
/// arxiv 1103.0266 anchored at the first measured point, so the
/// simulated curve can be read directly against the asymptotic order.
/// `SCALING.md` discusses the measured slope and its finite-N
/// prefactors (guard time ∝ N¼, mean hop count growing toward the rim).
pub fn fn3_with_cache(cfg: &ExpConfig, cache: Arc<ResultCache>) -> CsvTable {
    let master = derive_seed(cfg.seed, 0xF3);
    let specs: Vec<ScaleSpec> = fn3_populations(cfg)
        .iter()
        .map(|&n| {
            let mut s = ScaleSpec::ocean(n, derive_seed(master, n as u64));
            s.policy = RoutePolicy::Vbf;
            s
        })
        .collect();
    let jobs = specs.iter().map(net_scale_job).collect();
    let reports = run_topology_jobs(jobs, cache);

    let mut t = CsvTable::new([
        "n_nodes",
        "n_readers",
        "coverage",
        "per_node_bps",
        "aggregate_bps",
        "theory_sqrt_bps",
        "mean_hops",
    ]);
    let mut anchor: Option<(f64, f64)> = None;
    for (spec, report) in specs.iter().zip(&reports) {
        let inv = report.get("inventory").expect("report carries inventory");
        let steady = report.get("steady").expect("report carries steady state");
        let agg = steady.f64_field("aggregate_capacity_bps").unwrap_or(0.0);
        let (n0, agg0) = *anchor.get_or_insert((spec.n_nodes as f64, agg));
        t.row([
            spec.n_nodes.to_string(),
            spec.n_readers.to_string(),
            format!("{:.4}", inv.f64_field("coverage").unwrap_or(0.0)),
            format!("{:.4}", steady.f64_field("mean_goodput_bps").unwrap_or(0.0)),
            format!("{:.1}", agg),
            format!("{:.1}", agg0 * (spec.n_nodes as f64 / n0).sqrt()),
            format!("{:.2}", steady.f64_field("mean_hops").unwrap_or(0.0)),
        ]);
    }
    t
}

/// **FN1** — inventoried-node count and time-to-full-inventory vs
/// population, pool-sharded over the shared in-process cache.
pub fn fn1_network_inventory(cfg: &ExpConfig) -> CsvTable {
    fn1_with_cache(cfg, global_cache())
}

/// **FN2** — aggregate goodput and Jain fairness vs population and
/// deployment density, pool-sharded over the shared in-process cache.
pub fn fn2_network_goodput(cfg: &ExpConfig) -> CsvTable {
    fn2_with_cache(cfg, global_cache())
}

/// **FN3** — per-node and aggregate capacity vs population at ocean
/// scale, pool-sharded over the shared in-process cache.
pub fn fn3_capacity_scaling(cfg: &ExpConfig) -> CsvTable {
    fn3_with_cache(cfg, global_cache())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig { trials: 4, bits: 64, seed: 2023 }
    }

    #[test]
    fn fn1_reruns_hit_the_cache_and_match() {
        let cache = Arc::new(ResultCache::in_memory(64));
        let a = fn1_with_cache(&quick(), cache.clone());
        let misses_after_first = cache.stats().misses;
        let b = fn1_with_cache(&quick(), cache.clone());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(cache.stats().misses, misses_after_first, "second run must be all hits");
    }

    #[test]
    fn fn3_reruns_hit_the_cache_and_match() {
        let cache = Arc::new(ResultCache::in_memory(64));
        let a = fn3_with_cache(&quick(), cache.clone());
        let misses_after_first = cache.stats().misses;
        let b = fn3_with_cache(&quick(), cache.clone());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(cache.stats().misses, misses_after_first, "second run must be all hits");
    }

    #[test]
    fn fn3_aggregate_capacity_tracks_the_sqrt_n_order() {
        let t = fn3_with_cache(&quick(), Arc::new(ResultCache::in_memory(64)));
        assert!(t.len() >= 3, "need at least three anchors for a slope");
        let (mut n, mut agg) = (Vec::new(), Vec::new());
        for row in 0..t.len() {
            let nodes = crate::experiments::cell_f64(&t, row, 0);
            let a = crate::experiments::cell_f64(&t, row, 4);
            assert!(a > 0.0, "aggregate capacity must be positive at N={nodes}");
            n.push(nodes.ln());
            agg.push(a.ln());
        }
        assert!(
            agg.last() > agg.first(),
            "aggregate capacity must grow with the deployment: {agg:?}"
        );
        // Least-squares slope of ln(aggregate) on ln(N). Theory says 0.5;
        // finite-N prefactors (guard time ∝ N¼, hop count growing toward
        // the rim) flatten the measured slope — SCALING.md documents the
        // ±0.2 tolerance.
        let k = n.len() as f64;
        let (mx, my) = (n.iter().sum::<f64>() / k, agg.iter().sum::<f64>() / k);
        let num: f64 = n.iter().zip(&agg).map(|(x, y)| (x - mx) * (y - my)).sum();
        let den: f64 = n.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = num / den;
        assert!((slope - 0.5).abs() <= 0.2, "slope {slope:.3} too far from the √n order");
    }

    #[test]
    fn fn2_fairness_and_goodput_are_sane() {
        let t = fn2_with_cache(&quick(), Arc::new(ResultCache::in_memory(64)));
        assert!(!t.is_empty());
        for row in 0..t.len() {
            let jain = crate::experiments::cell_f64(&t, row, 3);
            assert!(jain > 0.0 && jain <= 1.0, "jain out of range: {jain}");
        }
    }
}
