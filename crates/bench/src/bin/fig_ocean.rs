//! F10 - ocean validation: BER vs range across sea states
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ocean` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F10",
        "ocean validation: BER vs range across sea states",
        experiments::f10_ocean,
    );
}
